"""Calibrate a :class:`~repro.perf.costs.CostModel` on the local machine.

The Raspberry Pi model in :data:`repro.perf.costs.RASPBERRY_PI_3` is
back-derived from the paper's Table II.  This module measures what the
*current* machine actually pays per operation — RSA sign/encrypt at both
paper key sizes, and an SMC round-trip through the simulated TEE — and
packages the results as a CostModel, so Table II can be re-predicted for
any host the reproduction runs on.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.crypto.pkcs1 import encrypt_pkcs1_v15, sign_pkcs1_v15
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import ConfigurationError
from repro.perf.costs import CostModel

_PAYLOAD = b"\x00" * 36


def _time_per_call(fn: Callable[[], object], repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return (time.perf_counter() - start) / repetitions


def calibrate_local_cost_model(repetitions: int = 25,
                               key_sizes: tuple[int, ...] = (1024, 2048),
                               num_cores: int = 4,
                               seed: int = 0) -> CostModel:
    """Measure this machine's per-operation costs.

    Args:
        repetitions: timing loop length per operation (25 keeps 2048-bit
            signing under a second on typical hosts).
        key_sizes: RSA sizes to calibrate (the paper's 1024 and 2048).
        num_cores: core count to model CPU%% against — kept at the Pi's 4
            by default so predicted percentages stay comparable to
            Table II's [0, 25] scale.
        seed: keygen determinism.

    Returns:
        A :class:`CostModel` with measured sign/encrypt costs and a
        measured SMC round-trip (GPS read cost is folded into the SMC
        measurement's residual and left at a nominal value).
    """
    if repetitions < 1:
        raise ConfigurationError("repetitions must be positive")
    rng = random.Random(seed)
    sign_seconds: dict[int, float] = {}
    encrypt_seconds: dict[int, float] = {}
    for bits in key_sizes:
        key = generate_rsa_keypair(bits, rng=rng)
        sign_seconds[bits] = _time_per_call(
            lambda: sign_pkcs1_v15(key, _PAYLOAD), repetitions)
        encrypt_seconds[bits] = _time_per_call(
            lambda: encrypt_pkcs1_v15(key.public_key, _PAYLOAD, rng=rng),
            repetitions)

    smc = _measure_smc_round_trip(seed)
    return CostModel(sign_seconds=sign_seconds,
                     encrypt_seconds=encrypt_seconds,
                     smc_round_trip_seconds=smc,
                     gps_read_seconds=smc,  # same order in the simulator
                     num_cores=num_cores)


def _measure_smc_round_trip(seed: int) -> float:
    """Time an empty SMC through the simulated secure monitor."""
    import uuid

    from repro.tee.monitor import SecureMonitor
    from repro.tee.optee import OpTeeCore, TeeClient
    from repro.tee.trusted_app import PseudoTrustedApplication

    class _NopPTA(PseudoTrustedApplication):
        UUID = uuid.UUID(int=0xCA11B)

        def invoke_command(self, command, params):
            return None

    vendor = generate_rsa_keypair(512, rng=random.Random(seed + 1))
    core = OpTeeCore(ta_verification_key=vendor.public_key)
    SecureMonitor(core)
    core.register_pta(_NopPTA())
    client = TeeClient(core.monitor)
    sid = client.open_session(_NopPTA.UUID)
    return _time_per_call(lambda: client.invoke(sid, "nop"), 200)
