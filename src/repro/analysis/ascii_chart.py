"""Terminal scatter/line charts for the figure benchmarks.

Renders an ``(x, y)`` series onto a character grid — with an optional
log-scaled y axis for Fig. 6's sample counts — so the benchmark output is
visually comparable to the paper's plots without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

Series = Sequence[tuple[float, float]]


def _scale(value: float, lo: float, hi: float, cells: int,
           log: bool) -> int:
    if log:
        value, lo, hi = (math.log10(max(value, 1e-12)),
                         math.log10(max(lo, 1e-12)),
                         math.log10(max(hi, 1e-12)))
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(position * (cells - 1) + 0.5)))


def ascii_chart(series_by_label: dict[str, Series], *, width: int = 64,
                height: int = 16, x_label: str = "x", y_label: str = "y",
                log_y: bool = False, title: str = "") -> str:
    """Plot one or more series on a shared character grid.

    Each series gets a marker from ``*+ox#@`` in label order; overlapping
    points keep the first marker drawn.
    """
    if width < 8 or height < 4:
        raise ConfigurationError("chart too small to render")
    points = [(x, y) for series in series_by_label.values()
              for x, y in series]
    if not points:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        y_lo = max(y_lo, min(y for y in ys if y > 0) if any(y > 0 for y in ys)
                   else 1.0)

    grid = [[" "] * width for _ in range(height)]
    markers = "*+ox#@"
    for marker, (label, series) in zip(markers, series_by_label.items()):
        for x, y in series:
            column = _scale(x, x_lo, x_hi, width, log=False)
            row = height - 1 - _scale(y, y_lo, y_hi, height, log=log_y)
            if grid[row][column] == " ":
                grid[row][column] = marker

    y_hi_text = f"{y_hi:g}"
    y_lo_text = f"{y_lo:g}"
    gutter = max(len(y_hi_text), len(y_lo_text)) + 1
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_hi_text.rjust(gutter)
        elif row_index == height - 1:
            prefix = y_lo_text.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - 8) + f"{x_hi:g}".rjust(8)
    lines.append(" " * (gutter + 1) + x_axis)
    scale_note = " (log y)" if log_y else ""
    legend = "  ".join(f"{marker}={label}"
                       for marker, label in zip(markers, series_by_label))
    lines.append(f"{' ' * (gutter + 1)}{x_label} vs {y_label}{scale_note}"
                 f"   {legend}")
    return "\n".join(lines)
