"""Table II: CPU, power, and memory benchmarks.

Rows are reproduced by running the *real* sampling pipeline (real TEE,
real signatures) to obtain the authenticated-sample instants, then costing
those instants on the calibrated Raspberry Pi model.  The fixed-rate rows
use the paper's laboratory setup (5-minute run at the configured rate);
the airport/residential rows replay the field workloads under adaptive
sampling.  Configurations whose required rate exceeds what one Pi core can
sustain are reported as None — the paper's "-" cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.costs import CostModel, RASPBERRY_PI_3
from repro.perf.cpu import CpuUtilizationModel
from repro.perf.memory import RASPBERRY_PI_MEMORY
from repro.perf.meter import Measurement
from repro.perf.power import KAUP_RASPBERRY_PI
from repro.workloads.airport import build_airport_scenario
from repro.workloads.residential import build_residential_scenario
from repro.workloads.runner import run_policy

#: Paper: "we first run the GPS Sampler under a fixed sampling rate ...
#: for 5 minutes".
LAB_RUN_DURATION_S = 300.0

#: Table II's memory row: flat across configurations.
MEMORY_FOOTPRINT = RASPBERRY_PI_MEMORY


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II."""

    key_bits: int
    case: str
    cpu_percent: Measurement | None    # None renders as the paper's "-"
    power_w: float | None
    sample_count: int | None = None

    @property
    def sustained(self) -> bool:
        """Whether the platform could keep up with this configuration."""
        return self.cpu_percent is not None


def _power_for(cpu: Measurement, costs: CostModel) -> float:
    # Equation (4) takes utilization as a 0-1 fraction of total capacity.
    return KAUP_RASPBERRY_PI.power_w(cpu.mean / 100.0)


def _fixed_rate_row(rate_hz: float, key_bits: int,
                    costs: CostModel) -> Table2Row:
    model = CpuUtilizationModel(costs)
    cpu = model.fixed_rate_utilization(rate_hz, key_bits, LAB_RUN_DURATION_S)
    if cpu is None:
        return Table2Row(key_bits=key_bits, case=f"Fixed {rate_hz:g} Hz",
                         cpu_percent=None, power_w=None)
    return Table2Row(key_bits=key_bits, case=f"Fixed {rate_hz:g} Hz",
                     cpu_percent=cpu, power_w=_power_for(cpu, costs),
                     sample_count=int(rate_hz * LAB_RUN_DURATION_S))


def _scenario_row(scenario_name: str, key_bits: int, costs: CostModel,
                  seed: int) -> Table2Row:
    if scenario_name == "Airport":
        scenario = build_airport_scenario(seed=seed)
    elif scenario_name == "Residential":
        scenario = build_residential_scenario(seed=seed)
    else:
        raise ValueError(f"unknown scenario {scenario_name!r}")
    # The run itself is key-size independent (the decision logic never
    # waits on the signature), so run once with the requested key size.
    run = run_policy(scenario, "adaptive", key_bits=key_bits, seed=seed)

    # Sustainability: the adaptive sampler bursts at the GPS rate near
    # zones; if one core cannot sign that fast, the configuration cannot
    # keep up (the paper's "-" for Residential / 2048).
    peak_rate = _peak_rate_hz(run.sample_times)
    if not costs.can_sustain(peak_rate, key_bits):
        return Table2Row(key_bits=key_bits, case=scenario_name,
                         cpu_percent=None, power_w=None,
                         sample_count=run.sample_count)

    model = CpuUtilizationModel(costs)
    cpu = model.utilization(run.sample_times, key_bits,
                            scenario.t_start, scenario.t_end)
    return Table2Row(key_bits=key_bits, case=scenario_name, cpu_percent=cpu,
                     power_w=_power_for(cpu, costs),
                     sample_count=run.sample_count)


def _peak_rate_hz(sample_times: list[float], window_s: float = 2.0) -> float:
    if not sample_times:
        return 0.0
    peak = 0.0
    for t in sample_times:
        count = sum(1 for s in sample_times if t <= s < t + window_s)
        peak = max(peak, count / window_s)
    return peak


def compute_table2(costs: CostModel = RASPBERRY_PI_3,
                   seed: int = 0,
                   key_sizes: tuple[int, ...] = (1024, 2048),
                   rates: tuple[float, ...] = (2.0, 3.0, 5.0),
                   include_scenarios: bool = True) -> list[Table2Row]:
    """All rows of Table II, in the paper's order."""
    rows: list[Table2Row] = []
    for key_bits in key_sizes:
        for rate in rates:
            rows.append(_fixed_rate_row(rate, key_bits, costs))
        if include_scenarios:
            rows.append(_scenario_row("Airport", key_bits, costs, seed))
            rows.append(_scenario_row("Residential", key_bits, costs, seed))
    return rows
