"""Plain-text rendering of the reproduced artefacts.

Benchmarks print these so a terminal run shows output directly comparable
to the paper's tables and figure captions.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.tables import MEMORY_FOOTPRINT, Table2Row


def format_feet(value_ft: float) -> str:
    """Feet with adaptive precision (30 ft vs 15,840 ft)."""
    if value_ft >= 1000:
        return f"{value_ft:,.0f} ft"
    return f"{value_ft:.1f} ft"


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Render rows in the layout of the paper's Table II."""
    lines = [
        f"{'Key Size':>9} | {'Case':<14} | {'CPU (%)':>16} | {'Power (W)':>9} | {'#samples':>8}",
        "-" * 70,
    ]
    previous_bits: int | None = None
    for row in rows:
        bits = f"{row.key_bits}" if row.key_bits != previous_bits else ""
        previous_bits = row.key_bits
        if row.cpu_percent is None:
            cpu, power = "-", "-"
        else:
            cpu = row.cpu_percent.format(digits=3)
            power = f"{row.power_w:.4f}"
        count = "" if row.sample_count is None else str(row.sample_count)
        lines.append(f"{bits:>9} | {row.case:<14} | {cpu:>16} | {power:>9} | {count:>8}")
    lines.append("-" * 70)
    lines.append(f"Memory: {MEMORY_FOOTPRINT.resident_mb():.2f} MB "
                 f"({MEMORY_FOOTPRINT.percent_of_ram():.1f}%)")
    return "\n".join(lines)


def render_series(title: str, series: Sequence[tuple[float, float]],
                  x_label: str, y_label: str, max_points: int = 20) -> str:
    """A compact two-column dump of an ``(x, y)`` series.

    Long series are decimated evenly (keeping the endpoints) so benchmark
    output stays readable.
    """
    lines = [title, f"{x_label:>14} | {y_label}"]
    if not series:
        return "\n".join(lines + ["  (empty)"])
    if len(series) > max_points:
        step = (len(series) - 1) / (max_points - 1)
        indices = sorted({round(i * step) for i in range(max_points)})
        chosen = [series[i] for i in indices]
    else:
        chosen = list(series)
    for x, y in chosen:
        lines.append(f"{x:>14.1f} | {y:g}")
    return "\n".join(lines)
