"""Analysis: computes and renders every table and figure of paper §VI."""

from repro.analysis.figures import (
    fig6_cumulative_samples,
    fig8a_nearest_distance,
    fig8b_instantaneous_rate,
    fig8c_cumulative_insufficiency,
)
from repro.analysis.tables import Table2Row, compute_table2, MEMORY_FOOTPRINT
from repro.analysis.report import render_table2, render_series, format_feet
from repro.analysis.ascii_chart import ascii_chart
from repro.analysis import paper_reference

__all__ = [
    "fig6_cumulative_samples",
    "fig8a_nearest_distance",
    "fig8b_instantaneous_rate",
    "fig8c_cumulative_insufficiency",
    "Table2Row",
    "compute_table2",
    "MEMORY_FOOTPRINT",
    "render_table2",
    "render_series",
    "format_feet",
    "ascii_chart",
    "paper_reference",
]
