"""The paper's published numbers, as structured data.

Single source of truth for every quantitative claim in §VI, used by the
benchmark harness (to print paper-vs-measured side by side) and by the
acceptance tests (to assert reproduction bands).  Page references are to
the ICDCS 2018 proceedings version.
"""

from __future__ import annotations

from dataclasses import dataclass

# --- Fig. 6 (p. 848) ---------------------------------------------------------

#: "Comparing to the 649 samples collected by 1Hz fix rate sampling, the
#: adaptive sampling uses only 14 GPS samples."
FIG6_FIXED_1HZ_SAMPLES = 649
FIG6_ADAPTIVE_SAMPLES = 14

# --- Fig. 8 / residential (p. 848-849) --------------------------------------

#: "In total, 94 NFZs are identified in this area."
RESIDENTIAL_ZONE_COUNT = 94
#: "a radius of 20 feet"
RESIDENTIAL_ZONE_RADIUS_FT = 20.0
#: "the vehicle is only 21 ft to the boundary of the nearest NFZ"
RESIDENTIAL_CLOSEST_APPROACH_FT = 21.0
#: "39 and 9 insufficient PoAs are counted in 2Hz and 3Hz Fix Rate
#: Sampling"; 5 Hz and adaptive each see one, from a missed GPS update
#: "at a time the vehicle is 25 ft to an NFZ".
FIG8C_INSUFFICIENT = {"2hz": 39, "3hz": 9, "5hz": 1, "adaptive": 1}
RESIDENTIAL_MISS_DISTANCE_FT = 25.0


@dataclass(frozen=True, slots=True)
class Table2Cell:
    """One CPU cell of Table II; ``None`` mean is the paper's "-"."""

    cpu_mean: float | None
    cpu_std: float | None = None
    power_w: float | None = None

    @property
    def sustained(self) -> bool:
        """Whether the configuration kept up with its sampling rate."""
        return self.cpu_mean is not None


# --- Table II (p. 849) --------------------------------------------------------

TABLE2: dict[tuple[int, str], Table2Cell] = {
    (1024, "Fixed 2 Hz"): Table2Cell(2.17, 0.05, 1.5817),
    (1024, "Fixed 3 Hz"): Table2Cell(3.17, 0.04, 1.5835),
    (1024, "Fixed 5 Hz"): Table2Cell(5.59, 0.06, 1.5879),
    (1024, "Airport"): Table2Cell(0.024, 0.160, 1.5778),
    (1024, "Residential"): Table2Cell(1.567, 0.827, 1.5806),
    (2048, "Fixed 2 Hz"): Table2Cell(10.94, 0.09, 1.5976),
    (2048, "Fixed 3 Hz"): Table2Cell(16.81, 0.10, 1.6082),
    (2048, "Fixed 5 Hz"): Table2Cell(None),
    (2048, "Airport"): Table2Cell(0.122, 0.810, 1.5780),
    (2048, "Residential"): Table2Cell(None),
}

#: "AliDrone only consumes a small amount of memory of about 0.3%"
TABLE2_MEMORY_MB = 3.27
TABLE2_MEMORY_PERCENT = 0.3

#: Equation (4) constants (Kaup et al.).
POWER_IDLE_W = 1.5778
POWER_SLOPE_W = 0.181

# --- derived calibration (DESIGN.md) -----------------------------------------

#: Per-signature busy time back-derived from the fixed-rate rows:
#: mean of (cpu% * cores / 100) / rate over the sustained cells.
DERIVED_SIGN_COST_S = {1024: 0.04340, 2048: 0.22146}


def derived_sign_cost_ratio() -> float:
    """The 2048/1024 signature-cost ratio implied by Table II (~5.1x)."""
    return DERIVED_SIGN_COST_S[2048] / DERIVED_SIGN_COST_S[1024]


def table2_cell(key_bits: int, case: str) -> Table2Cell:
    """Lookup helper with a clear error for typos."""
    try:
        return TABLE2[(key_bits, case)]
    except KeyError:
        raise KeyError(f"Table II has no cell ({key_bits}, {case!r})") from None
