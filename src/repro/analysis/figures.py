"""Series computation for Fig. 6 and Fig. 8(a/b/c).

Each function returns plain ``(x, y)`` lists so benchmarks can print them
and tests can assert their shape without any plotting dependency.
"""

from __future__ import annotations

from repro.core.sufficiency import cumulative_insufficiency_series
from repro.units import meters_to_feet
from repro.workloads.runner import PolicyRun
from repro.workloads.scenario import Scenario


def fig6_cumulative_samples(run: PolicyRun) -> list[tuple[float, int]]:
    """Fig. 6: total #samples vs distance-to-NFZ-boundary (feet).

    For each authenticated sample, x is the ground-truth distance from the
    vehicle to the (single) NFZ boundary at that instant and y the number
    of samples taken so far.  The airport trace moves monotonically away,
    so the series is monotone in both axes.
    """
    scenario = run.scenario
    circle = scenario.zones[0].to_circle(scenario.frame)
    series = []
    for count, t in enumerate(run.sample_times, start=1):
        position = scenario.source.position_at(t)
        series.append((meters_to_feet(circle.distance_to_boundary(position)),
                       count))
    return series


def fig8a_nearest_distance(scenario: Scenario,
                           step_s: float = 0.5) -> list[tuple[float, float]]:
    """Fig. 8(a): distance to the nearest NFZ boundary (feet) over time."""
    circles = [zone.to_circle(scenario.frame) for zone in scenario.zones]
    series = []
    t = scenario.t_start
    while t <= scenario.t_end + 1e-9:
        position = scenario.source.position_at(t)
        nearest = min(c.distance_to_boundary(position) for c in circles)
        series.append((t - scenario.t_start, meters_to_feet(nearest)))
        t += step_s
    return series


def fig8b_instantaneous_rate(run: PolicyRun, window_s: float = 4.0,
                             step_s: float = 1.0) -> list[tuple[float, float]]:
    """Fig. 8(b): instantaneous sampling rate (Hz) over time.

    A centred sliding-window estimate over the authenticated sample
    instants, matching how a rate plot is read off discrete events.
    """
    scenario = run.scenario
    times = run.sample_times
    series = []
    t = scenario.t_start
    while t <= scenario.t_end + 1e-9:
        lo, hi = t - window_s / 2.0, t + window_s / 2.0
        count = sum(1 for s in times if lo <= s < hi)
        series.append((t - scenario.t_start, count / window_s))
        t += step_s
    return series


def fig8c_cumulative_insufficiency(run: PolicyRun) -> list[tuple[float, int]]:
    """Fig. 8(c): total number of insufficient PoA pairs over time."""
    scenario = run.scenario
    samples = [entry.sample for entry in run.result.poa]
    series = cumulative_insufficiency_series(samples, scenario.zones,
                                             scenario.frame)
    return [(t - scenario.t_start, count) for t, count in series]
