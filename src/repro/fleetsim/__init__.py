"""Deterministic hostile-traffic fleet simulation for the auditor service.

* :mod:`repro.fleetsim.traffic` — interleaved traffic-class event
  streams (honest / chaos / adversary / flood) with per-event ground
  truth.
* :mod:`repro.fleetsim.sim` — the discrete-event driver feeding an
  :class:`repro.server.service.AuditorService` on the virtual clock,
  with admission scheduling, telemetry, monitor rules, optional mid-run
  crash/recovery, and an invariant-checked :class:`FleetReport`.
"""

from repro.fleetsim.traffic import (
    ATTACK_CLASSES,
    CLASS_ADVERSARY,
    CLASS_CHAOS,
    CLASS_FLOOD,
    CLASS_HONEST,
    TRAFFIC_CLASSES,
    FleetEvent,
    adversary_stream,
    chaos_stream,
    default_chaos_plan,
    flood_stream,
    honest_stream,
    merge_streams,
)
from repro.fleetsim.sim import (
    FleetMix,
    FleetReport,
    FleetRunResult,
    FleetSimulator,
)

__all__ = [
    "ATTACK_CLASSES",
    "CLASS_ADVERSARY",
    "CLASS_CHAOS",
    "CLASS_FLOOD",
    "CLASS_HONEST",
    "TRAFFIC_CLASSES",
    "FleetEvent",
    "FleetMix",
    "FleetReport",
    "FleetRunResult",
    "FleetSimulator",
    "adversary_stream",
    "chaos_stream",
    "default_chaos_plan",
    "flood_stream",
    "honest_stream",
    "merge_streams",
]
