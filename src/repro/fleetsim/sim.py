"""The discrete-event fleet simulator driving the auditor service.

:class:`FleetSimulator` runs a :class:`FleetMix` of interleaved traffic
classes (:mod:`repro.fleetsim.traffic`) against a real
:class:`repro.server.service.AuditorService` on the virtual clock —
one-second ticks, due arrivals submitted through the admission
scheduler, the queue drained through the shard engines, a telemetry
rollup evaluated against the monitor rules every tick.  The outcome is
a :class:`FleetReport` whose :meth:`~FleetReport.to_dict` is fully
deterministic (counts, per-class verdict histograms, virtual-time
alerts): two runs with equal seeds serialize byte-identically.  Wall
clock measurements (intake latency, sustained throughput) live in the
separate :attr:`FleetRunResult.timing` block precisely so they never
contaminate the deterministic summary.

Standing invariants the report checks (and ``ok`` aggregates):

* ``zero_false_accepts`` — no ``must_reject`` event was ACCEPTED.
* ``adversary_never_accepted`` — the adversary class produced no
  ACCEPTED verdict at all.
* ``honest_admitted_accepted`` — every *admitted* honest submission
  verified ACCEPTED (honest traffic is built to verify).
* ``honest_liveness`` — the honest shed ratio stayed at or below the
  configured bound even while floods hammered intake.
* ``flood_contained`` — with a flood and an admission policy active,
  flood traffic was turned away at at least the honest rate (fairness:
  back-pressure lands on the flooder, not the fleet).
* ``store_drained`` — nothing pending, nothing queued, no intake
  errors: every accepted submission got exactly one verdict.
* ``no_page_alerts`` — the monitor's page-severity rules stayed quiet.

A mid-run crash (``crash_at``) closes the service *between submit and
drain* — the worst instant: accepted-but-unaudited rows in the store —
then reopens the same store and replays via
:meth:`~repro.server.service.AuditorService.recover`, exercising the
exactly-once verdict property under fleet load.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.protocol import DroneRegistrationRequest
from repro.crypto.rsa import generate_rsa_keypair
from repro.crypto.schemes import SCHEME_RSA
from repro.errors import ConfigurationError
from repro.fleetsim.traffic import (ATTACK_CLASSES, CLASS_ADVERSARY,
                                    CLASS_CHAOS, CLASS_FLOOD, CLASS_HONEST,
                                    FleetEvent, adversary_stream,
                                    chaos_stream, flood_stream,
                                    honest_stream, merge_streams)
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.obs.hub import TelemetryHub, flatten_rollup
from repro.obs.monitor import MonitorEngine, builtin_rules
from repro.server.admission import build_scheduler
from repro.server.service import (DEFAULT_QUEUE_CAPACITY, OUTCOME_ACCEPTED,
                                  OUTCOME_DEDUPLICATED, OUTCOME_SHED_QUEUE,
                                  OUTCOME_SHED_RATE, AuditorService)
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import FleetDrone, provision_fleet

#: Verdict status string a clean alibi stores (``VerificationStatus``).
_STATUS_ACCEPTED = "accepted"


@dataclass(frozen=True)
class FleetMix:
    """One fleet scenario: who submits what, how hard, and how."""

    drones: int = 12
    flooders: int = 2
    duration_s: float = 60.0
    honest_rate_hz: float = 2.0
    chaos_rate_hz: float = 0.0
    adversary_rate_hz: float = 0.0
    #: Junk/duplicate submissions per flooder-second during storm
    #: windows; 0 disables the flood class entirely.
    flood_burst_per_s: int = 0
    flood_period_s: float = 10.0
    samples: int = 4
    regions: int = 4
    #: Authentication schemes assigned round-robin over the honest fleet.
    schemes: tuple[str, ...] = (SCHEME_RSA,)
    attacks: tuple[str, ...] = ATTACK_CLASSES
    seed: int = 0
    key_bits: int = 512
    hash_name: str = "sha1"

    def __post_init__(self) -> None:
        if self.drones < 1:
            raise ConfigurationError("mix needs at least one drone")
        if self.duration_s <= 0:
            raise ConfigurationError("mix duration must be > 0 s")
        if not self.schemes:
            raise ConfigurationError("mix needs at least one scheme")
        if self.flood_burst_per_s > 0 and self.flooders < 1:
            raise ConfigurationError("a flood needs at least one flooder")


@dataclass
class ClassStats:
    """Intake and verdict accounting for one traffic class."""

    submitted: int = 0
    accepted: int = 0
    deduplicated: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    statuses: dict[str, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        return self.shed_rate_limited + self.shed_queue_full

    @property
    def shed_ratio(self) -> float:
        return (self.shed / self.submitted) if self.submitted else 0.0

    @property
    def turned_away_ratio(self) -> float:
        """Shed or deduplicated, as a fraction of submitted."""
        if not self.submitted:
            return 0.0
        return (self.shed + self.deduplicated) / self.submitted

    def to_dict(self) -> dict:
        return {"submitted": self.submitted, "accepted": self.accepted,
                "deduplicated": self.deduplicated, "shed": self.shed,
                "shed_rate_limited": self.shed_rate_limited,
                "shed_queue_full": self.shed_queue_full,
                "statuses": dict(sorted(self.statuses.items()))}


@dataclass(frozen=True)
class FleetReport:
    """Deterministic summary of one fleet run."""

    mix: FleetMix
    policy: str
    shards: int
    queue_capacity: int
    events_total: int
    replayed_on_start: int
    classes: dict[str, ClassStats]
    stats: dict
    status_counts: dict[str, int]
    false_accepts: list[dict]
    alerts: list[dict]
    admission: dict | None
    crash: dict | None
    store: dict
    honest_shed_ratio: float
    flood_turned_away_ratio: float
    invariants: dict[str, bool]
    ok: bool

    def to_dict(self) -> dict:
        """JSON-ready form; every value is seed-deterministic."""
        return {
            "mix": {
                "drones": self.mix.drones,
                "flooders": self.mix.flooders,
                "duration_s": self.mix.duration_s,
                "honest_rate_hz": self.mix.honest_rate_hz,
                "chaos_rate_hz": self.mix.chaos_rate_hz,
                "adversary_rate_hz": self.mix.adversary_rate_hz,
                "flood_burst_per_s": self.mix.flood_burst_per_s,
                "flood_period_s": self.mix.flood_period_s,
                "samples": self.mix.samples,
                "regions": self.mix.regions,
                "schemes": list(self.mix.schemes),
                "attacks": list(self.mix.attacks),
                "seed": self.mix.seed,
                "key_bits": self.mix.key_bits,
            },
            "policy": self.policy,
            "shards": self.shards,
            "queue_capacity": self.queue_capacity,
            "events_total": self.events_total,
            "replayed_on_start": self.replayed_on_start,
            "classes": {name: stats.to_dict()
                        for name, stats in sorted(self.classes.items())},
            "stats": self.stats,
            "status_counts": dict(sorted(self.status_counts.items())),
            "false_accepts": list(self.false_accepts),
            "alerts": list(self.alerts),
            "admission": self.admission,
            "crash": self.crash,
            "store": dict(self.store),
            "honest_shed_ratio": self.honest_shed_ratio,
            "flood_turned_away_ratio": self.flood_turned_away_ratio,
            "invariants": dict(sorted(self.invariants.items())),
            "ok": self.ok,
        }


@dataclass(frozen=True)
class FleetRunResult:
    """A deterministic report plus the run's wall-clock measurements."""

    report: FleetReport
    #: Non-deterministic wall-clock block (latency quantiles, sustained
    #: throughput, provisioning time, store path) — kept out of
    #: :meth:`FleetReport.to_dict` so determinism checks stay byte-exact.
    timing: dict


def _percentile(sorted_values: Sequence[float], q: float) -> float | None:
    if not sorted_values:
        return None
    pos = min(len(sorted_values) - 1,
              max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[pos]


def _merge_stats(frames: Sequence[dict]) -> dict:
    """Sum ServiceStats snapshots across service lifetimes (crash runs)."""
    merged: dict = {}
    for frame in frames:
        for key, value in frame.items():
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            elif isinstance(value, list):
                base = merged.setdefault(key, [0] * len(value))
                if len(base) < len(value):
                    base.extend([0] * (len(value) - len(base)))
                for i, item in enumerate(value):
                    base[i] += item
            elif isinstance(value, dict):
                base = merged.setdefault(key, {})
                for sub, item in value.items():
                    base[sub] = base.get(sub, 0) + item
    for key, value in list(merged.items()):
        if isinstance(value, dict):
            merged[key] = dict(sorted(value.items()))
    return merged


class FleetSimulator:
    """Drives one :class:`FleetMix` through a real auditor service.

    Args:
        mix: the traffic scenario.
        store: flight-store path (``":memory:"`` for ephemeral runs;
            a real path is required when ``crash_at`` is set, since the
            crash is survived *through* the store).
        shards / queue_capacity: service layout.
        policy: admission policy (``"none"`` / ``"fifo"`` /
            ``"fair-share"`` / ``"hybrid"``); ``"none"`` is the
            unguarded baseline the benchmark compares against.
        admission_rate_per_s / admission_burst: global-bucket sizing for
            the scheduler (ignored under ``"none"``).
        crash_at: virtual instant to kill and reopen the service at
            (between that tick's submits and its drain).
        max_honest_shed: bound the ``honest_liveness`` invariant asserts.
        tick_s / telemetry_window_s: loop step and rollup window.
    """

    def __init__(self, mix: FleetMix, *, store: str = ":memory:",
                 shards: int = 2,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 policy: str = "none",
                 admission_rate_per_s: float | None = None,
                 admission_burst: float = 64.0,
                 admission_kwargs: dict | None = None,
                 crash_at: float | None = None,
                 max_honest_shed: float = 0.2,
                 tick_s: float = 1.0,
                 telemetry_window_s: float = 30.0):
        if crash_at is not None and store == ":memory:":
            raise ConfigurationError(
                "crash_at needs a durable store path (not :memory:)")
        self.mix = mix
        self.store_path = store
        self.shards = int(shards)
        self.queue_capacity = int(queue_capacity)
        self.policy = policy if policy else "none"
        self.admission_rate_per_s = admission_rate_per_s
        self.admission_burst = admission_burst
        self.admission_kwargs = dict(admission_kwargs or {})
        self.crash_at = crash_at
        self.max_honest_shed = float(max_honest_shed)
        self.tick_s = float(tick_s)
        self.telemetry_window_s = float(telemetry_window_s)
        self.frame = LocalFrame(GeoPoint(40.1000, -88.2200))
        self._encryption_key = generate_rsa_keypair(
            max(512, mix.key_bits), rng=random.Random(mix.seed + 77))
        self.hub = TelemetryHub(window_s=self.telemetry_window_s)
        self.monitor = MonitorEngine(builtin_rules())
        self.classes: dict[str, ClassStats] = {}
        self._honest = ClassStats()

    # --- service lifecycle --------------------------------------------------

    def _open_service(self) -> AuditorService:
        scheduler = build_scheduler(
            self.policy, rate_per_s=self.admission_rate_per_s,
            burst=self.admission_burst, **self.admission_kwargs)
        service = AuditorService(
            self.frame, self.store_path, shards=self.shards,
            queue_capacity=self.queue_capacity, admission=scheduler,
            encryption_key=self._encryption_key, telemetry=self.hub)
        # The zone database is in-memory per service instance; the NFZ
        # must come back after a crash or violating flights would verify
        # against an empty zone set (and falsely ACCEPT).
        center = self.frame.to_geo(0.0, 0.0)
        service.register_zone(NoFlyZone(center.lat, center.lon, 50.0))
        return service

    def _register_cb(self, service: AuditorService):
        def register(operator_public, tee_public, name):
            existing = service.store.find_drone_by_tee(tee_public)
            if existing is not None:
                return existing.drone_id
            return service.register_drone(DroneRegistrationRequest(
                operator_public_key=operator_public,
                tee_public_key=tee_public, operator_name=name))
        return register

    def _honest_shed_ratio(self) -> float:
        return self._honest.shed_ratio

    # --- event construction -------------------------------------------------

    def _build_events(self, fleet: list[FleetDrone],
                      flooders: list[FleetDrone]) -> list[FleetEvent]:
        mix = self.mix
        scheme_of = {drone.drone_id: mix.schemes[i % len(mix.schemes)]
                     for i, drone in enumerate(fleet)}
        enc = self._encryption_key.public_key
        common = dict(frame=self.frame, seed=mix.seed,
                      duration_s=mix.duration_s, samples=mix.samples,
                      t0=DEFAULT_EPOCH, hash_name=mix.hash_name)
        streams = [honest_stream(fleet, enc, rate_hz=mix.honest_rate_hz,
                                 scheme_of=scheme_of, **common)]
        if mix.chaos_rate_hz > 0:
            streams.append(chaos_stream(fleet, enc,
                                        rate_hz=mix.chaos_rate_hz,
                                        scheme_of=scheme_of, **common))
        if mix.adversary_rate_hz > 0:
            streams.append(adversary_stream(fleet, enc,
                                            rate_hz=mix.adversary_rate_hz,
                                            scheme_of=scheme_of,
                                            attacks=mix.attacks, **common))
        if mix.flood_burst_per_s > 0:
            streams.append(flood_stream(
                flooders, enc, frame=self.frame, seed=mix.seed,
                burst_per_s=mix.flood_burst_per_s,
                storm_period_s=mix.flood_period_s,
                duration_s=mix.duration_s, samples=min(mix.samples, 3),
                t0=DEFAULT_EPOCH, hash_name=mix.hash_name))
        return merge_streams(*streams)

    # --- the run ------------------------------------------------------------

    def run(self) -> FleetRunResult:
        """Provision, simulate, and summarize one fleet scenario."""
        mix = self.mix
        t0 = DEFAULT_EPOCH
        provision_start = time.perf_counter()
        service = self._open_service()
        fleet = provision_fleet(self._register_cb(service),
                                drones=mix.drones, key_bits=mix.key_bits,
                                seed=mix.seed, regions=mix.regions)
        flooders = provision_fleet(self._register_cb(service),
                                   drones=mix.flooders,
                                   key_bits=mix.key_bits,
                                   seed=mix.seed + 424_243,
                                   regions=mix.regions) \
            if mix.flood_burst_per_s > 0 else []
        replayed_on_start = service.recover(now=t0)
        events = self._build_events(fleet, flooders)
        provision_s = time.perf_counter() - provision_start

        self.classes = {CLASS_HONEST: ClassStats()}
        self._honest = self.classes[CLASS_HONEST]
        if mix.chaos_rate_hz > 0:
            self.classes[CLASS_CHAOS] = ClassStats()
        if mix.adversary_rate_hz > 0:
            self.classes[CLASS_ADVERSARY] = ClassStats()
        if mix.flood_burst_per_s > 0:
            self.classes[CLASS_FLOOD] = ClassStats()
        self.hub.gauge("fleet.honest.shed_ratio", self._honest_shed_ratio)

        seq_events: dict[int, FleetEvent] = {}
        intake_latencies: list[float] = []
        alerts: list[dict] = []
        stats_frames: list[dict] = []
        crash: dict | None = None
        cursor = 0

        def submit_due(now: float) -> None:
            nonlocal cursor
            while cursor < len(events) and events[cursor].at <= now:
                event = events[cursor]
                cursor += 1
                stats = self.classes[event.traffic_class]
                stats.submitted += 1
                started = time.perf_counter()
                decision = service.submit(event.submission, now=event.at,
                                          region=event.region)
                intake_latencies.append(time.perf_counter() - started)
                if decision.outcome == OUTCOME_ACCEPTED:
                    stats.accepted += 1
                    seq_events[decision.seq] = event
                elif decision.outcome == OUTCOME_DEDUPLICATED:
                    stats.deduplicated += 1
                elif decision.outcome == OUTCOME_SHED_RATE:
                    stats.shed_rate_limited += 1
                elif decision.outcome == OUTCOME_SHED_QUEUE:
                    stats.shed_queue_full += 1

        def drain_and_watch(now: float) -> None:
            for record in service.drain(now):
                event = seq_events.get(record.seq)
                report = record.outcome.report
                if (event is not None and event.must_reject
                        and report is not None
                        and report.status.value == _STATUS_ACCEPTED):
                    self.hub.mark("audit.false_accepts", now=now)
            for alert in self.monitor.evaluate(
                    flatten_rollup(self.hub.rollup(now)), now):
                alerts.append({"rule": alert.rule,
                               "severity": alert.severity,
                               "t": alert.fired_at - t0})

        drive_start = time.perf_counter()
        ticks = int(math.ceil(mix.duration_s / self.tick_s))
        for tick in range(1, ticks + 1):
            now = t0 + tick * self.tick_s
            submit_due(now)
            if (self.crash_at is not None and crash is None
                    and now >= self.crash_at):
                # Kill the service at the worst instant: rows stored and
                # queued this tick but not yet audited.
                pending = service.store.pending_count()
                stats_frames.append(service.stats.to_dict())
                service.close()
                service = self._open_service()
                replayed = service.recover(now=now)
                crash = {"at": now - t0, "pending_at_crash": pending,
                         "replayed": replayed}
            drain_and_watch(now)
        end = t0 + ticks * self.tick_s
        submit_due(end + 1.0)
        drain_and_watch(end)
        drive_s = time.perf_counter() - drive_start
        stats_frames.append(service.stats.to_dict())

        # Verdict attribution from the store: covers both live-drained
        # and crash-recovered rows, exactly once each.
        false_accepts: list[dict] = []
        status_counts: dict[str, int] = {}
        for stored, verdict in service.audited_submissions():
            status_counts[verdict.status] = \
                status_counts.get(verdict.status, 0) + 1
            event = seq_events.get(stored.seq)
            if event is None:
                continue
            stats = self.classes[event.traffic_class]
            stats.statuses[verdict.status] = \
                stats.statuses.get(verdict.status, 0) + 1
            if event.must_reject and verdict.status == _STATUS_ACCEPTED:
                false_accepts.append({
                    "seq": stored.seq, "drone_id": event.drone_id,
                    "flight_id": event.submission.flight_id,
                    "traffic_class": event.traffic_class,
                    "attack": event.attack})

        merged_stats = _merge_stats(stats_frames)
        honest = self.classes[CLASS_HONEST]
        flood = self.classes.get(CLASS_FLOOD)
        adversary = self.classes.get(CLASS_ADVERSARY)
        store_summary = {"submissions": service.store.submission_count(),
                         "verdicts": service.store.verdict_count(),
                         "pending": service.store.pending_count()}
        admission_summary = (service.admission.stats.to_dict()
                             if service.admission is not None else None)

        invariants = {
            "zero_false_accepts": not false_accepts,
            "adversary_never_accepted":
                adversary is None
                or adversary.statuses.get(_STATUS_ACCEPTED, 0) == 0,
            "honest_admitted_accepted":
                set(honest.statuses) <= {_STATUS_ACCEPTED},
            "honest_liveness": honest.shed_ratio <= self.max_honest_shed,
            "store_drained": (store_summary["pending"] == 0
                              and service.queue_depth == 0
                              and merged_stats.get("intake_errors", 0) == 0),
            "no_page_alerts": not any(a["severity"] == "page"
                                      for a in alerts),
        }
        if flood is not None and self.policy != "none":
            invariants["flood_contained"] = (
                flood.turned_away_ratio > 0.0
                and flood.turned_away_ratio >= honest.shed_ratio)
        report = FleetReport(
            mix=mix, policy=self.policy, shards=self.shards,
            queue_capacity=self.queue_capacity, events_total=len(events),
            replayed_on_start=replayed_on_start,
            classes=dict(self.classes), stats=merged_stats,
            status_counts=status_counts, false_accepts=false_accepts,
            alerts=alerts, admission=admission_summary, crash=crash,
            store=store_summary,
            honest_shed_ratio=honest.shed_ratio,
            flood_turned_away_ratio=(flood.turned_away_ratio
                                     if flood is not None else 0.0),
            invariants=invariants, ok=all(invariants.values()))

        latencies = sorted(intake_latencies)
        timing = {
            "provision_s": provision_s,
            "drive_s": drive_s,
            "sustained_submissions_per_s": (
                merged_stats.get("submitted", 0) / drive_s
                if drive_s > 0 else 0.0),
            "intake_p50_s": _percentile(latencies, 0.50),
            "intake_p99_s": _percentile(latencies, 0.99),
            "store_path": service.store.path,
        }
        service.close()
        return FleetRunResult(report=report, timing=timing)
