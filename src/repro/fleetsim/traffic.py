"""Fleet traffic classes: honest, chaos-degraded, adversarial, flooding.

Each generator turns a provisioned fleet into a deterministic list of
:class:`FleetEvent` — a submission hitting intake at a virtual instant,
tagged with its traffic class and, crucially, its *ground truth*: an
event with ``must_reject=True`` describes a submission the auditor must
never ACCEPT (a genuinely violating flight, tampered evidence, a replay
under a foreign identity, junk).  The fleet invariant suite checks the
zero-false-accept property against exactly this flag.

Attack classes (each independently verified against the audit engine):

* ``incursion`` — a truthfully-signed trace straight through the NFZ.
  The drone really violated; a clean alibi would be a false accept.
  Engine verdict: insufficient/infeasible, never ACCEPTED.
* ``payload_tamper`` — one ciphertext byte flipped in transit
  (→ ``decrypt_failed``).
* ``signature_bitflip`` — one authenticator byte flipped
  (→ ``bad_signature``).
* ``foreign_replay`` — drone A's validly-signed records submitted under
  drone B's identity (→ ``bad_signature`` under B's ``T+``).
* ``record_reorder`` — records reversed in transit (→ ``out_of_order``
  for per-sample RSA; ``bad_signature`` for chained/batched/Merkle
  schemes, whose finalizers pin the order).

Chaos traffic reuses the :mod:`repro.faults` link-fault machinery (drop
/ duplicate / corrupt per record) — degraded honest flights may be
rejected, which is safe; they must simply never be *mis*-accepted.
Flood traffic alternates byte-identical re-uploads (absorbed by store
dedup) with junk submissions (rejected as undecryptable), emitted in
storm windows so the admission scheduler's fairness is measurable.

All randomness flows from explicit seeds through dedicated
``random.Random`` streams; two calls with equal arguments produce
byte-identical event lists.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.poa import EncryptedPoaRecord
from repro.core.protocol import PoaSubmission
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.schemes import SCHEME_RSA
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.geo.geodesy import LocalFrame
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.fleet import (FleetDrone, build_flight_submission,
                                   build_violation_submission)

CLASS_HONEST = "honest"
CLASS_CHAOS = "chaos"
CLASS_ADVERSARY = "adversary"
CLASS_FLOOD = "flood"
TRAFFIC_CLASSES = (CLASS_HONEST, CLASS_CHAOS, CLASS_ADVERSARY, CLASS_FLOOD)
_CLASS_RANK = {name: rank for rank, name in enumerate(TRAFFIC_CLASSES)}

ATTACK_INCURSION = "incursion"
ATTACK_PAYLOAD_TAMPER = "payload_tamper"
ATTACK_SIGNATURE_BITFLIP = "signature_bitflip"
ATTACK_FOREIGN_REPLAY = "foreign_replay"
ATTACK_RECORD_REORDER = "record_reorder"
ATTACK_CLASSES = (ATTACK_INCURSION, ATTACK_PAYLOAD_TAMPER,
                  ATTACK_SIGNATURE_BITFLIP, ATTACK_FOREIGN_REPLAY,
                  ATTACK_RECORD_REORDER)

#: Injection point the chaos stream degrades records at.
POINT_FLEET_UPLINK = "fleet.uplink.send"

#: Per-class flight-index bases keep flight ids collision-free when the
#: same drone appears in several streams of one run.
_INDEX_BASE = {CLASS_HONEST: 0, CLASS_CHAOS: 100_000,
               CLASS_ADVERSARY: 200_000, CLASS_FLOOD: 300_000}


@dataclass(frozen=True)
class FleetEvent:
    """One submission hitting service intake at virtual time ``at``."""

    at: float
    submission: PoaSubmission
    region: str
    drone_id: str
    traffic_class: str
    #: Ground truth: ACCEPTING this submission would be a false accept.
    must_reject: bool = False
    #: Attack class for adversary events (None otherwise).
    attack: str | None = None
    #: Emission index within the generating stream (merge tie-breaker).
    index: int = 0


def _scheme_for(scheme_of: Mapping[str, str] | None,
                drone: FleetDrone) -> str:
    if scheme_of is None:
        return SCHEME_RSA
    return scheme_of.get(drone.drone_id, SCHEME_RSA)


def _poisson_times(rng: random.Random, rate_hz: float, t0: float,
                   duration_s: float) -> list[float]:
    times = []
    t = t0
    while True:
        t += rng.expovariate(rate_hz)
        if t >= t0 + duration_s:
            return times
        times.append(t)


def honest_stream(fleet: Sequence[FleetDrone],
                  encryption_public_key: RsaPublicKey, *,
                  frame: LocalFrame, seed: int = 0,
                  rate_hz: float = 2.0, duration_s: float = 60.0,
                  samples: int = 4, t0: float = DEFAULT_EPOCH,
                  hash_name: str = "sha1",
                  scheme_of: Mapping[str, str] | None = None
                  ) -> list[FleetEvent]:
    """Honest Poisson fleet traffic; every admitted event must ACCEPT."""
    if not fleet or rate_hz <= 0:
        return []
    rng = random.Random(seed * 0x5EED + 11)
    events: list[FleetEvent] = []
    counts: dict[str, int] = {}
    for at in _poisson_times(rng, rate_hz, t0, duration_s):
        drone = fleet[rng.randrange(len(fleet))]
        index = counts.get(drone.drone_id, 0)
        counts[drone.drone_id] = index + 1
        submission = build_flight_submission(
            drone, encryption_public_key, frame=frame,
            flight_index=_INDEX_BASE[CLASS_HONEST] + index,
            samples=samples, start=at - samples, rng=rng,
            hash_name=hash_name, scheme=_scheme_for(scheme_of, drone))
        events.append(FleetEvent(at=at, submission=submission,
                                 region=drone.region,
                                 drone_id=drone.drone_id,
                                 traffic_class=CLASS_HONEST,
                                 index=len(events)))
    return events


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """The stock link-degradation plan the chaos stream runs under."""
    return FaultPlan(
        name="fleet-chaos", seed=seed, expected_loss=0.15,
        rules=(
            FaultRule(point=POINT_FLEET_UPLINK, action="drop",
                      probability=0.15),
            FaultRule(point=POINT_FLEET_UPLINK, action="duplicate",
                      probability=0.10),
            FaultRule(point=POINT_FLEET_UPLINK, action="corrupt",
                      probability=0.10),
        ))


def chaos_stream(fleet: Sequence[FleetDrone],
                 encryption_public_key: RsaPublicKey, *,
                 frame: LocalFrame, seed: int = 0,
                 rate_hz: float = 1.0, duration_s: float = 60.0,
                 samples: int = 4, t0: float = DEFAULT_EPOCH,
                 hash_name: str = "sha1",
                 scheme_of: Mapping[str, str] | None = None,
                 plan: FaultPlan | None = None) -> list[FleetEvent]:
    """Honest flights degraded record-by-record through a fault plan.

    A degraded flight may verify REJECTED (corrupted or missing
    evidence) — that is the *safe* direction.  ``must_reject`` stays
    False: the drone is honest, and the invariant suite only demands it
    is never mis-accepted as something it is not.
    """
    if not fleet or rate_hz <= 0:
        return []
    if plan is None:
        plan = default_chaos_plan(seed)
    injector = FaultInjector(plan, t0=t0)
    rng = random.Random(seed * 0x5EED + 23)
    events: list[FleetEvent] = []
    counts: dict[str, int] = {}
    for at in _poisson_times(rng, rate_hz, t0, duration_s):
        drone = fleet[rng.randrange(len(fleet))]
        index = counts.get(drone.drone_id, 0)
        counts[drone.drone_id] = index + 1
        submission = build_flight_submission(
            drone, encryption_public_key, frame=frame,
            flight_index=_INDEX_BASE[CLASS_CHAOS] + index,
            samples=samples, start=at - samples, rng=rng,
            hash_name=hash_name, scheme=_scheme_for(scheme_of, drone))
        records: list[EncryptedPoaRecord] = []
        for record in submission.records:
            for delivery in injector.link_deliveries(
                    POINT_FLEET_UPLINK, record.ciphertext, now=at):
                records.append(EncryptedPoaRecord(delivery.payload,
                                                  record.signature))
        submission = dataclasses.replace(submission,
                                         records=tuple(records))
        events.append(FleetEvent(at=at, submission=submission,
                                 region=drone.region,
                                 drone_id=drone.drone_id,
                                 traffic_class=CLASS_CHAOS,
                                 index=len(events)))
    return events


def _flip_byte(blob: bytes, rng: random.Random) -> bytes:
    if not blob:
        return b"\xff"
    pos = rng.randrange(len(blob))
    return blob[:pos] + bytes([blob[pos] ^ 0xFF]) + blob[pos + 1:]


def adversary_stream(fleet: Sequence[FleetDrone],
                     encryption_public_key: RsaPublicKey, *,
                     frame: LocalFrame, seed: int = 0,
                     rate_hz: float = 0.5, duration_s: float = 60.0,
                     samples: int = 4, t0: float = DEFAULT_EPOCH,
                     hash_name: str = "sha1",
                     scheme_of: Mapping[str, str] | None = None,
                     attacks: Sequence[str] = ATTACK_CLASSES
                     ) -> list[FleetEvent]:
    """Attacker flights drawn uniformly from ``attacks`` per arrival.

    Every event carries ``must_reject=True``; the engine verdicts the
    classes map to are documented (and pinned) in the module docstring.
    """
    if not fleet or rate_hz <= 0:
        return []
    for attack in attacks:
        if attack not in ATTACK_CLASSES:
            raise ValueError(f"unknown attack class {attack!r}; "
                             f"expected one of {ATTACK_CLASSES}")
    samples = max(samples, 3)  # reorder/incursion need a real trace
    rng = random.Random(seed * 0x5EED + 37)
    events: list[FleetEvent] = []
    counts: dict[str, int] = {}
    for at in _poisson_times(rng, rate_hz, t0, duration_s):
        attack = attacks[rng.randrange(len(attacks))]
        pick = rng.randrange(len(fleet))
        drone = fleet[pick]
        if attack == ATTACK_FOREIGN_REPLAY and len(fleet) < 2:
            attack = ATTACK_PAYLOAD_TAMPER
        index = counts.get(drone.drone_id, 0)
        counts[drone.drone_id] = index + 1
        flight_index = _INDEX_BASE[CLASS_ADVERSARY] + index
        scheme = _scheme_for(scheme_of, drone)
        if attack == ATTACK_INCURSION:
            submission = build_violation_submission(
                drone, encryption_public_key, frame=frame,
                flight_index=flight_index, samples=samples,
                start=at - samples, rng=rng, hash_name=hash_name,
                scheme=scheme)
        elif attack == ATTACK_FOREIGN_REPLAY:
            signer = fleet[(pick + 1) % len(fleet)]
            base = build_flight_submission(
                signer, encryption_public_key, frame=frame,
                flight_index=flight_index, samples=samples,
                start=at - samples, rng=rng, hash_name=hash_name,
                scheme=_scheme_for(scheme_of, signer))
            submission = dataclasses.replace(
                base, drone_id=drone.drone_id,
                flight_id=f"flight-{drone.drone_id}-{flight_index}")
        else:
            base = build_flight_submission(
                drone, encryption_public_key, frame=frame,
                flight_index=flight_index, samples=samples,
                start=at - samples, rng=rng, hash_name=hash_name,
                scheme=scheme)
            which = rng.randrange(len(base.records))
            record = base.records[which]
            if attack == ATTACK_PAYLOAD_TAMPER:
                record = EncryptedPoaRecord(
                    _flip_byte(record.ciphertext, rng), record.signature)
            elif attack == ATTACK_SIGNATURE_BITFLIP:
                record = EncryptedPoaRecord(
                    record.ciphertext, _flip_byte(record.signature, rng))
            if attack == ATTACK_RECORD_REORDER:
                records = tuple(reversed(base.records))
            else:
                records = (base.records[:which] + (record,)
                           + base.records[which + 1:])
            submission = dataclasses.replace(base, records=records)
        events.append(FleetEvent(at=at, submission=submission,
                                 region=drone.region,
                                 drone_id=drone.drone_id,
                                 traffic_class=CLASS_ADVERSARY,
                                 must_reject=True, attack=attack,
                                 index=len(events)))
    return events


def flood_stream(flooders: Sequence[FleetDrone],
                 encryption_public_key: RsaPublicKey, *,
                 frame: LocalFrame, seed: int = 0,
                 burst_per_s: int = 50, storm_period_s: float = 10.0,
                 duration_s: float = 60.0, samples: int = 3,
                 t0: float = DEFAULT_EPOCH,
                 hash_name: str = "sha1") -> list[FleetEvent]:
    """Flooding/DoS submitters hammering the intake in storm windows.

    The storm cycle is ``storm_period_s`` long with its first half *on*:
    during every on-second each flooder round-robins ``burst_per_s``
    submissions, alternating byte-identical re-uploads of its one honest
    base flight (dedup fodder — not a false accept when the base
    verdict lands once) with junk submissions of undecryptable random
    records (``must_reject=True``).  Sub-second offsets keep events
    totally ordered without colliding with Poisson arrival instants.
    """
    if not flooders or burst_per_s <= 0:
        return []
    if storm_period_s <= 0:
        raise ValueError("storm_period_s must be > 0")
    rng = random.Random(seed * 0x5EED + 53)
    bases = [build_flight_submission(
                 drone, encryption_public_key, frame=frame,
                 flight_index=_INDEX_BASE[CLASS_FLOOD], samples=samples,
                 start=t0 - samples - 1.0, rng=rng, hash_name=hash_name)
             for drone in flooders]
    events: list[FleetEvent] = []
    dup_count = 0
    junk_count = 0
    for second in range(1, int(duration_s)):
        if (second - 1) % storm_period_s >= storm_period_s / 2.0:
            continue
        tt = t0 + float(second)
        for j in range(burst_per_s):
            at = tt + (j + 1) * 1e-4
            if j % 2 == 0:
                # Independent round-robin so every flooder both dups
                # and junks regardless of burst/fleet parity.
                drone = flooders[dup_count % len(flooders)]
                submission = bases[dup_count % len(flooders)]
                dup_count += 1
                must_reject = False
            else:
                drone = flooders[junk_count % len(flooders)]
                junk_count += 1
                junk = [EncryptedPoaRecord(rng.randbytes(64),
                                           rng.randbytes(64))
                        for _ in range(2)]
                submission = PoaSubmission(
                    drone_id=drone.drone_id,
                    flight_id=(f"flight-{drone.drone_id}-"
                               f"{_INDEX_BASE[CLASS_FLOOD] + junk_count}"),
                    records=junk, claimed_start=tt - samples,
                    claimed_end=tt - 1.0)
                must_reject = True
            events.append(FleetEvent(at=at, submission=submission,
                                     region=drone.region,
                                     drone_id=drone.drone_id,
                                     traffic_class=CLASS_FLOOD,
                                     must_reject=must_reject,
                                     index=len(events)))
    return events


def merge_streams(*streams: Sequence[FleetEvent]) -> list[FleetEvent]:
    """All events in one deterministic arrival order.

    Sorted by instant, then traffic-class rank, then emission index —
    a total order, so equal seeds replay byte-identically.
    """
    merged = [event for stream in streams for event in stream]
    merged.sort(key=lambda e: (e.at, _CLASS_RANK[e.traffic_class], e.index))
    return merged
