"""The attack classes of the matrix, one subclass per forgery strategy.

Submission attacks (:class:`SubmissionAttack`) transform the violation
flight's genuine PoA — or other signed material the operator could
plausibly hold — into a forged submission plus a claimed flight window,
then let the shared driver submit and adjudicate it.  Protocol attacks
(:class:`NonceReplay`) and platform attacks (:class:`KeyExtraction`)
override :meth:`Attack.execute` entirely.

Every attack declares ``expected_outcomes``: the set of rejection labels
the deployment is allowed to answer with.  Any other label — above all
``"false_accept"`` — fails the matrix.  Some strategies trip a *different*
stage under flight-level authentication (dropping or reordering entries
breaks a batch digest or hash chain before ordering/sufficiency ever run),
so attacks may override the expectation per scheme via
``scheme_expectations``; :meth:`Attack.expected_for` resolves it.
"""

from __future__ import annotations

import math
import pickle
import random
import uuid
from dataclasses import dataclass

from repro.core.attacks import forge_straight_route, tamper_with_samples
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.protocol import ZoneQuery
from repro.core.samples import GpsSample
from repro.core.verification import VerificationStatus
from repro.crypto.keys import private_key_from_bytes
from repro.crypto.pkcs1 import sign_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.schemes import (
    SCHEME_BATCH,
    SCHEME_CHAIN,
    SCHEME_MERKLE,
    ChainFinalizer,
    chain_link,
)
from repro.errors import (
    AliDroneError,
    AuthenticationError,
    TeeError,
    TrustedAppError,
    WorldIsolationError,
)
from repro.privacy.merkle import MembershipProof, MerkleTree
from repro.tee.gps_sampler_ta import SIGN_KEY_ENTRY

#: How far outside the zone boundary suppressed traces keep their samples.
SUPPRESS_MARGIN_M = 5.0

#: Seconds of genuine trace a truncation attack gives up before entry.
TRUNCATE_GUARD_S = 5.0


@dataclass(frozen=True)
class AttackResult:
    """What one attack execution produced."""

    outcome: str
    accepted: bool
    cleared: bool
    detail: str = ""

    @property
    def false_accept(self) -> bool:
        """The attack fully succeeded: verified AND exonerated."""
        return self.accepted and self.cleared


class Attack:
    """One forgery strategy, executable against an :class:`AttackWorld`."""

    name = "attack"
    description = ""
    #: Labels the deployment may answer with; anything else is a failure.
    expected_outcomes: frozenset[str] = frozenset()
    #: Scheme-specific overrides: under flight-level authentication some
    #: strategies are caught structurally (``bad_signature``) before the
    #: stage that catches them under per-sample RSA is ever reached.
    scheme_expectations: dict[str, frozenset[str]] = {}

    def expected_for(self, scheme: str) -> frozenset[str]:
        """Allowed outcomes when the world flies under ``scheme``."""
        return self.scheme_expectations.get(scheme, self.expected_outcomes)

    def execute(self, world, rng: random.Random) -> AttackResult:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SubmissionAttack(Attack):
    """An attack whose product is a forged PoA submission.

    Subclasses implement :meth:`forge` returning ``(poa, claimed_start,
    claimed_end)``; the driver here registers a fresh drone identity (so
    retained evidence from other cells cannot bleed in), submits, then
    triggers incident adjudication against the violated zone.
    """

    def forge(self, world, rng: random.Random,
              ) -> tuple[ProofOfAlibi, float, float]:
        raise NotImplementedError

    def execute(self, world, rng: random.Random) -> AttackResult:
        drone_id = world.fresh_identity()
        poa, start, end = self.forge(world, rng)
        report = world.submit(drone_id, poa, start, end,
                              flight_id=f"atk-{self.name}")
        finding = world.adjudicate(drone_id)
        accepted = report.status is VerificationStatus.ACCEPTED
        cleared = not finding.violation
        if accepted and cleared:
            outcome = "false_accept"
            detail = "verified and exonerated"
        elif not accepted:
            outcome = report.reason.value
            detail = report.message
        else:
            outcome = finding.kind.value
            detail = finding.detail
        return AttackResult(outcome=outcome, accepted=accepted,
                            cleared=cleared, detail=detail)


class SuppressIncursion(SubmissionAttack):
    """Drop every signed sample taken inside (or near) the zone.

    All surviving signatures are genuine, but the bridging pair around the
    hole cannot rule out NFZ entrance — sufficiency (eq. 1) rejects.
    """

    name = "suppress_incursion"
    description = "omit in-zone samples, keep the true flight window"
    expected_outcomes = frozenset({"insufficient_coverage"})
    # Dropping entries from a batch-signed, chained, or Merkle-committed
    # flight breaks the flight authenticator before sufficiency is ever
    # evaluated (a Merkle full trace must carry every committed leaf;
    # hiding leaves *with* proofs is the separate merkle_omitted_leaves).
    scheme_expectations = {SCHEME_BATCH: frozenset({"bad_signature"}),
                           SCHEME_CHAIN: frozenset({"bad_signature"}),
                           SCHEME_MERKLE: frozenset({"bad_signature"})}

    def forge(self, world, rng):
        cx, cy = world.zone_center_xy
        keep = []
        for entry in world.violation_poa:
            x, y = entry.sample.local_position(world.frame)
            if math.hypot(x - cx, y - cy) > \
                    world.zone.radius_m + SUPPRESS_MARGIN_M:
                keep.append(entry)
        return (world.violation_poa.replace_entries(keep),
                world.violation_start, world.violation_end)


class TruncateAtIncursion(SubmissionAttack):
    """Cut the trace (and the claimed window) just before zone entry.

    The submitted prefix is internally flawless, so it may well verify —
    but the shortened claimed window no longer covers the incident time,
    and the burden-of-proof model treats "no covering PoA" as violation.
    """

    name = "truncate_at_incursion"
    description = "submit only the pre-incursion prefix, shrink the window"
    expected_outcomes = frozenset(
        {"no_poa", "insufficient_coverage", "insufficient"})
    # A prefix of a batch-signed, chained, or Merkle-committed flight no
    # longer matches the finalizer the operator holds, so the forgery
    # dies at authentication.
    scheme_expectations = {SCHEME_BATCH: frozenset({"bad_signature"}),
                           SCHEME_CHAIN: frozenset({"bad_signature"}),
                           SCHEME_MERKLE: frozenset({"bad_signature"})}

    def forge(self, world, rng):
        cutoff = world.incursion_start - TRUNCATE_GUARD_S
        keep = [entry for entry in world.violation_poa
                if entry.sample.t < cutoff]
        end = keep[-1].sample.t if keep else world.violation_start
        return (world.violation_poa.replace_entries(keep),
                world.violation_start, end)


class ReplayPreviousFlight(SubmissionAttack):
    """Resubmit a genuine, compliant PoA from an earlier flight as-is.

    Every check passes — the evidence is real — but the honest claimed
    window belongs to yesterday and cannot cover today's incident.
    """

    name = "replay_previous_flight"
    description = "replay an old compliant PoA with its true window"
    expected_outcomes = frozenset({"no_poa"})

    def forge(self, world, rng):
        return world.old_poa, world.old_start, world.old_end


class WindowLie(SubmissionAttack):
    """Replay an old PoA but claim a window covering the incident.

    Verification still accepts (signatures and geometry are genuine), so
    rejection must come from adjudication: no sample pair brackets the
    incident instant, and an alibi that cannot speak for the accusation
    time is insufficient.
    """

    name = "window_lie"
    description = "old PoA, claimed window stretched over the incident"
    expected_outcomes = frozenset({"insufficient"})

    def forge(self, world, rng):
        duration = world.old_end - world.old_start
        return (world.old_poa, world.incident_time - duration,
                world.incident_time + 60.0)


class RelayForeignDrone(SubmissionAttack):
    """Submit an accomplice drone's concurrent compliant PoA (§III-B).

    The accomplice's TEE signed a clean trace over exactly the right
    window — but under *its* key, which is not the ``T+`` registered for
    the accused drone.
    """

    name = "relay_foreign_drone"
    description = "accomplice's signed compliant trace, accused identity"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        a = world.frame.to_geo(0.0, world.safe_y)
        b = world.frame.to_geo(world.area_m, world.safe_y)
        poa = forge_straight_route(
            a, b, world.violation_start, world.violation_end,
            n_samples=12, attacker_key=world.accomplice_key,
            hash_name=world.hash_name)
        return poa, world.violation_start, world.violation_end


class TamperPosition(SubmissionAttack):
    """Rewrite in-zone payload positions, keeping the TEE signatures."""

    name = "tamper_position"
    description = "shift in-zone samples outside, original signatures"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        cx, cy = world.zone_center_xy
        inside = []
        for i, entry in enumerate(world.violation_poa):
            x, y = entry.sample.local_position(world.frame)
            if math.hypot(x - cx, y - cy) <= world.zone.radius_m:
                inside.append(i)
        poa = tamper_with_samples(world.violation_poa,
                                  lat_shift_deg=0.01, lon_shift_deg=0.0,
                                  indices=inside or [0])
        return poa, world.violation_start, world.violation_end


class BitflipSignature(SubmissionAttack):
    """Flip a single signature bit (transport corruption / crude forgery)."""

    name = "bitflip_signature"
    description = "one flipped bit in one authenticator"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        poa = world.violation_poa
        entries = list(poa.entries)
        i = rng.randrange(len(entries))
        if entries[i].signature:
            sig = bytearray(entries[i].signature)
            sig[rng.randrange(len(sig))] ^= 1 << rng.randrange(8)
            entries[i] = SignedSample(payload=entries[i].payload,
                                      signature=bytes(sig),
                                      scheme=entries[i].scheme)
            forged = poa.replace_entries(entries)
        else:
            # Batch scheme: per-sample blobs are empty, so the only
            # authenticator bytes to corrupt live in the finalizer.
            finalizer = bytearray(poa.finalizer)
            finalizer[rng.randrange(len(finalizer))] ^= 1 << rng.randrange(8)
            forged = poa.replace_entries(entries)
            forged.seal(bytes(finalizer))
        return forged, world.violation_start, world.violation_end


class TimestampReorder(SubmissionAttack):
    """Submit the genuine entries in reverse chronological order."""

    name = "timestamp_reorder"
    description = "genuine samples, reversed order"
    expected_outcomes = frozenset({"out_of_order"})
    # Reordering breaks the batch digest / chain replay / Merkle root
    # recomputation before the ordering stage sees the timestamps.
    scheme_expectations = {SCHEME_BATCH: frozenset({"bad_signature"}),
                           SCHEME_CHAIN: frozenset({"bad_signature"}),
                           SCHEME_MERKLE: frozenset({"bad_signature"})}

    def forge(self, world, rng):
        entries = list(world.violation_poa.entries)
        entries.reverse()
        return (world.violation_poa.replace_entries(entries),
                world.violation_start, world.violation_end)


class ClockSkewForgery(SubmissionAttack):
    """Re-stamp every payload a constant skew later, keep signatures.

    Models an operator claiming the TEE clock ran fast — but the
    timestamps live *inside* the signed payloads, so shifting them breaks
    every signature.
    """

    name = "clock_skew_forgery"
    description = "timestamps shifted inside payloads, stale signatures"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        skew = 120.0
        entries = []
        for entry in world.violation_poa:
            s = entry.sample
            moved = GpsSample(s.lat, s.lon, s.t + skew, s.alt)
            entries.append(SignedSample(payload=moved.to_signed_payload(),
                                        signature=entry.signature,
                                        scheme=entry.scheme))
        return (world.violation_poa.replace_entries(entries),
                world.violation_start + skew, world.violation_end + skew)


class TeleportSpoof(SubmissionAttack):
    """Fabricate a condition-(3)-feasible detour and self-sign it.

    The trajectory is crafted to pass every geometric check — smooth
    speeds, sufficient clearance — so the only thing standing between the
    operator and an alibi is that they cannot sign with ``T-``.
    """

    name = "teleport_spoof"
    description = "plausible detour trajectory signed with operator key"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        a = world.frame.to_geo(0.0, world.safe_y)
        b = world.frame.to_geo(world.area_m, world.safe_y)
        poa = forge_straight_route(
            a, b, world.violation_start, world.violation_end,
            n_samples=16, attacker_key=world.operator_key,
            hash_name=world.hash_name)
        return poa, world.violation_start, world.violation_end


class ChainTruncation(SubmissionAttack):
    """Drop the chained tail but keep the closed finalizer (§ hash-chain).

    Per-sample RSA cannot see truncation — every surviving signature still
    verifies, and detection falls to coverage.  The chained scheme catches
    it *structurally*: the finalizer commits to the sample count and the
    final link, so a shortened flight fails authentication outright even
    though the claimed window still spans the incursion.
    """

    name = "chain_truncation"
    description = "chained flight minus its in-zone tail, finalizer kept"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        poa, start, end = world.chained_violation()
        cutoff = world.incursion_start - TRUNCATE_GUARD_S
        keep = [entry for entry in poa if entry.sample.t < cutoff]
        if not keep:
            keep = list(poa.entries)[:1]
        return poa.replace_entries(keep), start, end


class ChainSplice(SubmissionAttack):
    """Overwrite in-zone links with copies of out-of-zone ones.

    Preserves the committed sample count, so the count check passes — but
    each spliced position breaks the HMAC chaining (its stored link was
    computed over a different predecessor and payload), so replay flags
    the splice points.
    """

    name = "chain_splice"
    description = "in-zone chain entries replaced by out-of-zone copies"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        poa, start, end = world.chained_violation()
        cx, cy = world.zone_center_xy

        def in_zone(entry):
            x, y = entry.sample.local_position(world.frame)
            return math.hypot(x - cx, y - cy) <= world.zone.radius_m

        entries = list(poa.entries)
        outside = [entry for entry in entries if not in_zone(entry)]
        donor = outside[0] if outside else entries[0]
        spliced = [donor if in_zone(entry) else entry for entry in entries]
        return poa.replace_entries(spliced), start, end


class ChainMacForgery(SubmissionAttack):
    """Recompute every link with the disclosed chain key (TESLA misuse).

    After flight close the finalizer reveals the chain key, so an operator
    *can* mint internally consistent links over doctored payloads.  What
    they cannot re-mint are the two RSA signatures: the close signature
    binds the final link, which changes the moment any payload does.
    """

    name = "chain_mac_forgery"
    description = "links re-MACed with the disclosed key, payloads shifted"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        poa, start, end = world.chained_violation()
        finalizer = ChainFinalizer.from_bytes(poa.finalizer)
        cx, cy = world.zone_center_xy
        forged = []
        previous = finalizer.anchor
        for entry in poa:
            s = entry.sample
            x, y = s.local_position(world.frame)
            if math.hypot(x - cx, y - cy) <= world.zone.radius_m:
                s = GpsSample(s.lat + 0.01, s.lon, s.t, s.alt)
            payload = s.to_signed_payload()
            link = chain_link(finalizer.chain_key, previous, payload)
            forged.append(SignedSample(payload=payload, signature=link,
                                       scheme=entry.scheme))
            previous = link
        return poa.replace_entries(forged), start, end


class MerkleOmittedLeaves(SubmissionAttack):
    """Hide every in-zone leaf behind *valid* membership proofs.

    The selective-disclosure analogue of :class:`SuppressIncursion`: the
    operator reveals only out-of-zone samples, each with a genuine proof
    against the signed root, and keeps the incursion private.  Every
    disclosed byte verifies — but the gap bridging the hole cannot rule
    out NFZ entrance, so the disclosure stage rejects.
    """

    name = "merkle_omitted_leaves"
    description = "in-zone leaves hidden behind valid membership proofs"
    expected_outcomes = frozenset({"insufficient_disclosure"})

    def forge(self, world, rng):
        poa, start, end = world.merkle_violation()
        cx, cy = world.zone_center_xy
        payloads = [entry.payload for entry in poa]
        tree = MerkleTree(payloads)
        keep = {0, len(payloads) - 1}
        for i, entry in enumerate(poa):
            x, y = entry.sample.local_position(world.frame)
            if math.hypot(x - cx, y - cy) > \
                    world.zone.radius_m + SUPPRESS_MARGIN_M:
                keep.add(i)
        entries = [
            SignedSample(payload=payloads[i],
                         signature=tree.membership_proof(i).to_bytes(),
                         scheme=SCHEME_MERKLE)
            for i in sorted(keep)]
        return poa.replace_entries(entries), start, end


class MerkleOverRedaction(SubmissionAttack):
    """Reveal only the two endpoints of the committed flight.

    A maximally private — and maximally uninformative — disclosure: both
    proofs are genuine and the endpoints pin the flight, but the single
    giant gap between them cannot rule out the incursion.
    """

    name = "merkle_over_redaction"
    description = "endpoints only, the whole flight interior redacted"
    expected_outcomes = frozenset({"insufficient_disclosure"})

    def forge(self, world, rng):
        poa, start, end = world.merkle_violation()
        payloads = [entry.payload for entry in poa]
        tree = MerkleTree(payloads)
        entries = [
            SignedSample(payload=payloads[i],
                         signature=tree.membership_proof(i).to_bytes(),
                         scheme=SCHEME_MERKLE)
            for i in sorted({0, len(payloads) - 1})]
        return poa.replace_entries(entries), start, end


class MerkleCrossFlightSplice(SubmissionAttack):
    """Foreign samples with their own tree's proofs, this flight's root.

    The operator holds a genuinely compliant trace (yesterday's flight)
    and presents its samples — proofs and all — under the violation
    flight's signed root and window.  Every proof is internally
    consistent with the *donor* tree, but none replays to the root the
    TEE actually signed.
    """

    name = "merkle_cross_flight_splice"
    description = "compliant donor leaves spliced under the signed root"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        poa, start, end = world.merkle_violation()
        donors = [entry.payload for entry in world.old_poa]
        tree = MerkleTree(donors)
        entries = [
            SignedSample(payload=donors[i],
                         signature=tree.membership_proof(i).to_bytes(),
                         scheme=SCHEME_MERKLE)
            for i in range(len(donors))]
        return poa.replace_entries(entries), start, end


class MerkleForgedSibling(SubmissionAttack):
    """Rewrite in-zone positions and invent sibling hashes to match.

    Forging a proof path for a doctored leaf requires a second preimage
    of an interior node; random siblings model the best an operator
    without one can do.
    """

    name = "merkle_forged_sibling"
    description = "doctored leaves with fabricated proof paths"
    expected_outcomes = frozenset({"bad_signature"})

    def forge(self, world, rng):
        poa, start, end = world.merkle_violation()
        cx, cy = world.zone_center_xy
        payloads = [entry.payload for entry in poa]
        tree = MerkleTree(payloads)
        entries = []
        for i, entry in enumerate(poa):
            s = entry.sample
            x, y = s.local_position(world.frame)
            payload = payloads[i]
            proof = tree.membership_proof(i)
            if math.hypot(x - cx, y - cy) <= world.zone.radius_m:
                moved = GpsSample(s.lat + 0.01, s.lon, s.t, s.alt)
                payload = moved.to_signed_payload()
                proof = MembershipProof(
                    leaf_index=i,
                    siblings=tuple(
                        bytes(rng.randrange(256) for _ in range(32))
                        for _sibling in proof.siblings))
            entries.append(SignedSample(payload=payload,
                                        signature=proof.to_bytes(),
                                        scheme=SCHEME_MERKLE))
        return poa.replace_entries(entries), start, end


class NonceReplay(Attack):
    """Replay a signed zone-query nonce (pre-flight protocol, steps 2-3)."""

    name = "nonce_replay"
    description = "resubmit a previously served signed zone query"
    expected_outcomes = frozenset({"nonce_replayed"})

    def execute(self, world, rng):
        drone_id = world.fresh_identity()
        query = ZoneQuery.create(
            drone_id, world.frame.to_geo(0.0, 0.0),
            world.frame.to_geo(world.area_m, world.area_m),
            world.operator_key, rng)
        world.server.handle_zone_query(query, now=world.violation_start)
        try:
            world.server.handle_zone_query(query,
                                           now=world.violation_start + 1.0)
        except AuthenticationError as exc:
            return AttackResult(outcome="nonce_replayed", accepted=False,
                                cleared=False, detail=str(exc))
        return AttackResult(outcome="false_accept", accepted=True,
                            cleared=True,
                            detail="replayed nonce served twice")


class KeyExtraction(Attack):
    """Try to pull ``T-`` out of the TEE from the normal world.

    Runs every extraction primitive the simulator models — unsealing,
    handle reveal, pickling the handle, reading the sealed blob store,
    loading a TA under the wrong UUID, re-entering the monitor — and, if
    any yields bytes, checks whether they parse into a key that actually
    signs under the registered ``T+``.  Only a *verifying* signature
    counts as extraction; everything else is the isolation holding.
    """

    name = "key_extraction"
    description = "normal-world attempts to extract the TEE sign key"
    expected_outcomes = frozenset({"world_isolation"})

    def execute(self, world, rng):
        device = world.device
        storage = device.sealed_storage
        blocked = []
        recovered: list[bytes] = []

        try:
            recovered.append(storage.unseal(SIGN_KEY_ENTRY))
        except WorldIsolationError:
            blocked.append("unseal")

        try:
            storage._root_key.reveal()
        except WorldIsolationError:
            blocked.append("reveal")

        try:
            pickle.dumps(storage._root_key)
        except TeeError:
            blocked.append("pickle")

        # The sealed blob store *is* readable (it models untrusted flash);
        # extraction only succeeds if its ciphertext doubles as the key.
        blob = storage.raw_blobs().get(SIGN_KEY_ENTRY)
        if blob is not None:
            recovered.append(blob)
            blocked.append("raw_blob")

        try:
            device.client.open_session(uuid.UUID(int=rng.getrandbits(128)))
        except TrustedAppError:
            blocked.append("wrong_uuid")

        try:
            device.monitor.secure_boot_call(
                device.monitor.secure_boot_call, lambda: None)
        except TeeError:
            blocked.append("reentry")

        probe = b"adversary-probe"
        for material in recovered:
            try:
                key = private_key_from_bytes(material)
                signature = sign_pkcs1_v15(key, probe, world.hash_name)
            except (AliDroneError, ValueError, OverflowError):
                continue
            if verify_pkcs1_v15(device.tee_public_key, probe, signature,
                                world.hash_name):
                return AttackResult(
                    outcome="key_extracted", accepted=True, cleared=True,
                    detail="normal world recovered a signing key")
        return AttackResult(outcome="world_isolation", accepted=False,
                            cleared=False,
                            detail="blocked: " + ", ".join(blocked))


def builtin_attacks() -> list[Attack]:
    """The full matrix, in threat-model order."""
    return [
        SuppressIncursion(),
        TruncateAtIncursion(),
        ReplayPreviousFlight(),
        WindowLie(),
        RelayForeignDrone(),
        TamperPosition(),
        BitflipSignature(),
        TimestampReorder(),
        ClockSkewForgery(),
        TeleportSpoof(),
        ChainTruncation(),
        ChainSplice(),
        ChainMacForgery(),
        MerkleOmittedLeaves(),
        MerkleOverRedaction(),
        MerkleCrossFlightSplice(),
        MerkleForgedSibling(),
        NonceReplay(),
        KeyExtraction(),
    ]
