"""The attack matrix: every attack class against every incursion geometry.

:func:`build_world` stands up a complete deployment around one violation
scenario — Auditor server with the zone registered, a provisioned
TrustZone device, a genuine (non-compliant) flight flown through the real
sampler/TEE stack, plus the side material a realistic adversary holds: a
previously-signed compliant PoA from the *same* device (yesterday's
flight) and an accomplice key.  :func:`run_matrix` then executes every
attack in every world, checks the outcome against the attack's declared
expectations, and folds the result into a report whose shape mirrors the
chaos harness from :mod:`repro.faults.chaos` (``config`` / ``cells`` /
``invariants`` / ``ok``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.adversary.attacks import Attack, AttackResult, builtin_attacks
from repro.core.poa import ProofOfAlibi, encrypt_poa
from repro.core.protocol import (
    DroneRegistrationRequest,
    IncidentReport,
    PoaSubmission,
    ZoneRegistrationRequest,
)
from repro.core.verification import VerificationReport, VerificationStatus
from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.crypto.schemes import SCHEME_CHAIN, SCHEME_MERKLE, SCHEME_RSA
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.errors import ConfigurationError
from repro.server.auditor import AliDroneServer
from repro.server.violations import ViolationFinding
from repro.sim.clock import DEFAULT_EPOCH
from repro.tee.attestation import provision_device
from repro.workloads.runner import run_policy
from repro.workloads.scenario import Scenario
from repro.workloads.synthetic import build_violation_variants


@dataclass
class AttackStats:
    """Matrix counters, exportable as ``adversary.*`` metrics."""

    attacks_run: int = 0
    rejected: int = 0
    false_accepts: int = 0
    unexpected_outcomes: int = 0
    by_outcome: dict[str, int] = field(default_factory=dict)

    def record(self, result: AttackResult, expected_ok: bool) -> None:
        self.attacks_run += 1
        self.rejected += not result.false_accept
        self.false_accepts += result.false_accept
        self.unexpected_outcomes += not expected_ok
        self.by_outcome[result.outcome] = \
            self.by_outcome.get(result.outcome, 0) + 1

    def to_dict(self) -> dict:
        return {
            "attacks_run": self.attacks_run,
            "rejected": self.rejected,
            "false_accepts": self.false_accepts,
            "unexpected_outcomes": self.unexpected_outcomes,
            "by_outcome": dict(sorted(self.by_outcome.items())),
        }


@dataclass
class AttackWorld:
    """One deployment an attack executes against."""

    scenario: Scenario
    seed: int
    key_bits: int
    device: object
    operator_key: RsaPrivateKey
    accomplice_key: RsaPrivateKey
    violation_poa: ProofOfAlibi
    violation_start: float
    violation_end: float
    incursion_start: float
    incursion_end: float
    old_poa: ProofOfAlibi
    old_start: float
    old_end: float
    area_m: float
    safe_y: float
    hash_name: str = "sha1"
    #: Sample-authentication scheme the genuine flights were flown under.
    scheme: str = SCHEME_RSA
    _identities: int = 0
    _chained: "tuple[ProofOfAlibi, float, float] | None" = \
        field(default=None, repr=False)
    _merkle: "tuple[ProofOfAlibi, float, float] | None" = \
        field(default=None, repr=False)
    server: AliDroneServer = field(init=False)
    zone_id: str = field(init=False)

    def __post_init__(self) -> None:
        self.fresh_identity()

    @property
    def frame(self):
        return self.scenario.frame

    @property
    def zone(self):
        return self.scenario.zones[0]

    @property
    def zone_center_xy(self) -> tuple[float, float]:
        return self.frame.to_local(self.zone.center)

    @property
    def incident_time(self) -> float:
        """Mid-incursion: when the Zone Owner spotted the drone."""
        return 0.5 * (self.incursion_start + self.incursion_end)

    def fresh_identity(self) -> str:
        """Stand up a pristine Auditor and register the accused drone.

        The drone database refuses to bind one TEE key to two identities,
        and each cell must adjudicate against only its own submissions —
        so isolation is per-server: every cell gets a fresh Auditor with
        the zone registered and no retained evidence from other cells.
        """
        self._identities += 1
        self.server = AliDroneServer(
            self.frame,
            rng=random.Random(self.seed * 1_000 + self._identities),
            encryption_key_bits=self.key_bits)
        self.zone_id = self.server.register_zone(ZoneRegistrationRequest(
            zone=self.zone, proof_of_ownership="deed-adversary",
            owner_name="zone-owner"))
        return self.server.register_drone(DroneRegistrationRequest(
            operator_public_key=self.operator_key.public_key,
            tee_public_key=self.device.tee_public_key,
            operator_name=f"adversary-{self._identities}"))

    def submit(self, drone_id: str, poa: ProofOfAlibi, claimed_start: float,
               claimed_end: float, flight_id: str) -> VerificationReport:
        """Encrypt and upload a (forged) PoA through the real intake."""
        records = encrypt_poa(poa, self.server.public_encryption_key,
                              rng=random.Random(0xFEED))
        submission = PoaSubmission(
            drone_id=drone_id, flight_id=flight_id, records=records,
            claimed_start=claimed_start, claimed_end=claimed_end,
            scheme=poa.scheme, finalizer=poa.finalizer)
        return self.server.receive_poa(submission, now=claimed_end)

    def adjudicate(self, drone_id: str) -> ViolationFinding:
        """The Zone Owner reports the incursion; the Auditor rules."""
        return self.server.handle_incident(IncidentReport(
            zone_id=self.zone_id, drone_id=drone_id,
            incident_time=self.incident_time))

    def chained_violation(self) -> "tuple[ProofOfAlibi, float, float]":
        """The violation flight authenticated under the hash-chain scheme.

        Chain-structural attacks need chained material regardless of the
        matrix's scheme.  When this world already flies chained, the
        genuine evidence serves; otherwise the scenario is re-flown once
        on a twin device (same serial and provisioning randomness, hence
        the same registered ``T+``) with ``scheme="hash-chain"``.
        """
        if self.scheme == SCHEME_CHAIN:
            return (self.violation_poa, self.violation_start,
                    self.violation_end)
        if self._chained is None:
            twin = provision_device(
                f"adv-dev-{self.key_bits}-{self.seed}",
                key_bits=self.key_bits,
                rng=random.Random(self.seed ^ 0x5EED))
            run = run_policy(self.scenario, "adaptive",
                             key_bits=self.key_bits, seed=self.seed,
                             device=twin, scheme=SCHEME_CHAIN)
            stats = run.result.stats
            self._chained = (run.result.poa, stats.start_time,
                             stats.end_time)
        return self._chained

    def merkle_violation(self) -> "tuple[ProofOfAlibi, float, float]":
        """The violation flight committed under the Merkle scheme.

        Disclosure-structural attacks need a Merkle-committed trace
        regardless of the matrix's scheme; mirrors
        :meth:`chained_violation` (twin device, same registered ``T+``).
        """
        if self.scheme == SCHEME_MERKLE:
            return (self.violation_poa, self.violation_start,
                    self.violation_end)
        if self._merkle is None:
            twin = provision_device(
                f"adv-dev-{self.key_bits}-{self.seed}",
                key_bits=self.key_bits,
                rng=random.Random(self.seed ^ 0x5EED))
            run = run_policy(self.scenario, "adaptive",
                             key_bits=self.key_bits, seed=self.seed,
                             device=twin, scheme=SCHEME_MERKLE)
            stats = run.result.stats
            self._merkle = (run.result.poa, stats.start_time,
                            stats.end_time)
        return self._merkle


def _incursion_interval(scenario: Scenario) -> tuple[float, float]:
    """When the true flight path is inside the zone, by direct scan."""
    frame = scenario.frame
    zone = scenario.zones[0]
    cx, cy = frame.to_local(zone.center)
    inside: list[float] = []
    t = scenario.t_start
    while t <= scenario.t_end:
        x, y = scenario.source.position_at(t)
        if (x - cx) ** 2 + (y - cy) ** 2 <= zone.radius_m ** 2:
            inside.append(t)
        t += 0.5
    if not inside:
        raise ConfigurationError(
            f"scenario {scenario.name!r} never enters its zone")
    return inside[0], inside[-1]


def _compliant_scenario(area_m: float, zone, frame) -> Scenario:
    """Yesterday's honest flight: skirts the zone with wide clearance."""
    safe_y = area_m / 2.0 + zone.radius_m + 250.0
    source = simulate_waypoint_flight(
        [(0.0, safe_y), (area_m, safe_y)], DEFAULT_EPOCH,
        kinematics=DroneKinematics())
    return Scenario(
        name="compliant-detour",
        description="compliant flight past the zone, one day earlier",
        frame=frame, zones=[zone], source=source,
        t_start=DEFAULT_EPOCH, t_end=DEFAULT_EPOCH + source.duration,
        gps_noise_std_m=1.0)


def build_world(scenario: Scenario, old_run, seed: int = 0,
                key_bits: int = 512,
                scheme: str = SCHEME_RSA) -> AttackWorld:
    """A full deployment with the violation flown and evidence in hand."""
    rng = random.Random(seed)
    run = run_policy(scenario, "adaptive", key_bits=key_bits, seed=seed,
                     device=provision_device(
                         f"adv-dev-{key_bits}-{seed}", key_bits=key_bits,
                         rng=random.Random(seed ^ 0x5EED)),
                     scheme=scheme)
    incursion = _incursion_interval(scenario)
    stats = run.result.stats
    old_stats = old_run.result.stats
    return AttackWorld(
        scenario=scenario,
        seed=seed,
        key_bits=key_bits,
        device=run.device,
        operator_key=generate_rsa_keypair(key_bits, rng=rng),
        accomplice_key=generate_rsa_keypair(key_bits, rng=rng),
        violation_poa=run.result.poa,
        violation_start=stats.start_time,
        violation_end=stats.end_time,
        incursion_start=incursion[0],
        incursion_end=incursion[1],
        old_poa=old_run.result.poa,
        old_start=old_stats.start_time,
        old_end=old_stats.end_time,
        area_m=2_000.0,
        safe_y=2_000.0 / 2.0 + scenario.zones[0].radius_m + 250.0,
        scheme=scheme)


@dataclass
class AttackCell:
    """One (attack, scenario) execution."""

    attack: str
    scenario: str
    expected: tuple[str, ...]
    result: AttackResult

    @property
    def expected_ok(self) -> bool:
        return self.result.outcome in self.expected

    def to_dict(self) -> dict:
        return {
            "attack": self.attack,
            "scenario": self.scenario,
            "outcome": self.result.outcome,
            "expected": sorted(self.expected),
            "expected_ok": self.expected_ok,
            "accepted": self.result.accepted,
            "cleared": self.result.cleared,
            "false_accept": self.result.false_accept,
            "detail": self.result.detail,
        }


@dataclass
class AttackReport:
    """The matrix verdict, shaped like the chaos harness report."""

    config: dict
    cells: list[AttackCell]
    controls: list[dict]
    stats: AttackStats

    @property
    def invariants(self) -> dict:
        return {
            "false_accepts": [
                f"{c.attack}/{c.scenario}" for c in self.cells
                if c.result.false_accept],
            "unexpected_outcomes": [
                {"cell": f"{c.attack}/{c.scenario}",
                 "outcome": c.result.outcome,
                 "expected": sorted(c.expected)}
                for c in self.cells if not c.expected_ok],
            "control_failures": [
                c["name"] for c in self.controls if not c["ok"]],
        }

    @property
    def ok(self) -> bool:
        inv = self.invariants
        return not (inv["false_accepts"] or inv["unexpected_outcomes"]
                    or inv["control_failures"])

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "cells": [c.to_dict() for c in self.cells],
            "controls": self.controls,
            "stats": self.stats.to_dict(),
            "invariants": self.invariants,
            "ok": self.ok,
        }


def _controls(world: AttackWorld) -> list[dict]:
    """Honest submissions proving the matrix is not vacuously rejecting.

    The genuine compliant PoA must be ACCEPTED outright, and the genuine
    violation PoA must be flagged at adjudication — if either fails, every
    cell verdict in this world is suspect.
    """
    compliant_id = world.fresh_identity()
    compliant = world.submit(compliant_id, world.old_poa, world.old_start,
                             world.old_end, flight_id="control-compliant")
    violating_id = world.fresh_identity()
    violating = world.submit(violating_id, world.violation_poa,
                             world.violation_start, world.violation_end,
                             flight_id="control-violation")
    finding = world.adjudicate(violating_id)
    return [
        {"name": f"compliant-accepted/{world.scenario.name}",
         "ok": compliant.status is VerificationStatus.ACCEPTED,
         "status": compliant.status.value},
        {"name": f"violation-flagged/{world.scenario.name}",
         "ok": bool(finding.violation),
         "status": violating.status.value,
         "kind": finding.kind.value if finding.kind else None},
    ]


def record_cell_telemetry(hub, cell: AttackCell, *, now: float) -> None:
    """Feed one finished attack cell into a streaming telemetry hub.

    Each attack execution counts as one ``audit.attacks`` event with
    per-outcome (``audit.attacks.<outcome>``) breakdown; an unexpected
    outcome marks ``audit.attacks.unexpected``, and a false accept —
    the harness knows ground truth — marks ``audit.false_accepts``,
    which the built-in page rule latches on.
    """
    hub.mark("audit.attacks", now=now)
    hub.mark(f"audit.attacks.{cell.result.outcome}", now=now)
    if not cell.expected_ok:
        hub.mark("audit.attacks.unexpected", now=now)
    if cell.result.false_accept:
        hub.mark("audit.false_accepts", now=now)


def run_matrix(scenarios: Sequence[Scenario] | None = None,
               attacks: Sequence[Attack] | None = None,
               seed: int = 0, key_bits: int = 512,
               stats: AttackStats | None = None,
               scheme: str = SCHEME_RSA,
               on_cell=None) -> AttackReport:
    """Execute every attack against every scenario world.

    ``on_cell`` is an optional callback invoked with each finished
    :class:`AttackCell` — the hook the live telemetry session uses to
    tick per completed cell.
    """
    attacks = list(attacks) if attacks is not None else builtin_attacks()
    scenarios = list(scenarios) if scenarios is not None \
        else build_violation_variants(seed)
    stats = stats if stats is not None else AttackStats()

    first = scenarios[0]
    old_scenario = _compliant_scenario(2_000.0, first.zones[0], first.frame)
    old_run = run_policy(old_scenario, "adaptive", key_bits=key_bits,
                         seed=seed,
                         device=provision_device(
                             f"adv-dev-{key_bits}-{seed}",
                             key_bits=key_bits,
                             rng=random.Random(seed ^ 0x5EED)),
                         scheme=scheme)

    cells: list[AttackCell] = []
    controls: list[dict] = []
    for scenario in scenarios:
        world = build_world(scenario, old_run, seed=seed,
                            key_bits=key_bits, scheme=scheme)
        controls.extend(_controls(world))
        for attack in attacks:
            rng = random.Random(f"{seed}/{attack.name}/{scenario.name}")
            cell = AttackCell(attack=attack.name, scenario=scenario.name,
                              expected=tuple(attack.expected_for(scheme)),
                              result=attack.execute(world, rng))
            stats.record(cell.result, cell.expected_ok)
            cells.append(cell)
            if on_cell is not None:
                on_cell(cell)

    return AttackReport(
        config={
            "seed": seed,
            "key_bits": key_bits,
            "scheme": scheme,
            "attacks": [a.name for a in attacks],
            "scenarios": [s.name for s in scenarios],
        },
        cells=cells,
        controls=controls,
        stats=stats)
