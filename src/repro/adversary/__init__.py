"""Attack simulation against the full AliDrone deployment.

Models the paper's dishonest Drone Operator (§III threat model): every
attack starts from a *real* simulated NFZ-violating flight — signed sample
by sample inside the software TEE — and mutates it into a forged PoA
submission, which is then pushed through the genuine server stack
(decrypt, staged verification, evidence retention, incident adjudication).
An attack "wins" only if the forged submission is verified ACCEPTED *and*
the subsequent incident adjudication clears the drone; everything short of
that is a rejection, labelled with the stable
:class:`~repro.core.verification.RejectionReason` /
:class:`~repro.server.violations.ViolationKind` taxonomy so the matrix can
assert not just *that* an attack failed but *why*.
"""

from repro.adversary.attacks import (
    Attack,
    AttackResult,
    SubmissionAttack,
    builtin_attacks,
)
from repro.adversary.matrix import (
    AttackCell,
    AttackReport,
    AttackStats,
    AttackWorld,
    build_world,
    run_matrix,
)

__all__ = [
    "Attack",
    "AttackCell",
    "AttackReport",
    "AttackResult",
    "AttackStats",
    "AttackWorld",
    "SubmissionAttack",
    "build_world",
    "builtin_attacks",
    "run_matrix",
]
