"""Real-time PoA streaming (the §IV-B alternative the paper declined).

The drone pushes each encrypted signed sample to the Auditor as soon as it
is taken; the Auditor acknowledges cumulatively and the drone retransmits
unacknowledged entries after a timeout.  Reliability is
cumulative-ACK/go-back-style: simple, and adequate for the low rates
involved.

The point of building this is the energy ablation: every transmitted byte
costs radio air time, which :mod:`repro.net.energy` converts to joules and
compares against the store-and-upload-later baseline.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.poa import EncryptedPoaRecord
from repro.errors import EncodingError, ProtocolError
from repro.net.framing import FrameType, decode_frame, encode_frame
from repro.net.link import SimulatedLink
from repro.obs.trace import get_tracer

_RECORD_HEADER = struct.Struct(">HH")


def _encode_record(record: EncryptedPoaRecord) -> bytes:
    return (_RECORD_HEADER.pack(len(record.ciphertext), len(record.signature))
            + record.ciphertext + record.signature)


def _decode_record(payload: bytes) -> EncryptedPoaRecord:
    if len(payload) < _RECORD_HEADER.size:
        raise EncodingError("truncated streamed record")
    ct_len, sig_len = _RECORD_HEADER.unpack_from(payload)
    body = payload[_RECORD_HEADER.size:]
    if len(body) != ct_len + sig_len:
        raise EncodingError("streamed record length mismatch")
    return EncryptedPoaRecord(ciphertext=body[:ct_len], signature=body[ct_len:])


@dataclass
class StreamingStats:
    """Uploader-side counters for the energy model."""

    entries_pushed: int = 0
    frames_sent: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    air_time_s: float = 0.0
    acked_through: int = -1


class StreamingUploader:
    """Drone-side streaming endpoint."""

    def __init__(self, uplink: SimulatedLink, downlink: SimulatedLink,
                 flight_id: str, retransmit_timeout_s: float = 0.5):
        if retransmit_timeout_s <= 0:
            raise ProtocolError("retransmit timeout must be positive")
        self.uplink = uplink
        self.downlink = downlink
        self.flight_id = flight_id
        self.rto = float(retransmit_timeout_s)
        self.stats = StreamingStats()
        self._entries: list[bytes] = []       # payloads by sequence
        self._last_sent_at: dict[int, float] = {}
        self._begun = False
        self._ended = False

    def _send(self, frame_type: FrameType, sequence: int, payload: bytes,
              now: float) -> None:
        frame = encode_frame(frame_type, sequence, payload)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)
        self.stats.air_time_s += self.uplink.send(frame, now)

    def begin_flight(self, now: float) -> None:
        """Open the stream (retransmitted implicitly by entry frames)."""
        self._begun = True
        self._send(FrameType.FLIGHT_BEGIN, 0, self.flight_id.encode(), now)

    def push(self, record: EncryptedPoaRecord, now: float) -> None:
        """Stream one PoA entry; assigns the next sequence number."""
        if not self._begun or self._ended:
            raise ProtocolError("stream is not open")
        sequence = len(self._entries)
        payload = _encode_record(record)
        self._entries.append(payload)
        self.stats.entries_pushed += 1
        self._last_sent_at[sequence] = now
        with get_tracer().span("net.stream.push", sequence=sequence,
                               bytes=len(payload), virtual_t=now):
            self._send(FrameType.POA_ENTRY, sequence, payload, now)

    def poll(self, now: float) -> None:
        """Process ACKs and retransmit anything stale."""
        for message in self.downlink.receive(now):
            try:
                frame = decode_frame(message)
            except EncodingError:
                continue
            if frame.frame_type is FrameType.ACK:
                (acked,) = struct.unpack(">q", frame.payload)
                self.stats.acked_through = max(self.stats.acked_through,
                                               acked)
        for sequence in range(self.stats.acked_through + 1,
                              len(self._entries)):
            if now - self._last_sent_at[sequence] >= self.rto:
                self.stats.retransmissions += 1
                self._last_sent_at[sequence] = now
                self._send(FrameType.POA_ENTRY, sequence,
                           self._entries[sequence], now)

    def end_flight(self, now: float) -> None:
        """Close the stream (entries may still need :meth:`poll` retries)."""
        self._ended = True
        self._send(FrameType.FLIGHT_END, len(self._entries), b"", now)

    @property
    def fully_acked(self) -> bool:
        """Whether every pushed entry has been acknowledged."""
        return self.stats.acked_through >= len(self._entries) - 1


class StreamingAuditorEndpoint:
    """Auditor-side streaming endpoint: collects entries, sends ACKs."""

    def __init__(self, uplink: SimulatedLink, downlink: SimulatedLink):
        self.uplink = uplink
        self.downlink = downlink
        self.flight_id: str | None = None
        self.ended = False
        self.expected_entries: int | None = None
        self._received: dict[int, EncryptedPoaRecord] = {}
        self.corrupt_frames = 0

    def poll(self, now: float) -> None:
        """Drain the uplink, record entries, emit a cumulative ACK."""
        progressed = False
        for message in self.uplink.receive(now):
            try:
                frame = decode_frame(message)
            except EncodingError:
                self.corrupt_frames += 1
                continue
            progressed = True
            if frame.frame_type is FrameType.FLIGHT_BEGIN:
                self.flight_id = frame.payload.decode()
            elif frame.frame_type is FrameType.POA_ENTRY:
                try:
                    self._received[frame.sequence] = _decode_record(
                        frame.payload)
                except EncodingError:
                    self.corrupt_frames += 1
            elif frame.frame_type is FrameType.FLIGHT_END:
                self.ended = True
                self.expected_entries = frame.sequence
        if progressed:
            ack = encode_frame(FrameType.ACK, 0,
                               struct.pack(">q", self._contiguous_through()))
            self.downlink.send(ack, now)

    def _contiguous_through(self) -> int:
        acked = -1
        while acked + 1 in self._received:
            acked += 1
        return acked

    @property
    def complete(self) -> bool:
        """Whether the whole flight has arrived gap-free."""
        return (self.ended and self.expected_entries is not None
                and self._contiguous_through() == self.expected_entries - 1)

    def records(self) -> list[EncryptedPoaRecord]:
        """The in-order entries received so far (gap-free prefix)."""
        return [self._received[i]
                for i in range(self._contiguous_through() + 1)]

    def to_submission(self, drone_id: str, claimed_start: float,
                      claimed_end: float):
        """Wrap the completed stream as a standard PoA submission.

        This closes the real-time-auditing loop: the Auditor can feed the
        result straight into ``AliDroneServer.receive_poa`` and verify the
        flight the moment it ends.

        Raises:
            ProtocolError: the stream is not yet complete.
        """
        from repro.core.protocol import PoaSubmission

        if not self.complete:
            raise ProtocolError("stream incomplete: cannot build submission")
        return PoaSubmission(drone_id=drone_id,
                             flight_id=self.flight_id or "streamed-flight",
                             records=self.records(),
                             claimed_start=claimed_start,
                             claimed_end=claimed_end)
