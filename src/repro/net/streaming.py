"""Real-time PoA streaming (the §IV-B alternative the paper declined).

The drone pushes each encrypted signed sample to the Auditor as soon as it
is taken; the Auditor acknowledges cumulatively and the drone retransmits
unacknowledged entries after a timeout.  Reliability is
cumulative-ACK/go-back-style: simple, and adequate for the low rates
involved.

The point of building this is the energy ablation: every transmitted byte
costs radio air time, which :mod:`repro.net.energy` converts to joules and
compares against the store-and-upload-later baseline.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.poa import EncryptedPoaRecord
from repro.errors import EncodingError, ProtocolError
from repro.net.framing import FrameType, decode_frame, encode_frame
from repro.net.link import SimulatedLink
from repro.obs.trace import get_tracer

_RECORD_HEADER = struct.Struct(">HH")


def _encode_record(record: EncryptedPoaRecord) -> bytes:
    return (_RECORD_HEADER.pack(len(record.ciphertext), len(record.signature))
            + record.ciphertext + record.signature)


def _decode_record(payload: bytes) -> EncryptedPoaRecord:
    if len(payload) < _RECORD_HEADER.size:
        raise EncodingError("truncated streamed record")
    ct_len, sig_len = _RECORD_HEADER.unpack_from(payload)
    body = payload[_RECORD_HEADER.size:]
    if len(body) != ct_len + sig_len:
        raise EncodingError("streamed record length mismatch")
    return EncryptedPoaRecord(ciphertext=body[:ct_len], signature=body[ct_len:])


@dataclass
class StreamingStats:
    """Uploader-side counters for the energy model."""

    entries_pushed: int = 0
    frames_sent: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    air_time_s: float = 0.0
    acked_through: int = -1


class Outbox:
    """The uploader's bounded, duplicate-safe send buffer.

    Entries live in the outbox from push until cumulative acknowledgement;
    acknowledged payloads are freed immediately, so memory is bounded by
    the in-flight window rather than the flight length.  An optional
    ``limit`` caps the unacknowledged window — with a lossy link and no
    bound, a long flight would buffer its entire PoA.
    """

    def __init__(self, limit: int | None = None):
        if limit is not None and limit < 1:
            raise ProtocolError("outbox limit must be >= 1 (or None)")
        self.limit = limit
        self._pending: dict[int, bytes] = {}  # sequence -> payload
        self.total = 0                        # sequences ever assigned
        self.acked_through = -1

    @property
    def pending(self) -> int:
        """Unacknowledged entries currently buffered."""
        return len(self._pending)

    @property
    def full(self) -> bool:
        """Whether a push would exceed the bound."""
        return self.limit is not None and len(self._pending) >= self.limit

    def add(self, payload: bytes) -> int:
        """Buffer one payload; returns its sequence number.

        Raises:
            ProtocolError: the unacked window is at its bound — the caller
                must poll for ACKs (draining the window) before pushing.
        """
        if self.full:
            raise ProtocolError(
                f"outbox full ({self.limit} unacked entries); "
                "poll for ACKs before pushing more")
        sequence = self.total
        self.total += 1
        self._pending[sequence] = payload
        return sequence

    def ack_through(self, sequence: int) -> list[int]:
        """Apply a cumulative ACK; returns the sequences freed."""
        if sequence <= self.acked_through:
            return []
        freed = [s for s in self._pending if s <= sequence]
        for s in freed:
            del self._pending[s]
        self.acked_through = max(self.acked_through, sequence)
        return freed

    def unacked(self) -> list[tuple[int, bytes]]:
        """Unacknowledged ``(sequence, payload)`` pairs, ascending."""
        return sorted(self._pending.items())


class StreamingUploader:
    """Drone-side streaming endpoint.

    Args:
        uplink, downlink: the two link directions.
        flight_id: stream identifier.
        retransmit_timeout_s: per-entry retransmission timeout.
        outbox_limit: bound on unacknowledged buffered entries (None =
            unbounded, the historical behaviour).
    """

    def __init__(self, uplink: SimulatedLink, downlink: SimulatedLink,
                 flight_id: str, retransmit_timeout_s: float = 0.5,
                 outbox_limit: int | None = None):
        if retransmit_timeout_s <= 0:
            raise ProtocolError("retransmit timeout must be positive")
        self.uplink = uplink
        self.downlink = downlink
        self.flight_id = flight_id
        self.rto = float(retransmit_timeout_s)
        self.stats = StreamingStats()
        self.outbox = Outbox(outbox_limit)
        self._last_sent_at: dict[int, float] = {}
        self._begun = False
        self._ended = False

    def _send(self, frame_type: FrameType, sequence: int, payload: bytes,
              now: float) -> None:
        frame = encode_frame(frame_type, sequence, payload)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(frame)
        self.stats.air_time_s += self.uplink.send(frame, now)

    def begin_flight(self, now: float) -> None:
        """Open the stream (retransmitted implicitly by entry frames)."""
        self._begun = True
        self._send(FrameType.FLIGHT_BEGIN, 0, self.flight_id.encode(), now)

    @property
    def can_push(self) -> bool:
        """Whether the outbox has room for another entry."""
        return not self.outbox.full

    def push(self, record: EncryptedPoaRecord, now: float) -> None:
        """Stream one PoA entry; assigns the next sequence number.

        Raises:
            ProtocolError: the stream is closed, or the bounded outbox is
                full (poll for ACKs first; re-pushing after a drain is
                duplicate-safe because sequences never change).
        """
        if not self._begun or self._ended:
            raise ProtocolError("stream is not open")
        payload = _encode_record(record)
        sequence = self.outbox.add(payload)
        self.stats.entries_pushed += 1
        self._last_sent_at[sequence] = now
        with get_tracer().span("net.stream.push", sequence=sequence,
                               bytes=len(payload), virtual_t=now):
            self._send(FrameType.POA_ENTRY, sequence, payload, now)

    def poll(self, now: float) -> None:
        """Process ACKs and retransmit anything stale.

        Retransmission walks only the unacknowledged outbox window, and a
        re-send reuses the original sequence number, so the receiver can
        deduplicate arbitrarily many copies of the same entry.
        """
        for message in self.downlink.receive(now):
            try:
                frame = decode_frame(message)
            except EncodingError:
                continue
            if frame.frame_type is FrameType.ACK:
                (acked,) = struct.unpack(">q", frame.payload)
                for freed in self.outbox.ack_through(acked):
                    self._last_sent_at.pop(freed, None)
                self.stats.acked_through = self.outbox.acked_through
        for sequence, payload in self.outbox.unacked():
            if now - self._last_sent_at[sequence] >= self.rto:
                self.stats.retransmissions += 1
                self._last_sent_at[sequence] = now
                self._send(FrameType.POA_ENTRY, sequence, payload, now)

    def end_flight(self, now: float) -> None:
        """Close the stream (entries may still need :meth:`poll` retries)."""
        self._ended = True
        self._send(FrameType.FLIGHT_END, self.outbox.total, b"", now)

    @property
    def fully_acked(self) -> bool:
        """Whether every pushed entry has been acknowledged."""
        return self.outbox.acked_through >= self.outbox.total - 1


class StreamingAuditorEndpoint:
    """Auditor-side streaming endpoint: collects entries, sends ACKs."""

    def __init__(self, uplink: SimulatedLink, downlink: SimulatedLink):
        self.uplink = uplink
        self.downlink = downlink
        self.flight_id: str | None = None
        self.ended = False
        self.expected_entries: int | None = None
        self._received: dict[int, EncryptedPoaRecord] = {}
        self.corrupt_frames = 0
        #: Entry frames whose sequence had already been received — the
        #: duplicate-safety counter (retransmissions and duplicate faults
        #: both land here; the dict keyed by sequence absorbs them).
        self.duplicate_frames = 0

    def poll(self, now: float) -> None:
        """Drain the uplink, record entries, emit a cumulative ACK."""
        progressed = False
        for message in self.uplink.receive(now):
            try:
                frame = decode_frame(message)
            except EncodingError:
                self.corrupt_frames += 1
                continue
            progressed = True
            if frame.frame_type is FrameType.FLIGHT_BEGIN:
                self.flight_id = frame.payload.decode()
            elif frame.frame_type is FrameType.POA_ENTRY:
                try:
                    record = _decode_record(frame.payload)
                except EncodingError:
                    self.corrupt_frames += 1
                    continue
                if frame.sequence in self._received:
                    self.duplicate_frames += 1
                self._received[frame.sequence] = record
            elif frame.frame_type is FrameType.FLIGHT_END:
                self.ended = True
                self.expected_entries = frame.sequence
        if progressed:
            ack = encode_frame(FrameType.ACK, 0,
                               struct.pack(">q", self._contiguous_through()))
            self.downlink.send(ack, now)

    def _contiguous_through(self) -> int:
        acked = -1
        while acked + 1 in self._received:
            acked += 1
        return acked

    @property
    def complete(self) -> bool:
        """Whether the whole flight has arrived gap-free."""
        return (self.ended and self.expected_entries is not None
                and self._contiguous_through() == self.expected_entries - 1)

    def records(self) -> list[EncryptedPoaRecord]:
        """The in-order entries received so far (gap-free prefix)."""
        return [self._received[i]
                for i in range(self._contiguous_through() + 1)]

    def to_submission(self, drone_id: str, claimed_start: float,
                      claimed_end: float):
        """Wrap the completed stream as a standard PoA submission.

        This closes the real-time-auditing loop: the Auditor can feed the
        result straight into ``AliDroneServer.receive_poa`` and verify the
        flight the moment it ends.

        Raises:
            ProtocolError: the stream is not yet complete.
        """
        from repro.core.protocol import PoaSubmission

        if not self.complete:
            raise ProtocolError("stream incomplete: cannot build submission")
        return PoaSubmission(drone_id=drone_id,
                             flight_id=self.flight_id or "streamed-flight",
                             records=self.records(),
                             claimed_start=claimed_start,
                             claimed_end=claimed_end)
