"""A simulated half-duplex radio link with loss and latency.

Models the drone-to-ground control channel (paper §II-A: 200-3000 m
range).  Deterministic given a seed; delivery happens when the receiving
side polls at a virtual time past the scheduled arrival.

The link is also a named fault-injection point: attach a
:class:`~repro.faults.injector.FaultInjector` and rules targeting
``"<fault_point>.send"`` can drop, duplicate, corrupt, delay, or reorder
messages on top of the link's native loss/jitter.  With no injector
attached (the default) the code path is unchanged.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class LinkStats:
    """Counters for one direction of the link."""

    sent: int = 0
    dropped: int = 0
    delivered: int = 0
    bytes_sent: int = 0
    #: Drops caused by an attached fault injector (subset of ``dropped``).
    fault_dropped: int = 0
    #: Extra copies scheduled by a duplicate fault rule.
    fault_duplicated: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of sent messages that were dropped."""
        return self.dropped / self.sent if self.sent else 0.0


class SimulatedLink:
    """A lossy, delayed, in-order-per-arrival message channel.

    Args:
        latency_s: mean one-way latency.
        jitter_s: uniform +-jitter applied per message.
        loss_probability: independent drop probability per message.
        bandwidth_bps: serialization rate; transmission time is
            ``len(message) * 8 / bandwidth_bps`` and is added to latency.
        seed: RNG seed for loss/jitter.
        rng: explicit randomness source; overrides ``seed`` so chaos runs
            can thread one seeded ``random.Random`` end to end.
        injector: optional fault injector consulted on every send.
        fault_point: injection-point prefix this link reports as
            (rules target ``"<fault_point>.send"``).
    """

    def __init__(self, latency_s: float = 0.02, jitter_s: float = 0.005,
                 loss_probability: float = 0.0,
                 bandwidth_bps: float = 1_000_000.0, seed: int = 0,
                 rng: random.Random | None = None,
                 injector=None, fault_point: str = "link"):
        if latency_s < 0 or jitter_s < 0:
            raise ConfigurationError("latency/jitter must be non-negative")
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError("loss_probability must be in [0, 1)")
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.latency_s = float(latency_s)
        self.jitter_s = float(jitter_s)
        self.loss_probability = float(loss_probability)
        self.bandwidth_bps = float(bandwidth_bps)
        self._rng = rng if rng is not None else random.Random(seed)
        self._injector = injector
        self._send_point = f"{fault_point}.send"
        self._in_flight: list[tuple[float, int, bytes]] = []
        self._sequence = itertools.count()
        self.stats = LinkStats()

    def transmission_time(self, message: bytes) -> float:
        """Air time for one message at the configured bandwidth."""
        return len(message) * 8.0 / self.bandwidth_bps

    def send(self, message: bytes, now: float) -> float:
        """Enqueue a message at virtual time ``now``.

        Returns the air time spent transmitting (consumed regardless of
        whether the message is subsequently lost — the radio still burned
        the energy).
        """
        air_time = self.transmission_time(message)
        self.stats.sent += 1
        self.stats.bytes_sent += len(message)
        if (self.loss_probability > 0
                and self._rng.random() < self.loss_probability):
            self.stats.dropped += 1
            return air_time
        # A message cannot arrive before its own transmission finishes:
        # clamp the jittered arrival to now + air_time.
        arrival = max(
            now + air_time,
            now + air_time + self.latency_s
            + self._rng.uniform(-self.jitter_s, self.jitter_s))
        if self._injector is not None and self._injector.active(self._send_point):
            deliveries = self._injector.link_deliveries(
                self._send_point, message, now)
            if not deliveries:
                self.stats.dropped += 1
                self.stats.fault_dropped += 1
                return air_time
            self.stats.fault_duplicated += len(deliveries) - 1
            for delivery in deliveries:
                heapq.heappush(
                    self._in_flight,
                    (arrival + delivery.extra_delay_s,
                     next(self._sequence), bytes(delivery.payload)))
            return air_time
        heapq.heappush(self._in_flight,
                       (arrival, next(self._sequence), bytes(message)))
        return air_time

    def receive(self, now: float) -> list[bytes]:
        """All messages whose arrival time is at or before ``now``."""
        delivered = []
        while self._in_flight and self._in_flight[0][0] <= now:
            _, _, message = heapq.heappop(self._in_flight)
            delivered.append(message)
            self.stats.delivered += 1
        return delivered

    @property
    def pending(self) -> int:
        """Messages still in flight."""
        return len(self._in_flight)
