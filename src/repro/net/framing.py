"""Wire framing for the streaming protocol.

Minimal length-checked binary frames with a CRC-32 integrity field (radio
links corrupt; corrupted frames must be droppable, not crash the parser).
The cryptographic protection of the *content* is the TEE signature inside
the payload — the CRC is purely a transport-level check.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

from repro.errors import EncodingError

_MAGIC = b"ADNF"
_HEADER = struct.Struct(">4sBQI")  # magic, type, sequence, payload length


class FrameType(enum.IntEnum):
    """Streaming protocol frame types."""

    POA_ENTRY = 1       # drone -> auditor: one encrypted signed sample
    ACK = 2             # auditor -> drone: cumulative acknowledgement
    FLIGHT_BEGIN = 3    # drone -> auditor: opens a streaming flight
    FLIGHT_END = 4      # drone -> auditor: closes it


@dataclass(frozen=True, slots=True)
class Frame:
    """One parsed frame."""

    frame_type: FrameType
    sequence: int
    payload: bytes


def encode_frame(frame_type: FrameType, sequence: int, payload: bytes) -> bytes:
    """Serialize a frame with header and trailing CRC-32."""
    if sequence < 0:
        raise EncodingError("frame sequence must be non-negative")
    header = _HEADER.pack(_MAGIC, int(frame_type), sequence, len(payload))
    body = header + payload
    return body + struct.pack(">I", zlib.crc32(body))


def decode_frame(data: bytes) -> Frame:
    """Parse a frame; raises :class:`EncodingError` on any corruption."""
    if len(data) < _HEADER.size + 4:
        raise EncodingError("frame too short")
    body, (crc,) = data[:-4], struct.unpack(">I", data[-4:])
    if zlib.crc32(body) != crc:
        raise EncodingError("frame CRC mismatch")
    magic, raw_type, sequence, length = _HEADER.unpack_from(body)
    if magic != _MAGIC:
        raise EncodingError("bad frame magic")
    payload = body[_HEADER.size:]
    if len(payload) != length:
        raise EncodingError("frame length field mismatch")
    try:
        frame_type = FrameType(raw_type)
    except ValueError:
        raise EncodingError(f"unknown frame type {raw_type}") from None
    return Frame(frame_type=frame_type, sequence=sequence, payload=payload)
