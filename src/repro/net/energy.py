"""Radio energy model: the battery cost of real-time streaming.

The paper rejects real-time PoA upload because "it would increase battery
drain" (§IV-B).  This model makes that claim quantitative: a radio draws
``tx_power_w`` while transmitting and ``idle_power_w`` while powered, so a
streaming flight pays idle draw for the whole flight plus TX draw per
byte, while the store-and-upload baseline keeps the radio off in flight
and pays a single bulk transfer on the ground (where battery no longer
constrains flight time).

Defaults approximate a 802.11n client radio (~1.3 W TX, ~0.25 W idle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class RadioEnergyModel:
    """Affine radio energy model."""

    tx_power_w: float
    idle_power_w: float

    def __post_init__(self) -> None:
        if self.tx_power_w < 0 or self.idle_power_w < 0:
            raise ConfigurationError("radio powers must be non-negative")

    def streaming_energy_j(self, flight_duration_s: float,
                           air_time_s: float) -> float:
        """In-flight energy for streaming: idle all flight + TX air time."""
        if flight_duration_s < 0 or air_time_s < 0:
            raise ConfigurationError("durations must be non-negative")
        return (self.idle_power_w * flight_duration_s
                + (self.tx_power_w - self.idle_power_w) * air_time_s)

    def deferred_energy_j(self) -> float:
        """In-flight energy for store-and-upload-later: radio stays off."""
        return 0.0

    def battery_fraction(self, energy_j: float,
                         battery_wh: float = 60.0) -> float:
        """Energy as a fraction of a typical drone battery (~60 Wh)."""
        if battery_wh <= 0:
            raise ConfigurationError("battery capacity must be positive")
        return energy_j / (battery_wh * 3600.0)


#: A typical small-UAV Wi-Fi radio.
WIFI_RADIO = RadioEnergyModel(tx_power_w=1.3, idle_power_w=0.25)
