"""Network substrate: a simulated radio link and real-time PoA streaming.

Paper §IV-B: "To enable real-time auditing, the drone could alternately
transmit its PoAs in real-time to the Auditor; however, we do not pursue
this solution in our work as it would increase battery drain, violating
Goal G2."  This package builds that rejected alternative so the trade-off
can be measured: a lossy, latency-bearing radio link, a framing layer, a
streaming uploader with acknowledgements and retransmission, and a radio
energy model to quantify the battery cost the paper alludes to.
"""

from repro.net.link import SimulatedLink, LinkStats
from repro.net.framing import encode_frame, decode_frame, FrameType, Frame
from repro.net.streaming import StreamingUploader, StreamingAuditorEndpoint
from repro.net.energy import RadioEnergyModel, WIFI_RADIO

__all__ = [
    "SimulatedLink",
    "LinkStats",
    "encode_frame",
    "decode_frame",
    "FrameType",
    "Frame",
    "StreamingUploader",
    "StreamingAuditorEndpoint",
    "RadioEnergyModel",
    "WIFI_RADIO",
]
