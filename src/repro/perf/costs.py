"""Per-operation costs on the benchmark platform.

The paper's platform is a Raspberry Pi 3 Model B (1.2 GHz 4-core ARMv8,
1 GB LPDDR2).  We cannot run on that hardware, so the cost model is
**calibrated from Table II itself**: with a single-threaded sampler on a
4-core machine, CPU% (of all cores) = rate * t_sign / 4, hence

    t_sign(1024) = mean((2.17*4/100)/2, (3.17*4/100)/3, (5.59*4/100)/5)
                 = mean(43.4 ms, 42.3 ms, 44.7 ms)  ~= 43.4 ms
    t_sign(2048) = mean((10.94*4/100)/2, (16.81*4/100)/3)
                 = mean(218.8 ms, 224.1 ms)          ~= 221.5 ms

The 2048/1024 ratio (5.1x) matches what our own pure-Python RSA measures
on this machine (~5.0x), which is the expected cubic-ish scaling of the
CRT private operation.  World-switch and read costs are taken from the
OP-TEE literature; they are three orders of magnitude below the signature
and only matter for the margin ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Seconds of single-core busy time per operation.

    Attributes:
        sign_seconds: RSA private-key signature cost by modulus bits.
        encrypt_seconds: RSA public-key encryption cost by modulus bits
            (public ops with e = 65537 are ~100x cheaper than private).
        smc_round_trip_seconds: one normal->secure->normal world switch.
        gps_read_seconds: one normal-world ``ReadGPS`` (register read +
            NMEA parse).
        num_cores: cores on the platform; CPU%% is reported relative to
            all of them (so a single busy core saturates at 25%% on 4).
    """

    sign_seconds: dict[int, float]
    encrypt_seconds: dict[int, float]
    smc_round_trip_seconds: float = 20e-6
    gps_read_seconds: float = 60e-6
    num_cores: int = 4

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("num_cores must be at least 1")

    def sign_cost(self, key_bits: int) -> float:
        """Signature cost for a key size, interpolating unknown sizes.

        Unknown sizes scale from the nearest calibrated size by the cube
        of the modulus ratio (schoolbook modmul in the CRT exponentiation).
        """
        if key_bits in self.sign_seconds:
            return self.sign_seconds[key_bits]
        nearest = min(self.sign_seconds, key=lambda b: abs(b - key_bits))
        return self.sign_seconds[nearest] * (key_bits / nearest) ** 3

    def encrypt_cost(self, key_bits: int) -> float:
        """Public-key encryption cost for a key size (same interpolation,
        quadratic in the modulus because the exponent is fixed)."""
        if key_bits in self.encrypt_seconds:
            return self.encrypt_seconds[key_bits]
        nearest = min(self.encrypt_seconds, key=lambda b: abs(b - key_bits))
        return self.encrypt_seconds[nearest] * (key_bits / nearest) ** 2

    def auth_sample_cost(self, key_bits: int) -> float:
        """Busy time for one ``GetGPSAuth``: SMC + driver read + sign."""
        return (self.smc_round_trip_seconds + self.gps_read_seconds
                + self.sign_cost(key_bits))

    def sustainable_rate_hz(self, key_bits: int) -> float:
        """The highest sampling rate one core can keep up with.

        Table II's "-" rows are exactly the configurations whose requested
        rate exceeds this bound.
        """
        return 1.0 / self.auth_sample_cost(key_bits)

    def can_sustain(self, rate_hz: float, key_bits: int) -> bool:
        """Whether a fixed rate is sustainable on one core."""
        return rate_hz <= self.sustainable_rate_hz(key_bits) + 1e-9


#: Table-II-calibrated Raspberry Pi 3 Model B cost model.
RASPBERRY_PI_3 = CostModel(
    sign_seconds={1024: 0.04340, 2048: 0.22146},
    encrypt_seconds={1024: 0.00180, 2048: 0.00640},
    smc_round_trip_seconds=20e-6,
    gps_read_seconds=60e-6,
    num_cores=4,
)

#: Template for a model calibrated at runtime against the local machine;
#: the crypto micro-benchmark fills in measured sign/encrypt costs.
THIS_MACHINE_TEMPLATE = CostModel(
    sign_seconds={1024: 0.0018, 2048: 0.0090},
    encrypt_seconds={1024: 0.00006, 2048: 0.00020},
    smc_round_trip_seconds=2e-6,
    gps_read_seconds=5e-6,
    num_cores=4,
)
