"""Power model — paper equation (4), from Kaup et al.'s PowerPi study.

    P_cpu(u) = 1.5778 W + 0.181 * u W

with ``u`` the average CPU utilization in [0, 1] (fraction of total
capacity across all cores).  Table II's power column is exactly this
formula applied to the CPU column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class PowerModel:
    """An affine CPU power model ``P(u) = idle + slope * u``."""

    idle_w: float
    slope_w: float

    def power_w(self, utilization_fraction: float) -> float:
        """Power draw for a utilization in [0, 1]."""
        if not 0.0 <= utilization_fraction <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization_fraction}")
        return self.idle_w + self.slope_w * utilization_fraction

    def energy_j(self, utilization_fraction: float, duration_s: float) -> float:
        """Energy over a window at constant utilization."""
        if duration_s < 0:
            raise ConfigurationError("duration must be non-negative")
        return self.power_w(utilization_fraction) * duration_s

    def marginal_energy_j(self, busy_seconds: float, num_cores: int) -> float:
        """Extra energy attributable to ``busy_seconds`` of one-core work.

        Useful for per-sample energy accounting: a signature that keeps one
        of ``num_cores`` cores busy for ``t`` seconds adds
        ``slope * t / num_cores`` joules over idle.
        """
        if busy_seconds < 0 or num_cores < 1:
            raise ConfigurationError("invalid busy time or core count")
        return self.slope_w * busy_seconds / num_cores


#: Equation (4): Kaup et al.'s Raspberry Pi CPU power model.
KAUP_RASPBERRY_PI = PowerModel(idle_w=1.5778, slope_w=0.181)


def kaup_power_w(utilization_fraction: float) -> float:
    """Equation (4) as a plain function."""
    return KAUP_RASPBERRY_PI.power_w(utilization_fraction)
