"""Memory model (Table II's memory row).

The paper reports a flat 3.27 MB resident footprint — 0.3% of the Pi's
1 GB — independent of rate and key size: the Adapter plus TA working set
dominates, and per-sample records are appended to flash, not held in RAM.
The model therefore has a constant resident base plus a small in-flight
buffer term that only matters for the sign-all-at-once extension (which
*does* hold the whole trace in secure memory, §VII-A1(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Bytes per buffered PoA record: 36-byte payload + up to 256-byte
#: signature + container overhead.
RECORD_BYTES = 416


@dataclass(frozen=True, slots=True)
class MemoryModel:
    """Resident-memory model for the AliDrone client."""

    base_bytes: int
    total_ram_bytes: int

    def resident_bytes(self, buffered_samples: int = 0) -> int:
        """Resident footprint with ``buffered_samples`` records in RAM."""
        if buffered_samples < 0:
            raise ConfigurationError("buffered_samples must be non-negative")
        return self.base_bytes + buffered_samples * RECORD_BYTES

    def resident_mb(self, buffered_samples: int = 0) -> float:
        """Footprint in MB (decimal, as ``top`` reports)."""
        return self.resident_bytes(buffered_samples) / 1e6

    def percent_of_ram(self, buffered_samples: int = 0) -> float:
        """Footprint as a percentage of platform RAM."""
        return 100.0 * self.resident_bytes(buffered_samples) / self.total_ram_bytes


#: Calibrated to Table II: 3.27 MB resident on a 1 GB Pi (0.3%).
RASPBERRY_PI_MEMORY = MemoryModel(base_bytes=3_270_000,
                                  total_ram_bytes=1_000_000_000)
