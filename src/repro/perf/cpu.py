"""CPU utilization model (Table II methodology).

The paper pins the GPS Sampler to one core and samples ``top`` once per
second for the run, reporting mean +- std of CPU%% relative to all four
cores (hence the [0, 25%] range).  We reproduce that: given the instants
at which authenticated samples were taken and the per-sample busy time,
build the per-second busy series and aggregate it the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.perf.costs import CostModel
from repro.perf.meter import Measurement, mean_std


@dataclass
class UtilizationSeries:
    """Per-second CPU utilization (% of all cores) over an observation."""

    per_second_percent: list[float]

    @classmethod
    def from_sample_times(cls, sample_times: Sequence[float],
                          busy_per_sample_s: float, t_start: float,
                          t_end: float, num_cores: int) -> "UtilizationSeries":
        """Distribute per-sample busy time into 1-second ``top`` buckets.

        A sample's busy interval ``[t, t + busy)`` is split across bucket
        boundaries, mirroring how ``top`` attributes CPU time.
        """
        if t_end <= t_start:
            raise ConfigurationError("observation window must be positive")
        n_buckets = max(1, int(math.ceil(t_end - t_start)))
        busy = [0.0] * n_buckets
        for t in sample_times:
            start = t - t_start
            remaining = busy_per_sample_s
            bucket = int(start)
            position = start
            while remaining > 0 and bucket < n_buckets:
                if bucket < 0:
                    break
                room = (bucket + 1) - position
                used = min(room, remaining)
                busy[bucket] += used
                remaining -= used
                position += used
                bucket += 1
        percent = [100.0 * b / num_cores for b in busy]
        return cls(per_second_percent=percent)

    def measurement(self) -> Measurement:
        """Mean +- std of the per-second CPU%% series."""
        return mean_std(self.per_second_percent)


class CpuUtilizationModel:
    """Computes Table II CPU columns from sampling-run outputs."""

    def __init__(self, costs: CostModel):
        self.costs = costs

    def utilization(self, sample_times: Sequence[float], key_bits: int,
                    t_start: float, t_end: float) -> Measurement:
        """CPU%% (of all cores) for a run that signed at ``sample_times``."""
        busy = self.costs.auth_sample_cost(key_bits)
        series = UtilizationSeries.from_sample_times(
            sample_times, busy, t_start, t_end, self.costs.num_cores)
        return series.measurement()

    def fixed_rate_utilization(self, rate_hz: float, key_bits: int,
                               duration_s: float = 300.0,
                               jitter: float = 0.0) -> Measurement | None:
        """CPU%% for the laboratory fixed-rate benchmark rows.

        Returns None when the platform cannot sustain the rate (the
        paper's "-" cells).  ``jitter`` perturbs nothing here — the lab
        benchmark is deterministic — but is kept for API symmetry with
        scenario runs.
        """
        del jitter
        if not self.costs.can_sustain(rate_hz, key_bits):
            return None
        times = [i / rate_hz for i in range(int(duration_s * rate_hz))]
        return self.utilization(times, key_bits, 0.0, duration_s)

    def mean_utilization_fraction(self, sample_count: int, key_bits: int,
                                  duration_s: float) -> float:
        """Average utilization as a 0-1 fraction of total CPU capacity.

        This is the ``u`` that feeds the Kaup power model.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        busy = self.costs.auth_sample_cost(key_bits) * sample_count
        return busy / (duration_s * self.costs.num_cores)
