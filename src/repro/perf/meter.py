"""Measurement aggregation: mean +- std in the paper's reporting style."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Measurement:
    """A mean with its standard deviation, e.g. ``2.17 +-0.05``."""

    mean: float
    std: float
    n: int = 0

    def format(self, digits: int = 2) -> str:
        """Render in Table II's ``mean +-std`` style."""
        return f"{self.mean:.{digits}f} ±{self.std:.{digits}f}"

    def __str__(self) -> str:
        return self.format()


def mean_std(values: Sequence[float]) -> Measurement:
    """Population mean and standard deviation of a series.

    The paper samples ``top`` once per second and averages, which is a
    population statistic over the observation window, so population (not
    sample) std matches.
    """
    if not values:
        raise ConfigurationError("cannot aggregate an empty series")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return Measurement(mean=mean, std=math.sqrt(variance), n=n)
