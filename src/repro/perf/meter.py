"""Measurement aggregation: mean +- std in the paper's reporting style.

Also hosts :class:`StageMetrics`, the per-stage timing accumulator the
staged verification pipeline and the batch audit engine report into.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Measurement:
    """A mean with its standard deviation, e.g. ``2.17 +-0.05``."""

    mean: float
    std: float
    n: int = 0

    def format(self, digits: int = 2) -> str:
        """Render in Table II's ``mean +-std`` style."""
        return f"{self.mean:.{digits}f} ±{self.std:.{digits}f}"

    def __str__(self) -> str:
        return self.format()


def mean_std(values: Sequence[float]) -> Measurement:
    """Population mean and standard deviation of a series.

    The paper samples ``top`` once per second and averages, which is a
    population statistic over the observation window, so population (not
    sample) std matches.
    """
    if not values:
        raise ConfigurationError("cannot aggregate an empty series")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return Measurement(mean=mean, std=math.sqrt(variance), n=n)


@dataclass(frozen=True, slots=True)
class StageSample:
    """One timed execution of one pipeline stage."""

    seconds: float
    sample_count: int


@dataclass
class StageMetrics:
    """Per-stage wall time and sample counts for verification pipelines.

    Every stage execution is recorded individually so callers can compute
    both totals (engine throughput accounting) and per-run distributions
    (mean ± std via :func:`mean_std`).  Instances are cheap dict-of-list
    accumulators; the engine merges per-worker instances with
    :meth:`merge`.
    """

    _samples: dict[str, list[StageSample]] = field(default_factory=dict)

    def record(self, stage: str, seconds: float, sample_count: int = 0) -> None:
        """Record one execution of ``stage``."""
        self._samples.setdefault(stage, []).append(
            StageSample(seconds=float(seconds), sample_count=int(sample_count)))

    def stages(self) -> list[str]:
        """Stage names in first-recorded order."""
        return list(self._samples)

    def runs(self, stage: str) -> int:
        """How many times ``stage`` was executed."""
        return len(self._samples.get(stage, ()))

    def total_seconds(self, stage: str) -> float:
        """Accumulated wall time spent in ``stage``."""
        return sum(s.seconds for s in self._samples.get(stage, ()))

    def total_samples(self, stage: str) -> int:
        """Accumulated sample count processed by ``stage``."""
        return sum(s.sample_count for s in self._samples.get(stage, ()))

    def timing(self, stage: str) -> Measurement:
        """Wall-time distribution of one stage as ``mean ± std``."""
        samples = self._samples.get(stage)
        if not samples:
            raise ConfigurationError(f"no samples recorded for stage {stage!r}")
        return mean_std([s.seconds for s in samples])

    def summary(self) -> dict[str, Measurement]:
        """Per-stage timing measurements keyed by stage name."""
        return {stage: self.timing(stage) for stage in self._samples}

    def merge(self, *others: "StageMetrics") -> "StageMetrics":
        """Fold other accumulators into this one (returns self)."""
        for other in others:
            for stage, samples in other._samples.items():
                self._samples.setdefault(stage, []).extend(samples)
        return self

    def format(self, digits: int = 6) -> str:
        """A human-readable per-stage table (seconds)."""
        lines = []
        for stage in self._samples:
            m = self.timing(stage)
            lines.append(
                f"{stage:<12} runs={self.runs(stage):<5d} "
                f"samples={self.total_samples(stage):<7d} "
                f"total={self.total_seconds(stage):.{digits}f}s "
                f"per-run={m.format(digits)}s")
        return "\n".join(lines)

    def __iter__(self) -> Iterable[str]:
        return iter(self._samples)

    def __len__(self) -> int:
        return len(self._samples)
