"""Performance models: the Raspberry Pi cost model, CPU, power, memory.

Table II of the paper is a function of (a) how many authenticated samples
each policy takes and (b) what one sample costs on the Pi.  The sampling
counts come from real runs of the real pipeline; the per-operation costs
come from :data:`~repro.perf.costs.RASPBERRY_PI_3`, calibrated from the
paper's own fixed-rate rows (see the module docstring for the derivation).
"""

from repro.perf.costs import CostModel, RASPBERRY_PI_3, THIS_MACHINE_TEMPLATE
from repro.perf.cpu import CpuUtilizationModel, UtilizationSeries
from repro.perf.power import kaup_power_w, PowerModel, KAUP_RASPBERRY_PI
from repro.perf.memory import MemoryModel, RASPBERRY_PI_MEMORY
from repro.perf.meter import Measurement, StageMetrics, StageSample, mean_std

__all__ = [
    "CostModel",
    "RASPBERRY_PI_3",
    "THIS_MACHINE_TEMPLATE",
    "CpuUtilizationModel",
    "UtilizationSeries",
    "kaup_power_w",
    "PowerModel",
    "KAUP_RASPBERRY_PI",
    "MemoryModel",
    "RASPBERRY_PI_MEMORY",
    "Measurement",
    "StageMetrics",
    "StageSample",
    "mean_std",
]
