"""A monotone virtual clock.

All timing in the reproduction — GPS update instants, sampler sleeps, TEE
call timestamps — is virtual.  The clock only moves forward; samplers
"sleep" by advancing it.  This is what makes every figure and table
regenerate bit-identically.
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Default scenario epoch: 2018-05-22 12:00 UTC, inside the paper's field-
#: study era.  NMEA dates are two-digit years, so simulations should anchor
#: near a realistic date for timestamps to round-trip the sentence format.
DEFAULT_EPOCH = 1_526_990_400.0


class SimClock:
    """Virtual time in UNIX seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def __call__(self) -> float:
        """Callable form, for APIs that take a ``now()`` function."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt: {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move forward to absolute time ``t``; returns the new time."""
        if t < self._now - 1e-12:
            raise SimulationError(
                f"cannot move clock backwards: {t} < {self._now}")
        self._now = max(self._now, t)
        return self._now
