"""Deterministic simulation kernel: virtual time and event logging."""

from repro.sim.clock import SimClock
from repro.sim.events import EventLog, Event

__all__ = ["SimClock", "EventLog", "Event", "World", "DroneActor",
           "CompositeSource"]

_LAZY = {"World", "DroneActor", "CompositeSource"}


def __getattr__(name):
    # The world orchestrator imports the drone/server stacks, which import
    # back into repro.sim for the clock and event log; loading it lazily
    # (PEP 562) keeps `import repro.sim` cycle-free.
    if name in _LAZY:
        from repro.sim import world

        return getattr(world, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
