"""A structured event log for simulations.

Workload runs append timestamped events (sample taken, zone approached,
insufficiency detected...) that tests and analysis code can query without
re-deriving them from raw output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped occurrence."""

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class EventLog:
    """An append-only, time-ordered event collection."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(self, time: float, kind: str, **detail: Any) -> None:
        """Append an event."""
        self._events.append(Event(time=time, kind=kind, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """All events with the given kind, in order."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were recorded."""
        return sum(1 for e in self._events if e.kind == kind)

    def between(self, t0: float, t1: float) -> list[Event]:
        """Events with ``t0 <= time <= t1``."""
        return [e for e in self._events if t0 <= e.time <= t1]
