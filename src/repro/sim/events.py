"""A structured event log for simulations.

Workload runs append timestamped events (sample taken, zone approached,
insufficiency detected...) that tests and analysis code can query without
re-deriving them from raw output.

Logs serialize to JSONL (one event per line) via :meth:`EventLog.to_jsonl`
/ :meth:`EventLog.from_jsonl`, and can be bounded with ``max_events`` —
long simulated flights would otherwise grow an append-only log without
limit; a bounded log evicts oldest-first like a flight recorder.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigurationError, EncodingError


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped occurrence."""

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view (the JSONL row)."""
        return {"time": self.time, "kind": self.kind,
                "detail": dict(self.detail)}


class EventLog:
    """An append-only, time-ordered event collection.

    Args:
        max_events: optional bound; when set, appending past it evicts
            the oldest events first (the log keeps the most recent
            ``max_events``).  Unbounded by default.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ConfigurationError("max_events must be >= 1 (or None)")
        self.max_events = max_events
        self._events: deque[Event] = deque(maxlen=max_events)
        self._evicted = 0

    def record(self, time: float, kind: str, **detail: Any) -> None:
        """Append an event (evicting the oldest if the log is bounded)."""
        if self.max_events is not None and len(self._events) == self.max_events:
            self._evicted += 1
        self._events.append(Event(time=time, kind=kind, detail=detail))

    @property
    def evicted(self) -> int:
        """How many events the bound has pushed out so far."""
        return self._evicted

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        """All events with the given kind, in order."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were recorded."""
        return sum(1 for e in self._events if e.kind == kind)

    def between(self, t0: float, t1: float) -> list[Event]:
        """Events with ``t0 <= time <= t1``."""
        return [e for e in self._events if t0 <= e.time <= t1]

    # --- serialization ------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first."""
        return "\n".join(json.dumps(e.to_dict(), sort_keys=True)
                         for e in self._events)

    @classmethod
    def from_jsonl(cls, text: str,
                   max_events: int | None = None) -> "EventLog":
        """Rebuild a log from :meth:`to_jsonl` output.

        Blank lines are skipped; a malformed line raises
        :class:`~repro.errors.EncodingError`.  When ``max_events`` is
        given the usual oldest-first eviction applies during the load.
        """
        log = cls(max_events=max_events)
        for number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                log.record(float(row["time"]), str(row["kind"]),
                           **dict(row.get("detail") or {}))
            except (ValueError, KeyError, TypeError) as exc:
                raise EncodingError(
                    f"bad event log line {number}: {exc}") from exc
        return log
