"""A multi-actor simulation world: one Auditor, many drones, many zones.

Gives examples and integration tests a high-level API over the whole
stack: add zones, add drones (each with its own provisioned TrustZone
device and continuous position timeline), fly missions, submit PoAs, and
adjudicate incidents — all on a shared virtual timeline.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field

from repro.core.nfz import NoFlyZone
from repro.core.protocol import IncidentReport, ZoneRegistrationRequest
from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.drone.client import AliDroneClient, FlightRecord
from repro.drone.flightplan import FlightPlan
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.errors import ConfigurationError, SimulationError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource
from repro.server.auditor import AliDroneServer
from repro.server.violations import ViolationFinding
from repro.sim.clock import DEFAULT_EPOCH, SimClock
from repro.tee.attestation import TrustZoneDevice, provision_device

Point = tuple[float, float]


class CompositeSource:
    """A continuous position timeline built from appended segments.

    Between segments (and before the first / after the last) the drone is
    parked at the adjacent segment's endpoint, so the receiver always has
    a well-defined position.
    """

    def __init__(self, initial_position: Point, start_time: float):
        self._segments: list[WaypointSource] = [
            WaypointSource([(start_time, *initial_position)])]
        self._starts = [start_time]

    @property
    def end_time(self) -> float:
        """When the last appended segment ends."""
        return self._segments[-1].end_time

    def last_position(self) -> Point:
        """Where the timeline currently ends."""
        return self._segments[-1].position_at(self.end_time)

    def append(self, segment: WaypointSource) -> None:
        """Append a segment; it must not start before the timeline ends."""
        if segment.start_time < self.end_time - 1e-9:
            raise SimulationError(
                "segment would overlap the existing timeline")
        self._segments.append(segment)
        self._starts.append(segment.start_time)

    def position_at(self, t: float) -> Point:
        """Position at ``t``: in-segment interpolation, else parked."""
        index = bisect.bisect_right(self._starts, t) - 1
        index = max(0, index)
        segment = self._segments[index]
        if t > segment.end_time and index + 1 < len(self._segments):
            # Parked between segments: hold the endpoint.
            return segment.position_at(segment.end_time)
        return segment.position_at(t)


@dataclass
class DroneActor:
    """One drone in the world: device, client, and its position timeline."""

    name: str
    device: TrustZoneDevice
    client: AliDroneClient
    timeline: CompositeSource
    clock: SimClock
    flights: list[FlightRecord] = field(default_factory=list)

    @property
    def drone_id(self) -> str:
        """The Auditor-issued identifier."""
        assert self.client.drone_id is not None
        return self.client.drone_id


class World:
    """The orchestrator binding Auditor, zones, and drones together."""

    def __init__(self, origin: GeoPoint = GeoPoint(40.1000, -88.2200),
                 seed: int = 0, start_time: float = DEFAULT_EPOCH,
                 key_bits: int = 1024, gps_rate_hz: float = 5.0,
                 gps_noise_std_m: float = 1.0):
        self.frame = LocalFrame(origin)
        self.rng = random.Random(seed)
        self.start_time = float(start_time)
        self.key_bits = key_bits
        self.gps_rate_hz = float(gps_rate_hz)
        self.gps_noise_std_m = float(gps_noise_std_m)
        self.server = AliDroneServer(self.frame, rng=random.Random(seed + 1),
                                     encryption_key_bits=max(512, key_bits))
        self._vendor_key: RsaPrivateKey = generate_rsa_keypair(
            512, rng=random.Random(seed + 2))
        self.drones: dict[str, DroneActor] = {}
        self._device_counter = 0

    # --- zones -----------------------------------------------------------

    def register_zone(self, x: float, y: float, radius_m: float,
                      owner_name: str = "", proof: str = "deed") -> str:
        """Register a circular NFZ at local coordinates ``(x, y)``."""
        center = self.frame.to_geo(x, y)
        return self.server.register_zone(ZoneRegistrationRequest(
            zone=NoFlyZone(center.lat, center.lon, radius_m),
            proof_of_ownership=proof, owner_name=owner_name))

    # --- drones -----------------------------------------------------------

    def add_drone(self, name: str, home: Point = (0.0, 0.0)) -> DroneActor:
        """Provision, wire, and register a new drone parked at ``home``."""
        if name in self.drones:
            raise ConfigurationError(f"drone name {name!r} already in use")
        self._device_counter += 1
        device = provision_device(
            f"world-device-{self._device_counter:03d}",
            key_bits=self.key_bits,
            rng=random.Random(self.rng.randrange(2 ** 31)),
            vendor_key=self._vendor_key)
        timeline = CompositeSource(home, self.start_time)
        clock = SimClock(self.start_time)
        receiver = SimulatedGpsReceiver(
            timeline, self.frame, update_rate_hz=self.gps_rate_hz,
            start_time=self.start_time,
            noise_std_m=self.gps_noise_std_m,
            seed=self.rng.randrange(2 ** 31))
        device.attach_gps(receiver, clock)
        client = AliDroneClient(device, receiver, clock, self.frame,
                                operator_name=name,
                                rng=random.Random(self.rng.randrange(2 ** 31)))
        client.register(self.server)
        actor = DroneActor(name=name, device=device, client=client,
                           timeline=timeline, clock=clock)
        self.drones[name] = actor
        return actor

    # --- missions -----------------------------------------------------------

    def fly_mission(self, name: str, waypoints: list[Point],
                    policy: str = "adaptive",
                    fixed_rate_hz: float | None = None,
                    kinematics: DroneKinematics | None = None,
                    query_zones: bool = True,
                    submit: bool = True) -> FlightRecord:
        """Fly ``name`` from its current position through ``waypoints``.

        Queries the Auditor for zones over the mission rectangle (unless
        disabled), flies, and submits the PoA.  The mission starts at the
        drone's current clock time.
        """
        actor = self.drones[name]
        start = max(actor.clock.now, actor.timeline.end_time)
        actor.clock.advance_to(start)
        route = [actor.timeline.last_position()] + list(waypoints)
        segment = simulate_waypoint_flight(route, start,
                                           kinematics=kinematics)
        actor.timeline.append(segment)

        if query_zones:
            plan = FlightPlan([self.frame.to_geo(*p) for p in route],
                              margin_m=300.0)
            actor.client.query_zones(self.server, plan)

        record = actor.client.fly(segment.end_time, policy=policy,
                                  fixed_rate_hz=fixed_rate_hz)
        actor.flights.append(record)
        if submit:
            actor.client.submit_poa(self.server, record)
        return record

    # --- incidents ------------------------------------------------------------

    def report_incident(self, zone_id: str, drone_name: str,
                        incident_time: float,
                        description: str = "") -> ViolationFinding:
        """A Zone Owner accuses a drone; the Auditor adjudicates."""
        actor = self.drones[drone_name]
        return self.server.handle_incident(IncidentReport(
            zone_id=zone_id, drone_id=actor.drone_id,
            incident_time=incident_time, description=description))
