"""The durable flight store: a SQLite/WAL-backed PoA submission ledger.

The in-process :class:`repro.server.engine.AuditEngine` audits whatever a
caller hands it and forgets everything at process exit; a fleet-scale
auditor service has to survive restarts with its intake intact.  The
:class:`FlightStore` is that durability layer, shaped like the FAA
Remote-ID serial-lookup exemplar: a local indexed SQLite database in WAL
mode, written incrementally as submissions arrive, read back selectively
by drone / zone-region / epoch.

Three tables:

* ``drones`` — the registered ``(id_drone, D+, T+)`` rows, with a unique
  TEE-key fingerprint (one physical device, one license plate) so the
  registry survives restarts with its invariants.
* ``submissions`` — one row per accepted PoA upload: the envelope fields
  in columns (indexed by ``drone_id`` and ``(region, epoch)``) and the
  encrypted records as one length-prefixed blob.  A unique ``dedup_key``
  (SHA-256 over the canonical submission encoding) makes re-submission
  idempotent: the duplicate upload maps onto the original row instead of
  queueing a second audit.
* ``verdicts`` — the audit outcome per submission, keyed by the same
  ``seq``.  A submission with no verdict row is *unaudited*; after a
  crash, :meth:`FlightStore.pending` is exactly the replay set.

Every write commits immediately; WAL journaling makes a torn process
leave either the pre-write or post-write state, never a half row.  All
timestamps are caller-supplied (sim-clock) values — the store never
reads a wall clock, so recovery tests replay bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sqlite3
import struct
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.poa import EncryptedPoaRecord
from repro.core.protocol import PoaSubmission
from repro.core.verification import (
    RejectionReason,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.keys import (
    key_fingerprint,
    public_key_to_bytes,
    public_key_from_bytes,
)
from repro.crypto.rsa import RsaPublicKey
from repro.errors import ConfigurationError, EncodingError, RegistrationError

#: Submissions are bucketed into daily epochs for the ``(region, epoch)``
#: index: incident adjudication and retention sweeps are day-granular.
EPOCH_BUCKET_S = 86_400.0

#: Verdict status recorded when intake itself failed (unknown drone) —
#: there is no :class:`VerificationReport` to reconstruct for these rows.
INTAKE_ERROR_STATUS = "intake_error"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS drones (
    drone_id        TEXT PRIMARY KEY,
    tee_fingerprint TEXT NOT NULL UNIQUE,
    operator_public BLOB NOT NULL,
    tee_public      BLOB NOT NULL,
    operator_name   TEXT NOT NULL DEFAULT '',
    registered_at   REAL NOT NULL DEFAULT 0.0
);

CREATE TABLE IF NOT EXISTS submissions (
    seq           INTEGER PRIMARY KEY AUTOINCREMENT,
    dedup_key     TEXT NOT NULL UNIQUE,
    drone_id      TEXT NOT NULL,
    flight_id     TEXT NOT NULL,
    region        TEXT NOT NULL DEFAULT '',
    epoch         INTEGER NOT NULL,
    scheme        TEXT NOT NULL,
    finalizer     BLOB NOT NULL,
    claimed_start REAL NOT NULL,
    claimed_end   REAL NOT NULL,
    received_at   REAL NOT NULL,
    records       BLOB NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_submissions_drone
    ON submissions (drone_id);
CREATE INDEX IF NOT EXISTS idx_submissions_region_epoch
    ON submissions (region, epoch);
CREATE INDEX IF NOT EXISTS idx_submissions_scheme
    ON submissions (scheme);

CREATE TABLE IF NOT EXISTS verdicts (
    seq                  INTEGER PRIMARY KEY
                             REFERENCES submissions (seq),
    status               TEXT NOT NULL,
    reason               TEXT,
    sample_count         INTEGER NOT NULL DEFAULT 0,
    message              TEXT NOT NULL DEFAULT '',
    bad_indices          TEXT NOT NULL DEFAULT '[]',
    infeasible_indices   TEXT NOT NULL DEFAULT '[]',
    insufficient_indices TEXT NOT NULL DEFAULT '[]',
    audited_at           REAL NOT NULL
);
"""


# --- record blob codec ------------------------------------------------------

def encode_records(records: Sequence[EncryptedPoaRecord]) -> bytes:
    """Length-prefixed wire form of a submission's encrypted records."""
    parts = [struct.pack(">I", len(records))]
    for record in records:
        parts.append(struct.pack(">I", len(record.ciphertext)))
        parts.append(record.ciphertext)
        parts.append(struct.pack(">I", len(record.signature)))
        parts.append(record.signature)
    return b"".join(parts)


def decode_records(blob: bytes) -> tuple[EncryptedPoaRecord, ...]:
    """Inverse of :func:`encode_records`; raises on a torn blob."""
    def take(offset: int, length: int) -> tuple[bytes, int]:
        if offset + length > len(blob):
            raise EncodingError("truncated record blob")
        return blob[offset:offset + length], offset + length

    if len(blob) < 4:
        raise EncodingError("truncated record blob (count)")
    (count,) = struct.unpack_from(">I", blob, 0)
    offset = 4
    records = []
    for _ in range(count):
        raw, offset = take(offset, 4)
        ciphertext, offset = take(offset, struct.unpack(">I", raw)[0])
        raw, offset = take(offset, 4)
        signature, offset = take(offset, struct.unpack(">I", raw)[0])
        records.append(EncryptedPoaRecord(ciphertext=ciphertext,
                                          signature=signature))
    if offset != len(blob):
        raise EncodingError("trailing bytes after record blob")
    return tuple(records)


def submission_dedup_key(submission: PoaSubmission) -> str:
    """The idempotency key: SHA-256 over the canonical submission form.

    Two uploads with the same drone, flight, window, scheme, finalizer,
    and record bytes are the *same* submission — retransmissions after a
    lost ack, duplicated link frames, crash-replayed uploads — and must
    map onto one stored row and one audit.
    """
    digest = hashlib.sha256()
    digest.update(submission.drone_id.encode())
    digest.update(b"\x00")
    digest.update(submission.flight_id.encode())
    digest.update(b"\x00")
    digest.update(submission.scheme.encode())
    digest.update(b"\x00")
    digest.update(struct.pack(">dd", submission.claimed_start,
                              submission.claimed_end))
    digest.update(submission.finalizer)
    digest.update(encode_records(submission.records))
    return digest.hexdigest()


# --- row views --------------------------------------------------------------

@dataclass(frozen=True)
class StoredSubmission:
    """One ``submissions`` row, decoded back into the protocol object."""

    seq: int
    submission: PoaSubmission
    region: str
    received_at: float


@dataclass(frozen=True)
class StoredVerdict:
    """One ``verdicts`` row."""

    seq: int
    status: str
    reason: str | None
    sample_count: int
    message: str
    bad_indices: tuple[int, ...]
    infeasible_indices: tuple[int, ...]
    insufficient_indices: tuple[int, ...]
    audited_at: float

    def to_report(self) -> VerificationReport:
        """Reconstruct the :class:`VerificationReport` this row recorded.

        Raises :class:`~repro.errors.ConfigurationError` for intake-error
        rows, which never had a report.
        """
        if self.status == INTAKE_ERROR_STATUS:
            raise ConfigurationError(
                "intake-error verdicts carry no verification report")
        return VerificationReport(
            status=VerificationStatus(self.status),
            bad_signature_indices=list(self.bad_indices),
            infeasible_pair_indices=list(self.infeasible_indices),
            insufficient_pair_indices=list(self.insufficient_indices),
            sample_count=self.sample_count,
            message=self.message,
            reason=(RejectionReason(self.reason)
                    if self.reason is not None else None))


@dataclass(frozen=True)
class StoredDrone:
    """One ``drones`` row."""

    drone_id: str
    operator_public_key: RsaPublicKey
    tee_public_key: RsaPublicKey
    operator_name: str
    registered_at: float


class FlightStore:
    """The durable drone / submission / verdict ledger.

    Args:
        path: database file, or ``":memory:"`` for an ephemeral store
            (used by tests and the default ``alidrone serve`` smoke
            mode; obviously not crash-safe).
    """

    def __init__(self, path: str | pathlib.Path = ":memory:"):
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA foreign_keys=ON")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "FlightStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --- drones -------------------------------------------------------------

    def register_drone(self, operator_public_key: RsaPublicKey,
                       tee_public_key: RsaPublicKey,
                       operator_name: str = "",
                       registered_at: float = 0.0) -> str:
        """Issue an ``id_drone`` and persist the registration row.

        Mirrors :class:`repro.server.database.DroneRegistry` semantics:
        a TEE key already registered (by fingerprint) is rejected, and
        identifiers are issued sequentially so a restarted service keeps
        counting where it left off.
        """
        fingerprint = key_fingerprint(tee_public_key)
        row = self._conn.execute(
            "SELECT drone_id FROM drones WHERE tee_fingerprint = ?",
            (fingerprint,)).fetchone()
        if row is not None:
            raise RegistrationError(
                f"TEE key already registered as drone {row[0]!r}")
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM drones").fetchone()
        drone_id = f"drone-{count + 1:06d}"
        self._conn.execute(
            "INSERT INTO drones (drone_id, tee_fingerprint, operator_public,"
            " tee_public, operator_name, registered_at)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (drone_id, fingerprint, public_key_to_bytes(operator_public_key),
             public_key_to_bytes(tee_public_key), operator_name,
             float(registered_at)))
        self._conn.commit()
        return drone_id

    def get_drone(self, drone_id: str) -> StoredDrone:
        """The stored registration row; raises for an unknown id."""
        row = self._conn.execute(
            "SELECT drone_id, operator_public, tee_public, operator_name,"
            " registered_at FROM drones WHERE drone_id = ?",
            (drone_id,)).fetchone()
        if row is None:
            raise RegistrationError(f"unknown drone id {drone_id!r}")
        return StoredDrone(
            drone_id=row[0],
            operator_public_key=public_key_from_bytes(row[1]),
            tee_public_key=public_key_from_bytes(row[2]),
            operator_name=row[3], registered_at=row[4])

    def find_drone_by_tee(self,
                          tee_public_key: RsaPublicKey) -> StoredDrone | None:
        """The registration row holding this TEE key, or None.

        This is how a restarted provisioning flow recognises an
        already-registered device instead of tripping the uniqueness
        constraint.
        """
        row = self._conn.execute(
            "SELECT drone_id FROM drones WHERE tee_fingerprint = ?",
            (key_fingerprint(tee_public_key),)).fetchone()
        return self.get_drone(row[0]) if row is not None else None

    def load_drones(self) -> list[StoredDrone]:
        """Every registered drone, in registration order."""
        rows = self._conn.execute(
            "SELECT drone_id, operator_public, tee_public, operator_name,"
            " registered_at FROM drones ORDER BY drone_id").fetchall()
        return [StoredDrone(drone_id=row[0],
                            operator_public_key=public_key_from_bytes(row[1]),
                            tee_public_key=public_key_from_bytes(row[2]),
                            operator_name=row[3], registered_at=row[4])
                for row in rows]

    def drone_count(self) -> int:
        """Number of registered drones."""
        return self._conn.execute("SELECT COUNT(*) FROM drones").fetchone()[0]

    # --- submissions --------------------------------------------------------

    def put_submission(self, submission: PoaSubmission, *,
                       region: str = "",
                       received_at: float = 0.0) -> tuple[int, bool]:
        """Persist one submission; returns ``(seq, inserted)``.

        ``inserted`` is False when the dedup key already exists — the
        returned ``seq`` is then the original row's, so callers can treat
        a retransmission as an ack of the first upload rather than a new
        unit of audit work.
        """
        dedup = submission_dedup_key(submission)
        epoch = int(submission.claimed_start // EPOCH_BUCKET_S)
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO submissions (dedup_key, drone_id,"
            " flight_id, region, epoch, scheme, finalizer, claimed_start,"
            " claimed_end, received_at, records)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (dedup, submission.drone_id, submission.flight_id, region, epoch,
             submission.scheme, submission.finalizer,
             submission.claimed_start, submission.claimed_end,
             float(received_at), encode_records(submission.records)))
        self._conn.commit()
        if cursor.rowcount == 1:
            return cursor.lastrowid, True
        (seq,) = self._conn.execute(
            "SELECT seq FROM submissions WHERE dedup_key = ?",
            (dedup,)).fetchone()
        return seq, False

    _SUBMISSION_COLS = ("seq, drone_id, flight_id, region, scheme,"
                        " finalizer, claimed_start, claimed_end,"
                        " received_at, records")

    def _row_to_submission(self, row) -> StoredSubmission:
        submission = PoaSubmission(
            drone_id=row[1], flight_id=row[2],
            records=decode_records(row[9]),
            claimed_start=row[6], claimed_end=row[7],
            scheme=row[4], finalizer=row[5])
        return StoredSubmission(seq=row[0], submission=submission,
                                region=row[3], received_at=row[8])

    def get_submission(self, seq: int) -> StoredSubmission:
        """The stored submission with this ``seq``; raises if absent."""
        row = self._conn.execute(
            f"SELECT {self._SUBMISSION_COLS} FROM submissions"
            " WHERE seq = ?", (seq,)).fetchone()
        if row is None:
            raise ConfigurationError(f"no stored submission with seq {seq}")
        return self._row_to_submission(row)

    def submissions_for_drone(self, drone_id: str) -> list[StoredSubmission]:
        """Every stored submission from one drone (indexed lookup)."""
        rows = self._conn.execute(
            f"SELECT {self._SUBMISSION_COLS} FROM submissions"
            " WHERE drone_id = ? ORDER BY seq", (drone_id,)).fetchall()
        return [self._row_to_submission(row) for row in rows]

    def submissions_in_region(self, region: str,
                              epoch: int | None = None,
                              ) -> list[StoredSubmission]:
        """Submissions tagged with a zone-region, optionally one epoch."""
        if epoch is None:
            rows = self._conn.execute(
                f"SELECT {self._SUBMISSION_COLS} FROM submissions"
                " WHERE region = ? ORDER BY seq", (region,)).fetchall()
        else:
            rows = self._conn.execute(
                f"SELECT {self._SUBMISSION_COLS} FROM submissions"
                " WHERE region = ? AND epoch = ? ORDER BY seq",
                (region, epoch)).fetchall()
        return [self._row_to_submission(row) for row in rows]

    def submission_count(self) -> int:
        """Total stored submissions (audited or not)."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM submissions").fetchone()[0]

    def submission_counts_by_scheme(self) -> dict[str, int]:
        """Stored submissions per authentication scheme (indexed scan).

        The per-scheme mix is an operational signal: a fleet migrating
        from per-sample RSA to an amortized scheme shows up here first.
        """
        rows = self._conn.execute(
            "SELECT scheme, COUNT(*) FROM submissions"
            " GROUP BY scheme ORDER BY scheme").fetchall()
        return {row[0]: row[1] for row in rows}

    # --- verdicts -----------------------------------------------------------

    def record_verdict(self, seq: int, report: VerificationReport, *,
                       audited_at: float) -> None:
        """Persist the audit outcome for one submission (idempotent)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO verdicts (seq, status, reason,"
            " sample_count, message, bad_indices, infeasible_indices,"
            " insufficient_indices, audited_at)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (seq, report.status.value,
             report.reason.value if report.reason is not None else None,
             report.sample_count, report.message,
             json.dumps(report.bad_signature_indices),
             json.dumps(report.infeasible_pair_indices),
             json.dumps(report.insufficient_pair_indices),
             float(audited_at)))
        self._conn.commit()

    def record_intake_error(self, seq: int, message: str, *,
                            audited_at: float) -> None:
        """Mark a submission as terminally unprocessable (unknown drone).

        Without this row the submission would be replayed after every
        restart and fail every time.
        """
        self._conn.execute(
            "INSERT OR REPLACE INTO verdicts (seq, status, reason,"
            " sample_count, message, bad_indices, infeasible_indices,"
            " insufficient_indices, audited_at)"
            " VALUES (?, ?, NULL, 0, ?, '[]', '[]', '[]', ?)",
            (seq, INTAKE_ERROR_STATUS, message, float(audited_at)))
        self._conn.commit()

    def get_verdict(self, seq: int) -> StoredVerdict | None:
        """The recorded verdict for a submission, or None if unaudited."""
        row = self._conn.execute(
            "SELECT seq, status, reason, sample_count, message, bad_indices,"
            " infeasible_indices, insufficient_indices, audited_at"
            " FROM verdicts WHERE seq = ?", (seq,)).fetchone()
        if row is None:
            return None
        return StoredVerdict(
            seq=row[0], status=row[1], reason=row[2], sample_count=row[3],
            message=row[4],
            bad_indices=tuple(json.loads(row[5])),
            infeasible_indices=tuple(json.loads(row[6])),
            insufficient_indices=tuple(json.loads(row[7])),
            audited_at=row[8])

    def verdict_count(self) -> int:
        """Number of audited submissions."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM verdicts").fetchone()[0]

    # --- replay -------------------------------------------------------------

    def pending(self, limit: int | None = None) -> list[StoredSubmission]:
        """Stored submissions with no verdict yet, in arrival order.

        After a crash this is exactly the set of accepted-but-unaudited
        uploads the restarted service must replay.
        """
        sql = (f"SELECT {', '.join('s.' + c.strip() for c in self._SUBMISSION_COLS.split(','))}"
               " FROM submissions s LEFT JOIN verdicts v ON v.seq = s.seq"
               " WHERE v.seq IS NULL ORDER BY s.seq")
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [self._row_to_submission(row)
                for row in self._conn.execute(sql).fetchall()]

    def pending_count(self) -> int:
        """How many stored submissions still await a verdict."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM submissions s"
            " LEFT JOIN verdicts v ON v.seq = s.seq"
            " WHERE v.seq IS NULL").fetchone()[0]

    def audited(self) -> Iterator[tuple[StoredSubmission, StoredVerdict]]:
        """Every (submission, verdict) pair, in arrival order.

        This is the conformance-replay feed: an independent verifier can
        re-derive each decision from the stored ciphertext and compare it
        to the recorded verdict.
        """
        rows = self._conn.execute(
            f"SELECT {', '.join('s.' + c.strip() for c in self._SUBMISSION_COLS.split(','))},"
            " v.status, v.reason, v.sample_count, v.message, v.bad_indices,"
            " v.infeasible_indices, v.insufficient_indices, v.audited_at"
            " FROM submissions s JOIN verdicts v ON v.seq = s.seq"
            " ORDER BY s.seq").fetchall()
        for row in rows:
            stored = self._row_to_submission(row[:10])
            verdict = StoredVerdict(
                seq=row[0], status=row[10], reason=row[11],
                sample_count=row[12], message=row[13],
                bad_indices=tuple(json.loads(row[14])),
                infeasible_indices=tuple(json.loads(row[15])),
                insufficient_indices=tuple(json.loads(row[16])),
                audited_at=row[17])
            yield stored, verdict
