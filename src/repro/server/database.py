"""Auditor-side registries: drones and no-fly-zones.

The drone registry is the ``(id_drone, D+, T+)`` table of §IV-B step 0;
the NFZ database backs the zone query with a spatial index so rectangle
lookups stay fast with many registered zones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.nfz import NoFlyZone
from repro.crypto.keys import key_fingerprint
from repro.crypto.rsa import RsaPublicKey
from repro.errors import RegistrationError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.geo.spatial_index import GridIndex


@dataclass(frozen=True, slots=True)
class RegisteredDrone:
    """One row of the drone table: ``(id_drone, D+, T+)``."""

    drone_id: str
    operator_public_key: RsaPublicKey
    tee_public_key: RsaPublicKey
    operator_name: str = ""


@dataclass(frozen=True, slots=True)
class RegisteredZone:
    """One row of the NFZ table: ``(id_zone, z)`` plus ownership metadata."""

    zone_id: str
    zone: NoFlyZone
    owner_name: str = ""


class DroneRegistry:
    """Issues drone identifiers and stores their verification keys."""

    def __init__(self) -> None:
        self._drones: dict[str, RegisteredDrone] = {}
        self._tee_fingerprints: dict[str, str] = {}
        self._counter = 0

    def register(self, operator_public_key: RsaPublicKey,
                 tee_public_key: RsaPublicKey,
                 operator_name: str = "") -> RegisteredDrone:
        """Add a drone; returns the record with its issued ``id_drone``.

        Rejects a TEE key that is already registered: one physical device
        maps to exactly one license plate.
        """
        fingerprint = key_fingerprint(tee_public_key)
        if fingerprint in self._tee_fingerprints:
            existing = self._tee_fingerprints[fingerprint]
            raise RegistrationError(
                f"TEE key already registered as drone {existing!r}")
        self._counter += 1
        drone_id = f"drone-{self._counter:06d}"
        record = RegisteredDrone(drone_id=drone_id,
                                 operator_public_key=operator_public_key,
                                 tee_public_key=tee_public_key,
                                 operator_name=operator_name)
        self._drones[drone_id] = record
        self._tee_fingerprints[fingerprint] = drone_id
        return record

    def lookup(self, drone_id: str) -> RegisteredDrone:
        """The record for ``drone_id``; raises if unregistered."""
        record = self._drones.get(drone_id)
        if record is None:
            raise RegistrationError(f"unknown drone id {drone_id!r}")
        return record

    def __contains__(self, drone_id: str) -> bool:
        return drone_id in self._drones

    def __len__(self) -> int:
        return len(self._drones)


class NfzDatabase:
    """Spatially indexed NFZ registry."""

    def __init__(self, frame: LocalFrame, cell_size_m: float = 500.0):
        self.frame = frame
        self._index: GridIndex[str] = GridIndex(cell_size_m)
        self._zones: dict[str, RegisteredZone] = {}
        self._counter = 0

    def register(self, zone: NoFlyZone, owner_name: str = "",
                 proof_of_ownership: str = "") -> RegisteredZone:
        """Add a zone after a (modelled) ownership check."""
        if not proof_of_ownership:
            raise RegistrationError("zone registration requires proof of ownership")
        self._counter += 1
        zone_id = f"zone-{self._counter:06d}"
        record = RegisteredZone(zone_id=zone_id, zone=zone,
                                owner_name=owner_name)
        self._zones[zone_id] = record
        self._index.insert(zone_id, zone.to_circle(self.frame))
        return record

    def lookup(self, zone_id: str) -> RegisteredZone:
        """The record for ``zone_id``; raises if unregistered."""
        record = self._zones.get(zone_id)
        if record is None:
            raise RegistrationError(f"unknown zone id {zone_id!r}")
        return record

    def deregister(self, zone_id: str) -> RegisteredZone:
        """Remove a zone (the owner withdrew it); returns the old record."""
        record = self.lookup(zone_id)
        del self._zones[zone_id]
        self._index.remove(zone_id)
        return record

    def update(self, zone_id: str, zone: NoFlyZone) -> RegisteredZone:
        """Replace a zone's geometry (e.g. a corrected survey).

        The identifier and ownership metadata are preserved.
        """
        old = self.lookup(zone_id)
        record = RegisteredZone(zone_id=zone_id, zone=zone,
                                owner_name=old.owner_name)
        self._zones[zone_id] = record
        self._index.insert(zone_id, zone.to_circle(self.frame))
        return record

    def query_rect(self, corner_a: GeoPoint,
                   corner_b: GeoPoint) -> list[RegisteredZone]:
        """All zones whose circle intersects the geographic rectangle."""
        ax, ay = self.frame.to_local(corner_a)
        bx, by = self.frame.to_local(corner_b)
        ids = self._index.query_rect(min(ax, bx), min(ay, by),
                                     max(ax, bx), max(ay, by))
        return [self._zones[zone_id] for zone_id in ids]

    def all_zones(self) -> Iterator[RegisteredZone]:
        """Every registered zone."""
        return iter(self._zones.values())

    def __len__(self) -> int:
        return len(self._zones)

    def __contains__(self, zone_id: str) -> bool:
        return zone_id in self._zones
