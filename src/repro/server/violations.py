"""Violation findings, the evidence ledger, and penalty policy.

The paper leaves punishment "to policy or legislation" (§III-A); the
ledger and the graduated penalty schedule here give the protocol a
complete, testable enforcement tail without inventing legal semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class ViolationKind(enum.Enum):
    """Why the Auditor found against the operator."""

    NO_POA = "no_poa"                      # no submission covers the incident
    BAD_SIGNATURE = "bad_signature"        # forged / relayed / tampered PoA
    INFEASIBLE_TRACE = "infeasible_trace"  # physically impossible motion
    INSUFFICIENT_ALIBI = "insufficient"    # cannot rule out NFZ entrance
    MALFORMED_POA = "malformed"


@dataclass(frozen=True, slots=True)
class ViolationFinding:
    """The Auditor's conclusion on one incident report."""

    drone_id: str
    zone_id: str
    incident_time: float
    violation: bool
    kind: ViolationKind | None = None
    detail: str = ""


class PenaltyPolicy:
    """A graduated fine schedule keyed on offence count and violation kind.

    Forgery-class violations (bad signatures, infeasible traces) are
    treated as deliberate and fined at a multiplier over insufficiency,
    which may be accidental (under-sampling).
    """

    def __init__(self, base_fine: float = 500.0,
                 repeat_multiplier: float = 2.0,
                 forgery_multiplier: float = 5.0,
                 max_fine: float = 50_000.0):
        self.base_fine = float(base_fine)
        self.repeat_multiplier = float(repeat_multiplier)
        self.forgery_multiplier = float(forgery_multiplier)
        self.max_fine = float(max_fine)

    def fine_for(self, kind: ViolationKind, prior_offences: int) -> float:
        """The fine for an operator's ``prior_offences + 1``-th violation."""
        fine = self.base_fine * (self.repeat_multiplier ** prior_offences)
        if kind in (ViolationKind.BAD_SIGNATURE, ViolationKind.INFEASIBLE_TRACE,
                    ViolationKind.MALFORMED_POA):
            fine *= self.forgery_multiplier
        return min(fine, self.max_fine)


@dataclass(frozen=True, slots=True)
class LedgerEntry:
    """One adjudicated violation with its assessed fine."""

    finding: ViolationFinding
    fine: float


class ViolationLedger:
    """Append-only record of adjudicated violations per drone."""

    def __init__(self, policy: PenaltyPolicy | None = None):
        self.policy = policy or PenaltyPolicy()
        self._entries: list[LedgerEntry] = []
        self._offences: dict[str, int] = {}

    def adjudicate(self, finding: ViolationFinding) -> LedgerEntry | None:
        """Record a finding; returns the ledger entry when it is a violation."""
        if not finding.violation:
            return None
        if finding.kind is None:
            raise ValueError("a violation finding must carry its kind")
        prior = self._offences.get(finding.drone_id, 0)
        fine = self.policy.fine_for(finding.kind, prior)
        entry = LedgerEntry(finding=finding, fine=fine)
        self._entries.append(entry)
        self._offences[finding.drone_id] = prior + 1
        return entry

    def offences(self, drone_id: str) -> int:
        """How many violations are recorded against ``drone_id``."""
        return self._offences.get(drone_id, 0)

    def total_fines(self, drone_id: str) -> float:
        """Sum of fines assessed against ``drone_id``."""
        return sum(e.fine for e in self._entries
                   if e.finding.drone_id == drone_id)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
