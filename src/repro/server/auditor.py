"""The AliDrone Server: the Auditor's online service (paper §IV-C2).

Stores registered drones and NFZs, answers signed zone queries, decrypts
and verifies submitted PoAs, retains verified PoAs as evidence "for a
couple of days", and adjudicates Zone Owner incident reports against the
retained evidence.

PoA intake is delegated to the batch :class:`repro.server.engine.AuditEngine`:
:meth:`AliDroneServer.receive_poa` is a thin single-submission wrapper over
:meth:`AliDroneServer.receive_poa_batch`, so both paths share the staged
verification pipeline, crypto fan-out, and caches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi
from repro.core.protocol import (
    DroneRegistrationRequest,
    IncidentReport,
    PoaSubmission,
    ZoneQuery,
    ZoneRegistrationRequest,
    ZoneResponse,
)
from repro.core.sufficiency import Method, pair_is_sufficient
from repro.core.verification import (
    PoaVerifier,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.errors import (
    AuthenticationError,
    RegistrationError,
    ServiceUnavailableError,
)
from repro.geo.geodesy import LocalFrame
from repro.obs.adapters import (
    register_event_log,
    register_stage_metrics,
    register_zone_index_stats,
)
from repro.obs.hub import TelemetryHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.server.database import DroneRegistry, NfzDatabase
from repro.server.engine import AuditEngine, BatchAuditResult
from repro.sim.events import EventLog
from repro.server.violations import (
    PenaltyPolicy,
    ViolationFinding,
    ViolationKind,
    ViolationLedger,
)
from repro.units import FAA_MAX_SPEED_MPS

#: Paper: "the AliDrone Server should save the PoAs for a couple of days".
DEFAULT_RETENTION_S = 3 * 24 * 3600.0

#: How long a zone-query nonce is remembered for replay protection.  A
#: nonce older than this can no longer be replayed undetectably in any
#: realistic deployment (queries are interactive), so the set is evicted
#: on the same sweep that purges retained evidence — otherwise it grows
#: without bound under heavy traffic.
DEFAULT_NONCE_WINDOW_S = 24 * 3600.0

_STATUS_TO_KIND = {
    VerificationStatus.REJECTED_BAD_SIGNATURE: ViolationKind.BAD_SIGNATURE,
    VerificationStatus.REJECTED_INFEASIBLE: ViolationKind.INFEASIBLE_TRACE,
    VerificationStatus.REJECTED_MALFORMED: ViolationKind.MALFORMED_POA,
    VerificationStatus.REJECTED_EMPTY: ViolationKind.MALFORMED_POA,
    VerificationStatus.INSUFFICIENT: ViolationKind.INSUFFICIENT_ALIBI,
}


@dataclass
class RetainedSubmission:
    """A verified submission kept as evidence for later accusations."""

    submission: PoaSubmission
    poa: ProofOfAlibi
    report: VerificationReport
    received_at: float


class AliDroneServer:
    """The Auditor's service endpoint."""

    def __init__(self, frame: LocalFrame,
                 rng: random.Random | None = None,
                 encryption_key_bits: int = 1024,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 hash_name: str = "sha1",
                 method: Method = "conservative",
                 retention_s: float = DEFAULT_RETENTION_S,
                 nonce_window_s: float = DEFAULT_NONCE_WINDOW_S,
                 penalty_policy: PenaltyPolicy | None = None,
                 audit_workers: int = 1,
                 audit_executor: str = "thread",
                 screen_signatures: bool = True,
                 telemetry: TelemetryHub | None = None,
                 injector=None):
        self.frame = frame
        self.rng = rng or random.SystemRandom()
        #: Optional fault injector: ``fail`` rules at
        #: ``auditor.register`` / ``auditor.zone_query`` /
        #: ``auditor.receive_poa`` make the matching endpoint raise
        #: :class:`~repro.errors.ServiceUnavailableError` before any
        #: state is touched (an outage window, not a partial write).
        self.injector = injector
        self.vmax_mps = float(vmax_mps)
        self.retention_s = float(retention_s)
        self.nonce_window_s = float(nonce_window_s)
        self.drones = DroneRegistry()
        self.zones = NfzDatabase(frame)
        self.verifier = PoaVerifier(frame, vmax_mps=vmax_mps,
                                    hash_name=hash_name, method=method)
        self.ledger = ViolationLedger(penalty_policy)
        self._encryption_key: RsaPrivateKey = generate_rsa_keypair(
            encryption_key_bits, rng=self.rng)
        self._retained: dict[str, list[RetainedSubmission]] = {}
        #: Replay protection: nonce -> time the query was served, so old
        #: nonces can be evicted by :meth:`purge_expired`.
        self._seen_nonces: dict[bytes, float] = {}
        #: Operational audit trail: registrations, queries, submissions,
        #: incidents.  Event times use protocol timestamps where the
        #: message carries one, else 0.0 (registration has no clock).
        self.events = EventLog()
        #: The batch audit engine every PoA intake flows through.
        self.engine = AuditEngine(
            self.verifier,
            tee_key_lookup=lambda drone_id:
                self.drones.lookup(drone_id).tee_public_key,
            encryption_key=self._encryption_key,
            zones_provider=lambda: [r.zone for r in self.zones.all_zones()],
            workers=audit_workers, executor=audit_executor,
            screen_signatures=screen_signatures, events=self.events,
            telemetry=telemetry)
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        #: Manufacturer keys whose attestation quotes are accepted.
        self.trusted_manufacturers: list[RsaPublicKey] = []
        #: When True, drone registration requires a valid quote.
        self.require_attestation = False

    def trust_manufacturer(self, public_key: RsaPublicKey) -> None:
        """Accept attestation quotes signed by this manufacturer."""
        self.trusted_manufacturers.append(public_key)

    def _check_available(self, point: str, now: float | None = None) -> None:
        """Raise :class:`~repro.errors.ServiceUnavailableError` when an
        injected outage window covers this request; no-op otherwise."""
        if self.injector is not None:
            self.injector.maybe_fail(point, now=now,
                                     error=ServiceUnavailableError)

    @property
    def public_encryption_key(self) -> RsaPublicKey:
        """The key drones encrypt PoA payloads under."""
        return self._encryption_key.public_key

    # --- registration (steps 0-1) -------------------------------------------

    def register_drone(self, request: DroneRegistrationRequest) -> str:
        """Step 0: issue an ``id_drone`` for ``(D+, T+)``.

        With :attr:`require_attestation` set, the request must carry a
        manufacturer quote signed by a trusted key and binding exactly the
        submitted ``T+`` — otherwise any software key could masquerade as
        a TEE key.
        """
        self._check_available("auditor.register")
        if self.require_attestation:
            self._check_attestation(request)
        record = self.drones.register(request.operator_public_key,
                                      request.tee_public_key,
                                      request.operator_name)
        self.events.record(0.0, "drone_registered",
                           drone_id=record.drone_id,
                           operator=request.operator_name,
                           attested=request.quote is not None)
        return record.drone_id

    def _check_attestation(self, request: DroneRegistrationRequest) -> None:
        quote = request.quote
        if quote is None:
            raise RegistrationError(
                "registration requires a manufacturer attestation quote")
        if quote.tee_public_key != request.tee_public_key:
            raise RegistrationError(
                "attestation quote binds a different TEE key")
        if not any(quote.verify(key) for key in self.trusted_manufacturers):
            raise RegistrationError(
                "attestation quote not signed by a trusted manufacturer")

    def register_zone(self, request: ZoneRegistrationRequest) -> str:
        """Step 1: register a circular NFZ; returns its ``id_zone``."""
        record = self.zones.register(request.zone,
                                     owner_name=request.owner_name,
                                     proof_of_ownership=request.proof_of_ownership)
        self.events.record(0.0, "zone_registered", zone_id=record.zone_id,
                           owner=request.owner_name,
                           radius_m=request.zone.radius_m)
        return record.zone_id

    # --- zone query (steps 2-3) -------------------------------------------------

    def handle_zone_query(self, query: ZoneQuery,
                          now: float = 0.0) -> ZoneResponse:
        """Verify the signed nonce and return zones inside the rectangle.

        ``now`` timestamps the nonce for replay-window eviction (the query
        message itself carries no clock).

        Raises:
            RegistrationError: the querying drone is not registered.
            AuthenticationError: bad signature or replayed nonce.
        """
        self._check_available("auditor.zone_query", now)
        record = self.drones.lookup(query.drone_id)
        if query.nonce in self._seen_nonces:
            raise AuthenticationError("zone query nonce replayed")
        if not query.verify(record.operator_public_key):
            raise AuthenticationError("zone query signature invalid")
        self._seen_nonces[query.nonce] = now
        matches = self.zones.query_rect(query.corner_a, query.corner_b)
        self.events.record(now, "zone_query", drone_id=query.drone_id,
                           zones_returned=len(matches))
        return ZoneResponse(zones=tuple((r.zone_id, r.zone) for r in matches))

    # --- PoA intake (step 4) ------------------------------------------------------

    def receive_poa(self, submission: PoaSubmission,
                    now: float | None = None) -> VerificationReport:
        """Decrypt, verify, and retain one PoA submission.

        A thin wrapper over the batch path: the submission goes through
        the same :class:`AuditEngine` as :meth:`receive_poa_batch`, and
        intake errors (unknown drone) are re-raised exactly as before.
        """
        self._check_available("auditor.receive_poa", now)
        result = self.engine.audit_batch([submission], now=now,
                                         record_event=False)
        outcome = result.outcomes[0]
        if outcome.error is not None:
            raise outcome.error
        if outcome.poa is not None:
            self._retain_and_log(outcome.submission, outcome.poa,
                                 outcome.report, now)
        return outcome.report

    def receive_poa_batch(self, submissions: list[PoaSubmission],
                          now: float | None = None) -> BatchAuditResult:
        """Decrypt, verify, and retain many submissions as one batch.

        Unlike the single-submission API, intake failures do not raise:
        each :class:`repro.server.engine.AuditOutcome` carries either a
        report (retained and logged as usual) or the error.  The batch is
        recorded in the audit trail as one ``batch_audited`` event.
        """
        self._check_available("auditor.receive_poa", now)
        with get_tracer().span("server.receive_poa_batch",
                               batch_size=len(submissions)):
            result = self.engine.audit_batch(submissions, now=now)
            for outcome in result.outcomes:
                # Undecryptable submissions carry no verifiable evidence and
                # are reported but not retained (matching the single path).
                if outcome.report is not None and outcome.poa is not None:
                    self._retain_and_log(outcome.submission, outcome.poa,
                                         outcome.report, now)
        return result

    def bind_metrics(self, registry: MetricsRegistry | None = None,
                     ) -> MetricsRegistry:
        """Surface this server's accumulators through a metrics registry.

        Registers collect-time adapters for the engine's per-stage
        :class:`~repro.perf.meter.StageMetrics` (``audit.<stage>.*``) and
        the audit-trail :class:`~repro.sim.events.EventLog`
        (``server.events.*``); creates a fresh registry when none is
        given.  Existing accumulator callers are unaffected.
        """
        registry = registry if registry is not None else MetricsRegistry()
        register_stage_metrics(registry, self.engine.metrics, prefix="audit")
        register_event_log(registry, self.events, prefix="server.events")
        register_zone_index_stats(registry, self.engine.zone_index_stats,
                                  prefix="audit.zone_index")
        registry.gauge("audit.zone_index.builds",
                       fn=lambda: self.engine.zone_index_builds)
        registry.gauge("audit.zone_index.cache_hits",
                       fn=lambda: self.engine.zone_index_hits)
        registry.gauge("server.retained_submissions",
                       fn=lambda: sum(len(items) for items
                                      in self._retained.values()))
        registry.gauge("server.registered_drones",
                       fn=lambda: len(self.drones))
        return registry

    def attach_telemetry(self, hub: TelemetryHub) -> TelemetryHub:
        """Wire this server's live state into a streaming telemetry hub.

        The engine feeds per-intake windows on its own (via its
        ``telemetry`` handle); this registers the *stateful* side:
        gauges for cache sizes and registry counts, the zone-index cache
        hit ratio (absent until the cache has seen traffic), and a
        ``stages`` rollup section with the engine's per-stage timing
        means.  Safe to call once per hub; gauges are replaced.
        """
        self.engine.telemetry = hub
        hub.gauge("audit.payload_cache_size",
                  lambda: self.engine.payload_cache_size)
        hub.gauge("server.retained_submissions",
                  lambda: sum(len(items) for items
                              in self._retained.values()))
        hub.gauge("server.registered_drones", lambda: len(self.drones))

        def hit_ratio() -> float:
            lookups = (self.engine.zone_index_hits
                       + self.engine.zone_index_builds)
            return (self.engine.zone_index_hits / lookups) if lookups else 1.0

        hub.gauge("audit.zone_index.cache_hit_ratio", hit_ratio)

        def stage_section() -> dict[str, Any]:
            metrics = self.engine.metrics
            section = {}
            for stage in metrics.stages():
                runs = metrics.runs(stage)
                section[stage] = {
                    "runs": runs,
                    "mean_seconds": (metrics.total_seconds(stage) / runs
                                     if runs else 0.0),
                }
            return section

        hub.add_section("stages", stage_section)
        return hub

    def _retain_and_log(self, submission: PoaSubmission,
                        poa: ProofOfAlibi,
                        report: VerificationReport,
                        now: float | None) -> None:
        received_at = now if now is not None else submission.claimed_end
        self._retained.setdefault(submission.drone_id, []).append(
            RetainedSubmission(submission=submission, poa=poa,
                               report=report, received_at=received_at))
        self.events.record(received_at, "poa_received",
                           drone_id=submission.drone_id,
                           flight_id=submission.flight_id,
                           status=report.status.value,
                           samples=report.sample_count)

    def retained_for(self, drone_id: str) -> list[RetainedSubmission]:
        """Evidence currently retained for one drone."""
        return list(self._retained.get(drone_id, []))

    def purge_expired(self, now: float) -> int:
        """One retention sweep: drop expired evidence and stale nonces.

        Returns the number of retained submissions dropped.  The same
        sweep evicts zone-query nonces older than ``nonce_window_s`` so
        the replay-protection set stays bounded under sustained traffic.
        """
        dropped = 0
        for drone_id, items in list(self._retained.items()):
            kept = [s for s in items if now - s.received_at <= self.retention_s]
            dropped += len(items) - len(kept)
            if kept:
                self._retained[drone_id] = kept
            else:
                del self._retained[drone_id]
        self._seen_nonces = {
            nonce: seen_at for nonce, seen_at in self._seen_nonces.items()
            if now - seen_at <= self.nonce_window_s}
        return dropped

    # --- incident adjudication ------------------------------------------------------

    def handle_incident(self, report: IncidentReport) -> ViolationFinding:
        """Adjudicate a Zone Owner's accusation against retained evidence.

        The burden of proof is on the operator: no covering PoA, a PoA that
        failed verification, or a PoA whose bracketing pair cannot rule out
        entering the accusing zone all yield a violation finding.
        """
        zone_record = self.zones.lookup(report.zone_id)
        if report.drone_id not in self.drones:
            raise RegistrationError(f"unknown drone id {report.drone_id!r}")

        covering = [s for s in self._retained.get(report.drone_id, [])
                    if s.submission.claimed_start - 1.0 <= report.incident_time
                    <= s.submission.claimed_end + 1.0]
        if not covering:
            finding = ViolationFinding(
                drone_id=report.drone_id, zone_id=report.zone_id,
                incident_time=report.incident_time, violation=True,
                kind=ViolationKind.NO_POA,
                detail="no retained PoA covers the incident time")
            self.ledger.adjudicate(finding)
            self._record_incident(report, finding)
            return finding

        # Any covering submission that proves alibi for the accused zone at
        # the incident time clears the drone.
        best_detail = "all covering PoAs failed verification"
        best_kind = ViolationKind.MALFORMED_POA
        for retained in covering:
            status = retained.report.status
            if status not in (VerificationStatus.ACCEPTED,
                              VerificationStatus.INSUFFICIENT):
                best_kind = _STATUS_TO_KIND[status]
                best_detail = f"covering PoA was rejected: {status.value}"
                continue
            verdict = self._alibi_at(retained.poa, zone_record.zone,
                                     report.incident_time)
            if verdict:
                finding = ViolationFinding(
                    drone_id=report.drone_id, zone_id=report.zone_id,
                    incident_time=report.incident_time, violation=False,
                    detail="PoA proves the drone could not enter the zone")
                self._record_incident(report, finding)
                return finding
            best_kind = ViolationKind.INSUFFICIENT_ALIBI
            best_detail = ("PoA cannot rule out zone entrance at the "
                           "incident time")

        finding = ViolationFinding(
            drone_id=report.drone_id, zone_id=report.zone_id,
            incident_time=report.incident_time, violation=True,
            kind=best_kind, detail=best_detail)
        self.ledger.adjudicate(finding)
        self._record_incident(report, finding)
        return finding

    def _record_incident(self, report: IncidentReport,
                         finding: ViolationFinding) -> None:
        self.events.record(
            report.incident_time, "incident_adjudicated",
            drone_id=report.drone_id, zone_id=report.zone_id,
            violation=finding.violation,
            violation_kind=finding.kind.value if finding.kind else None)

    def _alibi_at(self, poa: ProofOfAlibi, zone: NoFlyZone,
                  incident_time: float) -> bool:
        """Whether the PoA pair bracketing the instant clears the zone."""
        samples = [entry.sample for entry in poa]
        for a, b in zip(samples, samples[1:]):
            if a.t <= incident_time <= b.t:
                return pair_is_sufficient(a, b, [zone], self.frame,
                                          self.vmax_mps, self.verifier.method)
        return False
