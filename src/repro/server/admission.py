"""Pluggable admission scheduling for the auditor service intake.

The original back-pressure layer was a single global :class:`TokenBucket`
in front of the intake queue.  That guards the *auditor* but not the
*fleet*: one flooding drone drains the shared bucket and honest
submitters behind it starve — exactly the DoS shape a broadcast
Remote-ID setting invites.  This module generalises the guard into an
:class:`AdmissionScheduler` composing per-drone, per-region, and global
token buckets under a selectable policy:

* ``fifo`` — the legacy behaviour: one global bucket, order-of-arrival.
  A flooder and an honest drone are indistinguishable.
* ``fair-share`` — a per-drone bucket (and optionally a per-region
  bucket) in front of the global one.  A flooder exhausts only its own
  allowance; honest drones keep their slice of the global rate.
* ``hybrid`` — fair-share plus a decaying per-drone *penalty* score fed
  by the service's audit outcomes: drones with recently rejected or
  deduplicated submissions pay more tokens per admit, so repeat
  offenders are deprioritised before they reach the queue at all.

Everything runs on caller-supplied virtual ``now`` values (never a wall
clock), so a sim-clock-driven fleet run admits and denies the same
submissions on every rerun — the property the fleet determinism suite
(``tests/fleetsim/``) pins down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

POLICY_FIFO = "fifo"
POLICY_FAIR_SHARE = "fair-share"
POLICY_HYBRID = "hybrid"
POLICIES = (POLICY_FIFO, POLICY_FAIR_SHARE, POLICY_HYBRID)

#: Denial reasons, as they appear in stats and ``admission.denied.*``
#: telemetry counters.
DENY_GLOBAL = "global"
DENY_DRONE = "drone"
DENY_REGION = "region"
DENY_PENALTY = "penalty"

#: Bound on lazily-created per-drone/per-region buckets; beyond it the
#: least-recently-used entry is evicted (its drone restarts with a full
#: bucket, which only ever errs toward admitting).
DEFAULT_MAX_TRACKED = 100_000


class TokenBucket:
    """A deterministic token-bucket admission guard on a virtual clock.

    Refill is computed from the caller-supplied ``now`` (sim-clock
    seconds), never a wall clock, so the same arrival sequence sheds the
    same submissions on every run.
    """

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"admission rate must be > 0, got {rate_per_s}")
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self._tokens = self.burst
        self._last = None

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; refills from elapsed time.

        ``cost`` defaults to one token per admit; the hybrid policy
        charges penalised drones more, which divides their effective
        rate without a separate starvation queue.
        """
        if self._last is not None and now > self._last:
            self._tokens = min(self.burst,
                               self._tokens
                               + (now - self._last) * self.rate_per_s)
        self._last = now if self._last is None else max(self._last, now)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens currently available (diagnostics only)."""
        return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """One scheduler verdict for one submission attempt."""

    admitted: bool
    #: Denial reason (:data:`DENY_GLOBAL` etc.); None when admitted.
    reason: str | None = None


@dataclass
class AdmissionStats:
    """Monotone admit/deny accounting for one scheduler lifetime."""

    admitted: int = 0
    denied: int = 0
    denied_by: dict[str, int] = field(default_factory=dict)

    def record(self, decision: AdmissionDecision) -> None:
        """Fold one decision into the counters."""
        if decision.admitted:
            self.admitted += 1
        else:
            self.denied += 1
            reason = decision.reason or DENY_GLOBAL
            self.denied_by[reason] = self.denied_by.get(reason, 0) + 1

    def to_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {"admitted": self.admitted, "denied": self.denied,
                "denied_by": dict(sorted(self.denied_by.items()))}


class AdmissionScheduler:
    """Composes token-bucket guards under a fairness policy.

    Args:
        policy: one of :data:`POLICIES`.
        rate_per_s / burst: the global bucket (every policy has one —
            it is the auditor's aggregate capacity).
        drone_rate_per_s / drone_burst: per-drone bucket (fair-share and
            hybrid).  Defaults carve each drone an eighth of the global
            rate with a small burst, so a handful of drones can't
            monopolise the aggregate.
        region_rate_per_s / region_burst: optional per-region bucket in
            front of the global one; ``None`` rate disables the layer.
        penalty_halflife_s: decay half-life of the hybrid penalty score.
        penalty_cap: bound on the extra per-admit token cost a penalised
            drone can accrue (keeps one bad streak from banning a drone
            forever — the score decays back under the cap).
        max_tracked: bound on lazily-created per-key buckets.

    Buckets are checked drone -> region -> global; the reason reported
    is the first layer that denies.  Layers are only charged once the
    preceding layers admit, so a drone-level denial never burns global
    tokens (the whole point: a flooder's traffic must not spend the
    budget honest drones need).
    """

    def __init__(self, policy: str = POLICY_FAIR_SHARE, *,
                 rate_per_s: float, burst: float = 32.0,
                 drone_rate_per_s: float | None = None,
                 drone_burst: float | None = None,
                 region_rate_per_s: float | None = None,
                 region_burst: float | None = None,
                 penalty_halflife_s: float = 30.0,
                 penalty_cap: float = 8.0,
                 max_tracked: int = DEFAULT_MAX_TRACKED):
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {policy!r}; "
                f"expected one of {POLICIES}")
        if penalty_halflife_s <= 0:
            raise ConfigurationError("penalty half-life must be > 0 s")
        if penalty_cap < 0:
            raise ConfigurationError("penalty cap must be >= 0")
        if max_tracked < 1:
            raise ConfigurationError("max_tracked must be >= 1")
        self.policy = policy
        self.stats = AdmissionStats()
        self._global = TokenBucket(rate_per_s, burst)
        self._drone_rate = (drone_rate_per_s if drone_rate_per_s is not None
                            else max(rate_per_s / 8.0, 1e-9))
        self._drone_burst = (drone_burst if drone_burst is not None
                             else max(4.0, burst / 4.0))
        self._region_rate = region_rate_per_s
        self._region_burst = (region_burst if region_burst is not None
                              else burst)
        self.penalty_halflife_s = float(penalty_halflife_s)
        self.penalty_cap = float(penalty_cap)
        self.max_tracked = int(max_tracked)
        self._drone_buckets: dict[str, TokenBucket] = {}
        self._region_buckets: dict[str, TokenBucket] = {}
        #: drone_id -> (score, last_update) decaying penalty ledger.
        self._penalties: dict[str, tuple[float, float]] = {}

    # --- per-key bucket tables --------------------------------------------

    def _bucket_for(self, table: dict[str, TokenBucket], key: str,
                    rate: float, burst: float) -> TokenBucket:
        bucket = table.pop(key, None)
        if bucket is None:
            bucket = TokenBucket(rate, burst)
            while len(table) >= self.max_tracked:
                table.pop(next(iter(table)))
        table[key] = bucket  # re-insert: dict order is the LRU order
        return bucket

    # --- penalty ledger ----------------------------------------------------

    def penalty(self, drone_id: str, now: float) -> float:
        """The drone's decayed penalty score at ``now``."""
        entry = self._penalties.get(drone_id)
        if entry is None:
            return 0.0
        score, at = entry
        if now > at:
            score *= math.pow(0.5, (now - at) / self.penalty_halflife_s)
        return min(score, self.penalty_cap)

    def note_rejection(self, drone_id: str, now: float,
                       weight: float = 1.0) -> None:
        """Feed one bad outcome (rejected verdict, duplicate upload) back.

        Only the hybrid policy *acts* on the score, but it is tracked
        under every policy so operators can flip a running service to
        ``hybrid`` with history already in place.
        """
        score = self.penalty(drone_id, now) + weight
        if len(self._penalties) >= self.max_tracked \
                and drone_id not in self._penalties:
            self._penalties.pop(next(iter(self._penalties)))
        self._penalties[drone_id] = (min(score, self.penalty_cap), now)

    # --- the decision -------------------------------------------------------

    def admit(self, drone_id: str, region: str, now: float
              ) -> AdmissionDecision:
        """Decide one submission; updates stats and bucket state."""
        decision = self._decide(drone_id, region, now)
        self.stats.record(decision)
        return decision

    def _decide(self, drone_id: str, region: str,
                now: float) -> AdmissionDecision:
        if self.policy == POLICY_FIFO:
            if not self._global.try_take(now):
                return AdmissionDecision(False, DENY_GLOBAL)
            return AdmissionDecision(True)
        cost = 1.0
        penalised = False
        if self.policy == POLICY_HYBRID:
            score = self.penalty(drone_id, now)
            if score > 0.0:
                cost += score
                penalised = True
        drone_bucket = self._bucket_for(self._drone_buckets, drone_id,
                                        self._drone_rate, self._drone_burst)
        if not drone_bucket.try_take(now, cost):
            return AdmissionDecision(
                False, DENY_PENALTY if penalised else DENY_DRONE)
        if self._region_rate is not None and region:
            region_bucket = self._bucket_for(
                self._region_buckets, region,
                self._region_rate, self._region_burst)
            if not region_bucket.try_take(now):
                return AdmissionDecision(False, DENY_REGION)
        if not self._global.try_take(now):
            return AdmissionDecision(False, DENY_GLOBAL)
        return AdmissionDecision(True)


def build_scheduler(policy: str | None, *,
                    rate_per_s: float | None,
                    burst: float = 32.0,
                    **kwargs) -> AdmissionScheduler | None:
    """Factory the CLI and fleet simulator share.

    ``policy`` of ``None``/``"none"`` (or a missing rate) disables
    admission control entirely — the queue bound is then the only
    back-pressure, which is exactly the "no-guard" arm the fleet
    benchmark measures the scheduler's win against.
    """
    if policy in (None, "none") or rate_per_s is None:
        return None
    return AdmissionScheduler(policy, rate_per_s=rate_per_s, burst=burst,
                              **kwargs)
