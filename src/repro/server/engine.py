"""The batch audit engine: the Auditor's high-throughput verification core.

The paper's Auditor (§IV-C2) verifies one PoA at a time; a production
service fields submissions from millions of drones.  :class:`AuditEngine`
is the throughput-scaled path every intake flows through:

* **Fan-out** — the CPU-bound crypto work (RSAES decryption + signature
  checking) for each submission is dispatched across a
  :mod:`concurrent.futures` pool.  ``workers <= 1`` runs everything inline
  in submission order, which is the deterministic mode the tests use.
* **Screening** — same-key signature batches are first checked with
  Bellare–Garay–Rabin screening (one public-key exponentiation per PoA
  instead of one per sample, :func:`repro.crypto.pkcs1.screen_pkcs1_v15`);
  any failure falls back to per-signature verification so rejected
  reports still carry exact indices.
* **Caching** — decrypted payloads are memoized by ciphertext (resubmitted
  or replayed records cost nothing the second time), per-drone ``T+``
  lookups are cached, local-frame projections are memoized across samples
  and submissions, and the zone set is projected + spatially indexed once
  and shared across every batch against the same zone set
  (:meth:`AuditEngine.zone_index_for`).
* **Accounting** — per-stage wall time flows into a shared
  :class:`repro.perf.meter.StageMetrics`, and each batch records a
  ``batch_audited`` event (batch size, worker count, wall time) into the
  attached :class:`repro.sim.events.EventLog`.

The verification semantics are exactly the staged pipeline's
(:mod:`repro.core.verification`): reports produced here are identical to
what ``PoaVerifier.verify`` returns for the same inputs.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.protocol import PoaSubmission
from repro.core.verification import (
    PoaVerifier,
    RejectionReason,
    VerificationPipeline,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.pkcs1 import decrypt_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.schemes import SCHEME_RSA, get_scheme
from repro.errors import AliDroneError, ConfigurationError, EncryptionError
from repro.geo.proximity import ZoneIndexStats, ZoneProximityIndex
from repro.obs.hub import TelemetryHub
from repro.obs.trace import get_tracer
from repro.perf.meter import StageMetrics
from repro.sim.events import EventLog

#: Decrypted-payload cache bound: ~50k records ≈ a few MB of payloads.
DEFAULT_PAYLOAD_CACHE_MAX = 50_000
#: Projection memo bound: one entry per distinct (lat, lon) seen.
DEFAULT_POSITION_MEMO_MAX = 200_000
#: Zone-index cache bound: distinct zone *sets* in rotation are few (the
#: national database plus a handful of regional slices).
DEFAULT_ZONE_INDEX_CACHE_MAX = 8


class _BoundedCache(dict):
    """A bounded least-recently-used mapping (touch-on-hit).

    Reads through :meth:`get` refresh recency, so entries a fleet keeps
    coming back to — a hot drone's decrypted records, frequently revisited
    coordinates — survive sustained churn from one-shot keys; the earlier
    insertion-order eviction flushed exactly those hot entries once enough
    cold traffic had passed through.  Writes (``[]`` or the historical
    :meth:`insert`) evict the least-recently-used entry once
    ``max_entries`` is reached; ``on_evict`` lets the owner keep a reverse
    index in lockstep with evictions.
    """

    def __init__(self, max_entries: int, on_evict=None):
        super().__init__()
        self.max_entries = int(max_entries)
        self.on_evict = on_evict

    def get(self, key, default=None):
        try:
            value = super().pop(key)
        except KeyError:
            return default
        super().__setitem__(key, value)
        return value

    def __setitem__(self, key, value) -> None:
        if key in self:
            super().pop(key)
        else:
            while self and len(self) >= self.max_entries:
                oldest = next(iter(self))
                evicted = super().pop(oldest)
                if self.on_evict is not None:
                    self.on_evict(oldest, evicted)
        super().__setitem__(key, value)

    def insert(self, key, value) -> None:
        self[key] = value


# --- pool task functions (top-level so ProcessPoolExecutor can pickle) -----

def _signature_verdict(tee_public_key: RsaPublicKey,
                       pairs: Sequence[tuple[bytes, bytes]],
                       hash_name: str, screen: bool,
                       scheme_id: str = SCHEME_RSA,
                       finalizer: bytes = b"") -> list[int]:
    """Indices failing flight authentication, screening as the fast path.

    Screening is scheme-defined: per-sample RSA uses Bellare–Garay–Rabin
    batch screening; flight-level schemes (batch digest, hash-chain) have
    no separate fast path because their verify is already O(1) RSA.
    """
    scheme = get_scheme(scheme_id)
    if screen and scheme.screen(tee_public_key, pairs, finalizer,
                                hash_name) is True:
        return []
    return scheme.verify(tee_public_key, pairs, finalizer, hash_name)


def _submission_crypto_task(encryption_key: RsaPrivateKey | None,
                            records: Sequence[tuple[bytes | None, bytes, bytes]],
                            tee_public_key: RsaPublicKey,
                            hash_name: str, screen: bool,
                            scheme_id: str = SCHEME_RSA,
                            finalizer: bytes = b""):
    """Decrypt one submission's records and authenticate its flight.

    ``records`` entries are ``(cached_payload, ciphertext, auth_blob)``;
    a non-None cached payload skips decryption.  Returns
    ``(payloads, bad_indices, decrypt_error, seconds)`` where exactly one
    of ``payloads``/``decrypt_error`` is set.
    """
    start = time.perf_counter()
    payloads: list[bytes] = []
    try:
        for cached, ciphertext, _signature in records:
            if cached is not None:
                payloads.append(cached)
            else:
                payloads.append(decrypt_pkcs1_v15(encryption_key, ciphertext))
    except EncryptionError as exc:
        return None, [], str(exc), time.perf_counter() - start
    pairs = [(payload, signature)
             for payload, (_c, _ct, signature) in zip(payloads, records)]
    bad = _signature_verdict(tee_public_key, pairs, hash_name, screen,
                             scheme_id, finalizer)
    return payloads, bad, None, time.perf_counter() - start


def _poa_crypto_task(tee_public_key: RsaPublicKey,
                     pairs: Sequence[tuple[bytes, bytes]],
                     hash_name: str, screen: bool,
                     scheme_id: str = SCHEME_RSA,
                     finalizer: bytes = b""):
    """Authentication verdict for an already-decrypted PoA."""
    start = time.perf_counter()
    bad = _signature_verdict(tee_public_key, pairs, hash_name, screen,
                             scheme_id, finalizer)
    return bad, time.perf_counter() - start


# --- results ----------------------------------------------------------------

@dataclass
class AuditOutcome:
    """What the engine concluded about one submission."""

    submission: PoaSubmission
    report: VerificationReport | None = None
    poa: ProofOfAlibi | None = None
    #: Intake-level failure (e.g. unknown drone id); the single-submission
    #: API re-raises it, the batch API surfaces it alongside the others.
    error: AliDroneError | None = None

    @property
    def ok(self) -> bool:
        """Whether intake produced a report (of any verification status)."""
        return self.report is not None


@dataclass
class BatchAuditResult:
    """One ``audit_batch`` run: outcomes plus throughput accounting."""

    outcomes: list[AuditOutcome]
    wall_time_s: float
    workers: int
    batch_size: int = 0

    def __post_init__(self) -> None:
        if not self.batch_size:
            self.batch_size = len(self.outcomes)

    @property
    def reports(self) -> list[VerificationReport | None]:
        """Per-submission reports (None where intake errored)."""
        return [o.report for o in self.outcomes]

    @property
    def submissions_per_second(self) -> float:
        """Throughput of this batch."""
        if self.wall_time_s <= 0.0:
            return float("inf")
        return self.batch_size / self.wall_time_s


class AuditEngine:
    """Verifies many PoA submissions as one batch.

    Args:
        verifier: the :class:`PoaVerifier` carrying frame/speed/method
            parameters (its per-stage pipeline is reused unchanged).
        tee_key_lookup: maps ``drone_id`` to the registered ``T+``; must
            raise :class:`repro.errors.RegistrationError` for unknown ids.
            Results are cached per drone.
        encryption_key: the Auditor's RSAES private key (None when the
            engine only audits pre-decrypted PoAs).
        zones_provider: yields the current zone set; called once per batch.
        workers: size of the crypto fan-out pool.  ``1`` (default) runs
            inline — fully deterministic, no pool at all.
        executor: ``"thread"`` (default; cheap, good enough because the
            hot loop is dominated by a handful of long native big-int
            operations) or ``"process"`` (true multi-core scaling for
            large batches on multi-core hosts).
        screen_signatures: use batch screening as the signature fast path.
            Screening accepts only payload sets that were genuinely signed
            by ``T+`` (see :func:`repro.crypto.pkcs1.screen_pkcs1_v15` for
            the exact guarantee); set False to force per-sample checks.
        events: optional audit-trail log receiving ``batch_audited``.
        metrics: optional shared :class:`StageMetrics`; one is created
            when omitted and exposed as :attr:`metrics`.
        telemetry: optional :class:`repro.obs.hub.TelemetryHub`; when
            attached, every audited submission feeds the streaming
            windows via :meth:`TelemetryHub.record_audit` (intake
            latency, per-status counts, per-reason rejections).  The
            disabled path is a single ``None`` check.
    """

    def __init__(self, verifier: PoaVerifier,
                 tee_key_lookup: Callable[[str], RsaPublicKey],
                 encryption_key: RsaPrivateKey | None = None,
                 zones_provider: Callable[[], Sequence[NoFlyZone]] | None = None,
                 *,
                 workers: int = 1,
                 executor: str = "thread",
                 screen_signatures: bool = True,
                 events: EventLog | None = None,
                 metrics: StageMetrics | None = None,
                 telemetry: TelemetryHub | None = None,
                 payload_cache_max: int = DEFAULT_PAYLOAD_CACHE_MAX,
                 position_memo_max: int = DEFAULT_POSITION_MEMO_MAX):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if executor not in ("thread", "process"):
            raise ConfigurationError(
                f"executor must be 'thread' or 'process', got {executor!r}")
        self.verifier = verifier
        self.tee_key_lookup = tee_key_lookup
        self.encryption_key = encryption_key
        self.zones_provider = zones_provider or (lambda: ())
        self.workers = int(workers)
        self.executor_kind = executor
        self.screen_signatures = bool(screen_signatures)
        self.events = events
        self.metrics = metrics if metrics is not None else StageMetrics()
        self.telemetry = telemetry
        self._tee_key_cache: dict[str, RsaPublicKey] = {}
        self._payload_cache = _BoundedCache(payload_cache_max,
                                            on_evict=self._payload_evicted)
        self._position_memo = _BoundedCache(position_memo_max)
        self._zone_index_cache = _BoundedCache(DEFAULT_ZONE_INDEX_CACHE_MAX)
        self._zone_index_stats = ZoneIndexStats()
        #: Reverse indices so :meth:`invalidate_drone` can purge exactly
        #: one drone's decrypted payloads; kept in lockstep with the
        #: payload cache via its eviction hook.
        self._payload_owner: dict[bytes, str] = {}
        self._drone_payload_keys: dict[str, set[bytes]] = {}
        self.zone_index_builds = 0
        self.zone_index_hits = 0
        self.payload_cache_hits = 0
        self.payload_cache_misses = 0

    # --- caches -------------------------------------------------------------

    def tee_key_for(self, drone_id: str) -> RsaPublicKey:
        """The registered ``T+`` for a drone, cached per drone id."""
        key = self._tee_key_cache.get(drone_id)
        if key is None:
            key = self.tee_key_lookup(drone_id)
            self._tee_key_cache[drone_id] = key
        return key

    def invalidate_drone(self, drone_id: str) -> None:
        """Forget a drone: its cached ``T+`` and its decrypted payloads.

        A drone that re-registers (new keys through the durable store)
        must not keep serving payloads decrypted and cache-warmed under
        its previous identity — a stale hit would skip decryption against
        the ciphertexts of a record set that no longer authenticates.
        """
        self._tee_key_cache.pop(drone_id, None)
        for ciphertext in self._drone_payload_keys.pop(drone_id, ()):
            self._payload_owner.pop(ciphertext, None)
            dict.pop(self._payload_cache, ciphertext, None)

    def _payload_evicted(self, ciphertext, _payload) -> None:
        """Cache-eviction hook: drop the evicted key's reverse index."""
        drone_id = self._payload_owner.pop(ciphertext, None)
        if drone_id is not None:
            keys = self._drone_payload_keys.get(drone_id)
            if keys is not None:
                keys.discard(ciphertext)
                if not keys:
                    del self._drone_payload_keys[drone_id]

    @property
    def payload_cache_size(self) -> int:
        """Number of decrypted records currently memoized."""
        return len(self._payload_cache)

    @property
    def position_memo_size(self) -> int:
        """Number of distinct coordinates whose projection is memoized."""
        return len(self._position_memo)

    @property
    def zone_index_stats(self) -> ZoneIndexStats:
        """Pruning counters aggregated over every batch's zone queries."""
        return self._zone_index_stats

    def zone_index_for(self, zones: Sequence[NoFlyZone]) -> ZoneProximityIndex:
        """The proximity index for a zone set, shared across batches.

        Keyed by the zone tuple itself, so successive batches against the
        same zone database reuse one index (projection and grid build paid
        once); every cached index feeds the engine-wide
        :attr:`zone_index_stats` accumulator.
        """
        key = tuple(zones)
        index = self._zone_index_cache.get(key)
        if index is None:
            index = ZoneProximityIndex(zones, self.verifier.frame,
                                       stats=self._zone_index_stats)
            self._zone_index_cache.insert(key, index)
            self.zone_index_builds += 1
        else:
            self.zone_index_hits += 1
        return index

    # --- fan-out helpers ----------------------------------------------------

    def _make_executor(self) -> Executor:
        if self.executor_kind == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers)

    def _map_tasks(self, fn: Callable, argument_lists: Sequence[tuple]):
        """Run ``fn(*args)`` per entry, inline or across the pool, in order."""
        if self.workers <= 1 or len(argument_lists) <= 1:
            return [fn(*args) for args in argument_lists]
        with self._make_executor() as pool:
            return list(pool.map(fn, *zip(*argument_lists)))

    # --- telemetry ----------------------------------------------------------

    def _record_telemetry(self, seconds: float, report: VerificationReport,
                          now: float) -> None:
        """Feed one audited submission into the attached telemetry hub."""
        self.telemetry.record_audit(
            seconds=seconds, status=report.status.value,
            reason=report.reason.value if report.reason is not None else None,
            samples=report.sample_count, now=now)

    # --- the batch paths ----------------------------------------------------

    def audit_batch(self, submissions: Sequence[PoaSubmission],
                    now: float | None = None,
                    record_event: bool = True) -> BatchAuditResult:
        """Decrypt and verify many submissions; never raises per-item.

        Per-submission intake failures (unknown drone, undecryptable
        records) are captured in each :class:`AuditOutcome` — an error in
        one submission cannot poison the rest of the batch.
        """
        start = time.perf_counter()
        submissions = list(submissions)
        outcomes: list[AuditOutcome] = [AuditOutcome(submission=s)
                                        for s in submissions]
        tracer = get_tracer()
        batch_span = tracer.start_span(
            "audit_batch", attributes={"batch_size": len(submissions),
                                       "workers": self.workers,
                                       "executor": self.executor_kind})
        try:
            return self._audit_batch_traced(submissions, outcomes, start,
                                            now, record_event, tracer,
                                            batch_span)
        finally:
            tracer.end_span(batch_span)

    def _audit_batch_traced(self, submissions, outcomes, start, now,
                            record_event, tracer, batch_span
                            ) -> BatchAuditResult:
        # Phase 0 (inline): resolve T+ per drone; registry errors become
        # per-outcome errors before any crypto is spent on the submission.
        task_args = []
        task_slots = []
        for slot, submission in enumerate(submissions):
            try:
                tee_key = self.tee_key_for(submission.drone_id)
            except AliDroneError as exc:
                outcomes[slot].error = exc
                continue
            records = []
            for record in submission.records:
                cached = self._payload_cache.get(record.ciphertext)
                if cached is not None:
                    self.payload_cache_hits += 1
                else:
                    self.payload_cache_misses += 1
                records.append((cached, record.ciphertext, record.signature))
            task_args.append((self.encryption_key, records, tee_key,
                              self.verifier.hash_name,
                              self.screen_signatures,
                              submission.scheme, submission.finalizer))
            task_slots.append(slot)

        # Phase 1 (pool): the CPU-bound decrypt + signature work.
        results = self._map_tasks(_submission_crypto_task, task_args)

        # Phase 2 (inline): feed results through the shared staged pipeline.
        zones = list(self.zones_provider())
        zone_index = self.zone_index_for(zones)
        zone_circles = zone_index.circles
        telemetry_now = now if now is not None else 0.0
        for (payloads, bad, decrypt_error, seconds), slot, args in zip(
                results, task_slots, task_args):
            submission = submissions[slot]
            self.metrics.record("crypto", seconds, len(submission.records))
            with tracer.span("audit.submission",
                             drone_id=submission.drone_id,
                             flight_id=submission.flight_id) as sub_span:
                # The crypto ran off-thread in phase 1; re-attach its wall
                # time as a child span (the span-level analogue of
                # StageMetrics.merge over per-worker accumulators).
                tracer.record_span(
                    "crypto", seconds, parent=sub_span,
                    attributes={"records": len(submission.records),
                                "pooled": self.workers > 1})
                if decrypt_error is not None:
                    sub_span.set_attribute("status", "malformed")
                    report = VerificationReport(
                        status=VerificationStatus.REJECTED_MALFORMED,
                        sample_count=len(submission.records),
                        message=f"PoA decryption failed: {decrypt_error}",
                        reason=RejectionReason.DECRYPT_FAILED)
                    outcomes[slot].report = report
                    if self.telemetry is not None:
                        self._record_telemetry(seconds, report,
                                               telemetry_now)
                    continue
                for (_cached, ciphertext, _sig), payload in zip(args[1],
                                                                payloads):
                    self._payload_cache.insert(ciphertext, payload)
                    if ciphertext not in self._payload_owner:
                        self._payload_owner[ciphertext] = submission.drone_id
                        self._drone_payload_keys.setdefault(
                            submission.drone_id, set()).add(ciphertext)
                poa = ProofOfAlibi(
                    (SignedSample(payload=payload, signature=record.signature,
                                  scheme=submission.scheme)
                     for payload, record in zip(payloads, submission.records)),
                    scheme=submission.scheme,
                    finalizer=submission.finalizer)
                ctx = self.verifier.context(
                    poa, args[2], zones,
                    position_memo=self._position_memo,
                    zone_circles=zone_circles,
                    zone_index=zone_index,
                    bad_signature_indices=list(bad))
                pipeline_start = (time.perf_counter()
                                  if self.telemetry is not None else 0.0)
                report = VerificationPipeline(
                    metrics=self.metrics).run(ctx)
                sub_span.set_attribute("status", report.status.value)
                outcomes[slot].poa = poa
                outcomes[slot].report = report
                if self.telemetry is not None:
                    intake = seconds + time.perf_counter() - pipeline_start
                    self._record_telemetry(intake, report, telemetry_now)

        wall = time.perf_counter() - start
        batch_span.set_attribute("wall_time_s", wall)
        result = BatchAuditResult(outcomes=outcomes, wall_time_s=wall,
                                  workers=self.workers)
        if record_event and self.events is not None:
            self.events.record(now if now is not None else 0.0,
                               "batch_audited",
                               batch_size=result.batch_size,
                               workers=self.workers,
                               wall_time_s=wall)
        return result

    def audit_poas(self,
                   items: Iterable[tuple[ProofOfAlibi, RsaPublicKey]],
                   zones: Sequence[NoFlyZone],
                   now: float = 0.0,
                   ) -> list[VerificationReport]:
        """Verify already-decrypted PoAs as one batch.

        This is the pure verification hot path (no RSAES layer): the
        signature stage fans out / screens exactly as in
        :meth:`audit_batch`, and geometry caches are shared across items.
        Reports are identical to ``PoaVerifier.verify`` per item.
        ``now`` stamps the attached telemetry hub's windows (unused when
        no hub is attached).
        """
        items = list(items)
        task_args = [
            (tee_key, [(entry.payload, entry.signature) for entry in poa],
             self.verifier.hash_name, self.screen_signatures,
             poa.scheme, poa.finalizer)
            for poa, tee_key in items]
        tracer = get_tracer()
        with tracer.span("audit_poas", batch_size=len(items),
                         workers=self.workers):
            results = self._map_tasks(_poa_crypto_task, task_args)
            zones = list(zones)
            zone_index = self.zone_index_for(zones)
            zone_circles = zone_index.circles
            reports = []
            for (bad, seconds), (poa, tee_key) in zip(results, items):
                self.metrics.record("crypto", seconds, len(poa))
                with tracer.span("audit.submission",
                                 samples=len(poa)) as sub_span:
                    tracer.record_span(
                        "crypto", seconds, parent=sub_span,
                        attributes={"records": len(poa),
                                    "pooled": self.workers > 1})
                    ctx = self.verifier.context(
                        poa, tee_key, zones,
                        position_memo=self._position_memo,
                        zone_circles=zone_circles,
                        zone_index=zone_index,
                        bad_signature_indices=list(bad))
                    pipeline_start = (time.perf_counter()
                                      if self.telemetry is not None else 0.0)
                    report = VerificationPipeline(
                        metrics=self.metrics).run(ctx)
                    sub_span.set_attribute("status", report.status.value)
                    reports.append(report)
                    if self.telemetry is not None:
                        intake = seconds + time.perf_counter() - pipeline_start
                        self._record_telemetry(intake, report, now)
        return reports
