"""The persistent auditor service: sharded, durable, back-pressured intake.

:class:`AuditorService` is the fleet-scale successor of driving
:class:`repro.server.engine.AuditEngine` by hand.  It layers, bottom up:

* **Durability** — every accepted submission lands in a
  :class:`repro.server.store.FlightStore` (SQLite/WAL) *before* it is
  queued for audit, and every verdict is written back as it is produced.
  A crash between the two leaves the row unaudited;
  :meth:`AuditorService.recover` replays exactly those rows on restart,
  producing verdicts bit-identical to an uninterrupted run.  Re-submitted
  uploads dedup onto the stored row instead of re-entering the queue.

* **Back-pressure** — intake is a bounded queue behind a pluggable
  :class:`repro.server.admission.AdmissionScheduler` (per-drone /
  per-region token buckets under fifo, fair-share, or hybrid policies).
  A submission is *shed* (with an explicit :class:`IntakeDecision` the
  caller can surface to the drone as "retry later") when the scheduler
  denies it or the queue is full; nothing is silently dropped
  mid-pipeline.  The guards run on caller-supplied ``now`` values, so a
  sim-clock-driven run sheds deterministically.

* **Sharding** — audit work is partitioned across ``shards`` worker
  engines keyed by zone-region (falling back to drone id), each shard
  owning its *own* payload / projection / zone-index caches.  At fleet
  scale a single engine's bounded caches thrash: millions of drones push
  one another's records out before they are ever re-hit.  Partitioning
  keeps each shard's working set inside its cache bound, so the warm
  path (decryption skipped, screening fast path) survives key churn —
  this is where the measured multi-x throughput win of
  ``benchmarks/bench_service.py`` comes from.

Verification semantics are untouched: every submission still flows
through an :class:`AuditEngine` and therefore the staged pipeline, so
service verdicts stay decision-identical to the reference verifier (the
conformance harness replays them straight out of the store).
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.protocol import DroneRegistrationRequest, PoaSubmission
from repro.core.sufficiency import Method
from repro.core.verification import PoaVerifier
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.errors import ConfigurationError
from repro.geo.geodesy import LocalFrame
from repro.obs.hub import TelemetryHub
from repro.perf.meter import StageMetrics
from repro.server.admission import (AdmissionScheduler, POLICY_FIFO,
                                    TokenBucket)
from repro.server.database import NfzDatabase
from repro.server.engine import AuditEngine, AuditOutcome
from repro.server.store import FlightStore, StoredSubmission, StoredVerdict
from repro.sim.events import EventLog
from repro.units import FAA_MAX_SPEED_MPS

#: Default intake bound: enough to absorb a burst, small enough that a
#: stalled audit loop pushes back on producers instead of eating memory.
DEFAULT_QUEUE_CAPACITY = 4096

#: Default per-shard decrypted-payload cache bound.  Deliberately much
#: smaller than the engine default: the shard layer exists precisely so
#: each worker only needs to hold its own partition's working set.
DEFAULT_SHARD_PAYLOAD_CACHE_MAX = 10_000


__all__ = ["AuditorService", "IntakeDecision", "ServiceAuditRecord",
           "ServiceStats", "TokenBucket", "build_service_zones"]

#: Intake outcomes, as they appear in stats and telemetry counter names.
OUTCOME_ACCEPTED = "accepted"
OUTCOME_DEDUPLICATED = "deduplicated"
OUTCOME_SHED_RATE = "shed_rate_limited"
OUTCOME_SHED_QUEUE = "shed_queue_full"


@dataclass(frozen=True)
class IntakeDecision:
    """What the intake front-end told one submitter."""

    outcome: str
    #: Stored row for accepted/deduplicated submissions, None when shed.
    seq: int | None = None
    #: Shard the work was routed to (None when shed or deduplicated).
    shard: int | None = None

    @property
    def accepted(self) -> bool:
        """Whether the submission is (or already was) stored."""
        return self.outcome in (OUTCOME_ACCEPTED, OUTCOME_DEDUPLICATED)

    @property
    def shed(self) -> bool:
        """Whether back-pressure turned the submission away."""
        return self.outcome in (OUTCOME_SHED_RATE, OUTCOME_SHED_QUEUE)


@dataclass
class ServiceStats:
    """Monotone intake / audit accounting for one service lifetime."""

    submitted: int = 0
    accepted: int = 0
    deduplicated: int = 0
    shed_rate_limited: int = 0
    shed_queue_full: int = 0
    audited: int = 0
    replayed: int = 0
    intake_errors: int = 0
    per_shard_audited: list[int] = field(default_factory=list)
    #: Accepted submissions per authentication scheme (live counters;
    #: the store's indexed ``submission_counts_by_scheme`` is the durable
    #: equivalent and also covers rows from before this process started).
    submissions_by_scheme: dict[str, int] = field(default_factory=dict)
    #: Scheduler denials by reason (``global`` / ``drone`` / ``region`` /
    #: ``penalty``); every denial is also counted in ``shed_rate_limited``
    #: so the intake partition invariant is unchanged.
    admission_denied: dict[str, int] = field(default_factory=dict)

    @property
    def shed(self) -> int:
        """Total submissions turned away by back-pressure."""
        return self.shed_rate_limited + self.shed_queue_full

    def to_dict(self) -> dict:
        """JSON-ready snapshot."""
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "deduplicated": self.deduplicated,
            "shed": self.shed,
            "shed_rate_limited": self.shed_rate_limited,
            "shed_queue_full": self.shed_queue_full,
            "audited": self.audited,
            "replayed": self.replayed,
            "intake_errors": self.intake_errors,
            "per_shard_audited": list(self.per_shard_audited),
            "submissions_by_scheme": dict(
                sorted(self.submissions_by_scheme.items())),
            "admission_denied": dict(sorted(self.admission_denied.items())),
        }


@dataclass(frozen=True)
class ServiceAuditRecord:
    """One audited submission: its stored row and the engine outcome."""

    seq: int
    shard: int
    outcome: AuditOutcome


@dataclass(frozen=True)
class _QueuedItem:
    seq: int
    submission: PoaSubmission
    shard: int


class AuditorService:
    """A long-running, durable, sharded PoA auditor.

    Args:
        frame: the service's local projection frame.
        store: an open :class:`FlightStore`, or a path handed to one
            (``":memory:"`` for an ephemeral service).  Registered
            drones already in the store are loaded back into the live
            key table, so a restarted service resumes with its fleet.
        shards: number of audit partitions; each gets its own
            :class:`AuditEngine` with private caches.
        queue_capacity: bound on queued-but-unaudited submissions.
        admission: an :class:`AdmissionScheduler` guarding
            :meth:`submit`; ``None`` (with no legacy rate) disables the
            guard (queue bound still applies).
        admission_rate_per_s / admission_burst: legacy shorthand — a
            non-None rate builds a fifo (single global bucket)
            scheduler, the original TokenBucket behaviour.
        shard_payload_cache_max: per-shard decrypted-payload cache bound.
        encryption_key: the RSAES private key drones encrypt under; one
            is generated (``encryption_key_bits``) when omitted.
        workers / executor / screen_signatures: forwarded to each
            shard's engine.
        telemetry: optional hub; see :meth:`attach_telemetry`.
    """

    def __init__(self, frame: LocalFrame,
                 store: FlightStore | str = ":memory:", *,
                 shards: int = 1,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 admission: AdmissionScheduler | None = None,
                 admission_rate_per_s: float | None = None,
                 admission_burst: float = 32.0,
                 shard_payload_cache_max: int = DEFAULT_SHARD_PAYLOAD_CACHE_MAX,
                 encryption_key: RsaPrivateKey | None = None,
                 encryption_key_bits: int = 1024,
                 rng=None,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 hash_name: str = "sha1",
                 method: Method = "conservative",
                 workers: int = 1,
                 executor: str = "thread",
                 screen_signatures: bool = True,
                 telemetry: TelemetryHub | None = None,
                 events: EventLog | None = None):
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if queue_capacity < 1:
            raise ConfigurationError(
                f"queue capacity must be >= 1, got {queue_capacity}")
        self.frame = frame
        self.store = (store if isinstance(store, FlightStore)
                      else FlightStore(store))
        self.shards = int(shards)
        self.queue_capacity = int(queue_capacity)
        self.zones = NfzDatabase(frame)
        self.verifier = PoaVerifier(frame, vmax_mps=vmax_mps,
                                    hash_name=hash_name, method=method)
        self.events = events if events is not None else EventLog()
        self.metrics = StageMetrics()
        self.stats = ServiceStats(per_shard_audited=[0] * self.shards)
        self.telemetry = telemetry
        if admission is None and admission_rate_per_s is not None:
            admission = AdmissionScheduler(POLICY_FIFO,
                                           rate_per_s=admission_rate_per_s,
                                           burst=admission_burst)
        self.admission = admission
        self._queue: deque[_QueuedItem] = deque()
        if encryption_key is None:
            import random as random_module
            encryption_key = generate_rsa_keypair(
                encryption_key_bits,
                rng=rng if rng is not None else random_module.SystemRandom())
        self._encryption_key = encryption_key
        #: Live ``drone_id -> T+`` table, hydrated from the store so a
        #: restarted service resumes with its registered fleet.
        self._tee_keys: dict[str, RsaPublicKey] = {
            drone.drone_id: drone.tee_public_key
            for drone in self.store.load_drones()}
        zones_provider = lambda: [r.zone for r in self.zones.all_zones()]  # noqa: E731
        self.engines = [
            AuditEngine(
                self.verifier,
                tee_key_lookup=self._lookup_tee_key,
                encryption_key=self._encryption_key,
                zones_provider=zones_provider,
                workers=workers, executor=executor,
                screen_signatures=screen_signatures,
                events=None, metrics=self.metrics,
                telemetry=telemetry,
                payload_cache_max=shard_payload_cache_max)
            for _ in range(self.shards)]
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # --- registration ---------------------------------------------------------

    def _lookup_tee_key(self, drone_id: str) -> RsaPublicKey:
        key = self._tee_keys.get(drone_id)
        if key is None:
            # Fall through to the store: raises RegistrationError for a
            # genuinely unknown id, hydrates the table otherwise.
            key = self.store.get_drone(drone_id).tee_public_key
            self._tee_keys[drone_id] = key
        return key

    @property
    def public_encryption_key(self) -> RsaPublicKey:
        """The key drones encrypt PoA payloads under."""
        return self._encryption_key.public_key

    def register_drone(self, request: DroneRegistrationRequest,
                       now: float = 0.0) -> str:
        """Durably register ``(D+, T+)``; returns the issued ``id_drone``."""
        drone_id = self.store.register_drone(
            request.operator_public_key, request.tee_public_key,
            operator_name=request.operator_name, registered_at=now)
        self._tee_keys[drone_id] = request.tee_public_key
        self.events.record(now, "drone_registered", drone_id=drone_id,
                           operator=request.operator_name)
        return drone_id

    def register_zone(self, zone: NoFlyZone, owner_name: str = "",
                      proof_of_ownership: str = "service") -> str:
        """Register an NFZ into the service's zone database."""
        record = self.zones.register(zone, owner_name=owner_name,
                                     proof_of_ownership=proof_of_ownership)
        return record.zone_id

    # --- sharding -------------------------------------------------------------

    def shard_of(self, drone_id: str, region: str = "") -> int:
        """The shard that audits this submission.

        Zone-region is the primary partition key — flights in the same
        region verify against the same zone slice, so its shard's
        zone-index and projection caches stay hot — with drone id as the
        fallback, which keeps a drone's re-submitted records in the one
        shard that already holds their decrypted payloads.
        """
        key = region if region else drone_id
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:8], "big") % self.shards

    # --- intake ---------------------------------------------------------------

    def submit(self, submission: PoaSubmission, *, now: float,
               region: str = "") -> IntakeDecision:
        """Admit, persist, and enqueue one submission (or shed it).

        Order matters: the admission guard and queue bound are checked
        *before* the store write, so shed traffic costs no I/O; the store
        write happens *before* enqueueing, so an accepted submission is
        durable by the time the caller sees the ack.
        """
        self.stats.submitted += 1
        if self.admission is not None:
            decision = self.admission.admit(submission.drone_id, region, now)
            if not decision.admitted:
                reason = decision.reason or "global"
                self.stats.shed_rate_limited += 1
                self.stats.admission_denied[reason] = \
                    self.stats.admission_denied.get(reason, 0) + 1
                self._mark(OUTCOME_SHED_RATE, now)
                if self.telemetry is not None:
                    self.telemetry.mark("admission.denied", now=now)
                    self.telemetry.mark(f"admission.denied.{reason}", now=now)
                return IntakeDecision(outcome=OUTCOME_SHED_RATE)
            if self.telemetry is not None:
                self.telemetry.mark("admission.admitted", now=now)
        if len(self._queue) >= self.queue_capacity:
            self.stats.shed_queue_full += 1
            self._mark(OUTCOME_SHED_QUEUE, now)
            return IntakeDecision(outcome=OUTCOME_SHED_QUEUE)

        start = time.perf_counter()
        seq, inserted = self.store.put_submission(submission, region=region,
                                                  received_at=now)
        self._observe_store(time.perf_counter() - start, now)
        if not inserted:
            self.stats.deduplicated += 1
            self._mark(OUTCOME_DEDUPLICATED, now)
            if self.admission is not None:
                # Byte-identical re-uploads are the duplicate-flood shape;
                # feed them back at half weight so one innocent retry does
                # not penalise a drone, but a dedup storm does.
                self.admission.note_rejection(submission.drone_id, now,
                                              weight=0.5)
            return IntakeDecision(outcome=OUTCOME_DEDUPLICATED, seq=seq)
        shard = self.shard_of(submission.drone_id, region)
        self._queue.append(_QueuedItem(seq=seq, submission=submission,
                                       shard=shard))
        self.stats.accepted += 1
        self.stats.submissions_by_scheme[submission.scheme] = \
            self.stats.submissions_by_scheme.get(submission.scheme, 0) + 1
        self._mark(OUTCOME_ACCEPTED, now)
        return IntakeDecision(outcome=OUTCOME_ACCEPTED, seq=seq, shard=shard)

    @property
    def queue_depth(self) -> int:
        """Submissions accepted but not yet audited."""
        return len(self._queue)

    @property
    def queue_fill_ratio(self) -> float:
        """Queue depth as a fraction of its capacity."""
        return len(self._queue) / self.queue_capacity

    # --- audit loop -----------------------------------------------------------

    def drain(self, now: float,
              max_submissions: int | None = None) -> list[ServiceAuditRecord]:
        """Audit up to ``max_submissions`` queued items, one batch per shard.

        Verdicts are written back to the store as each shard's batch
        completes; the queue entry is gone either way, so a crash between
        batch and write-back is recovered from the store, not the queue.
        """
        budget = (len(self._queue) if max_submissions is None
                  else min(max_submissions, len(self._queue)))
        taken = [self._queue.popleft() for _ in range(budget)]
        if not taken:
            return []
        by_shard: dict[int, list[_QueuedItem]] = {}
        for item in taken:
            by_shard.setdefault(item.shard, []).append(item)
        records: list[ServiceAuditRecord] = []
        for shard in sorted(by_shard):
            items = by_shard[shard]
            result = self.engines[shard].audit_batch(
                [item.submission for item in items], now=now,
                record_event=False)
            for item, outcome in zip(items, result.outcomes):
                self._record_outcome(item.seq, shard, outcome, now)
                records.append(ServiceAuditRecord(seq=item.seq, shard=shard,
                                                  outcome=outcome))
            self.stats.per_shard_audited[shard] += len(items)
        self.stats.audited += len(records)
        self.events.record(now, "service_drained", audited=len(records),
                           shards_touched=len(by_shard),
                           queue_depth=len(self._queue))
        return records

    def _record_outcome(self, seq: int, shard: int, outcome: AuditOutcome,
                        now: float) -> None:
        start = time.perf_counter()
        if outcome.report is not None:
            self.store.record_verdict(seq, outcome.report, audited_at=now)
            rejected = outcome.report.status.value != "accepted"
        else:
            # Unknown drone etc: terminally unprocessable, never replayed.
            self.stats.intake_errors += 1
            self.store.record_intake_error(seq, str(outcome.error),
                                           audited_at=now)
            rejected = True
        if rejected and self.admission is not None:
            self.admission.note_rejection(outcome.submission.drone_id, now)
        self._observe_store(time.perf_counter() - start, now)

    def recover(self, now: float, batch_size: int = 256) -> int:
        """Replay every stored-but-unaudited submission after a restart.

        Rows are fetched, routed through their usual shard, and verdicted
        in arrival order until none are pending; because the pending set
        is defined by the *absence* of a verdict row, each interrupted
        submission is audited exactly once no matter how many times
        recovery itself is interrupted and rerun.  Only valid on an idle
        service (nothing queued), which is the restart situation.
        """
        if self._queue:
            raise ConfigurationError(
                "recover() requires an empty intake queue")
        replayed = 0
        while True:
            pending = self.store.pending(limit=batch_size)
            if not pending:
                break
            for stored in pending:
                self._queue.append(_QueuedItem(
                    seq=stored.seq, submission=stored.submission,
                    shard=self.shard_of(stored.submission.drone_id,
                                        stored.region)))
            replayed += len(self.drain(now))
        self.stats.replayed += replayed
        if replayed:
            self.events.record(now, "service_recovered", replayed=replayed)
        return replayed

    # --- conformance feed -----------------------------------------------------

    def audited_submissions(self
                            ) -> list[tuple[StoredSubmission, StoredVerdict]]:
        """Store-replayed ``(submission, verdict)`` pairs, arrival order."""
        return list(self.store.audited())

    # --- telemetry ------------------------------------------------------------

    def _mark(self, outcome: str, now: float) -> None:
        if self.telemetry is not None:
            self.telemetry.mark(f"service.intake.{outcome}", now=now)
            if outcome in (OUTCOME_SHED_RATE, OUTCOME_SHED_QUEUE):
                self.telemetry.mark("service.shed", now=now)

    def _observe_store(self, seconds: float, now: float) -> None:
        if self.telemetry is not None:
            self.telemetry.observe("service.store.seconds", seconds, now=now)

    def attach_telemetry(self, hub: TelemetryHub) -> TelemetryHub:
        """Wire the service's live state into a streaming telemetry hub.

        Beyond the per-intake feed every shard engine already sends
        (``audit.intake.seconds`` etc.), this registers the service-level
        signals the monitor rules watch: queue depth and fill ratio,
        shed/dedup/accept counters (marked at decision time), store
        latency (``service.store.seconds`` sketch), and per-shard payload
        cache hit/miss gauges plus an aggregate hit ratio.
        """
        self.telemetry = hub
        for engine in self.engines:
            engine.telemetry = hub
        hub.gauge("service.queue_depth", lambda: float(self.queue_depth))
        hub.gauge("service.queue_fill_ratio", lambda: self.queue_fill_ratio)
        hub.gauge("service.store.pending",
                  lambda: float(self.store.pending_count()))
        for index, engine in enumerate(self.engines):
            hub.gauge(f"service.shard{index}.payload_cache_hits",
                      lambda e=engine: float(e.payload_cache_hits))
            hub.gauge(f"service.shard{index}.payload_cache_misses",
                      lambda e=engine: float(e.payload_cache_misses))

        def hit_ratio() -> float:
            hits = sum(e.payload_cache_hits for e in self.engines)
            misses = sum(e.payload_cache_misses for e in self.engines)
            total = hits + misses
            return (hits / total) if total else 1.0

        hub.gauge("service.payload_cache_hit_ratio", hit_ratio)
        hub.add_section("service", self.stats.to_dict)
        if self.admission is not None:
            hub.add_section("admission", self.admission.stats.to_dict)
        return hub

    # --- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying store (queued items stay recoverable)."""
        self.store.close()

    def __enter__(self) -> "AuditorService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def build_service_zones(service: AuditorService,
                        zones: Sequence[NoFlyZone]) -> list[str]:
    """Register a zone list into a service; returns the issued ids."""
    return [service.register_zone(zone) for zone in zones]
