"""The Auditor side: registries, the AliDrone Server, and violation handling."""

from repro.server.database import (
    DroneRegistry,
    NfzDatabase,
    RegisteredDrone,
    RegisteredZone,
)
from repro.server.admission import (
    AdmissionDecision,
    AdmissionScheduler,
    AdmissionStats,
    TokenBucket,
    build_scheduler,
)
from repro.server.auditor import AliDroneServer, RetainedSubmission
from repro.server.engine import (
    AuditEngine,
    AuditOutcome,
    BatchAuditResult,
)
from repro.server.store import (
    FlightStore,
    StoredDrone,
    StoredSubmission,
    StoredVerdict,
    submission_dedup_key,
)
from repro.server.service import (
    AuditorService,
    IntakeDecision,
    ServiceAuditRecord,
    ServiceStats,
)
from repro.server.violations import ViolationFinding, ViolationLedger, PenaltyPolicy

__all__ = [
    "AdmissionDecision",
    "AdmissionScheduler",
    "AdmissionStats",
    "build_scheduler",
    "DroneRegistry",
    "NfzDatabase",
    "RegisteredDrone",
    "RegisteredZone",
    "AliDroneServer",
    "RetainedSubmission",
    "AuditEngine",
    "AuditOutcome",
    "BatchAuditResult",
    "FlightStore",
    "StoredDrone",
    "StoredSubmission",
    "StoredVerdict",
    "submission_dedup_key",
    "AuditorService",
    "IntakeDecision",
    "ServiceAuditRecord",
    "ServiceStats",
    "TokenBucket",
    "ViolationFinding",
    "ViolationLedger",
    "PenaltyPolicy",
]
