"""Possible-traveling-range ellipses and ellipse/disk intersection tests.

Paper §IV-C1: given two GPS samples ``S1 = (x1, y1, t1)`` and
``S2 = (x2, y2, t2)`` and a maximum speed ``v_max``, every point the drone
could have visited in between lies inside the ellipse with foci at the two
sample positions and focal-sum ``v_max * (t2 - t1)``.  The sample pair proves
alibi from a circular NFZ exactly when this ellipse does not intersect the
NFZ disk.

Two intersection predicates are provided:

* :func:`ellipse_disk_disjoint_conservative` — the bound the paper's
  adaptive-sampling conditions (eq. 2/3) and insufficiency counter use:
  ``D1 + D2 > v_max * dt`` with ``D_i`` the distance from focus ``i`` to the
  disk *boundary*.  By the triangle inequality ``D1 + D2`` lower-bounds the
  true minimum focal sum over the disk, so "disjoint" answers are always
  correct (the test is sound); it can only over-report intersection.
* :func:`ellipse_disk_disjoint_exact` — the exact predicate, via convex
  minimization of the focal sum over the disk.

The conservative predicate is the package default to match the paper; the
exact one backs the geometry ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geo.circle import Circle, _point_segment_distance

Point = tuple[float, float]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class TravelRangeEllipse:
    """The set of positions reachable between two timestamped samples.

    Attributes:
        f1: first focus (position of the earlier sample), metres.
        f2: second focus (position of the later sample), metres.
        focal_sum: the bound ``v_max * (t2 - t1)`` on ``d1 + d2``, metres.
    """

    f1: Point
    f2: Point
    focal_sum: float

    def __post_init__(self) -> None:
        if self.focal_sum < 0:
            raise GeometryError("focal_sum must be non-negative")

    @property
    def focal_distance(self) -> float:
        """Distance between the two foci (straight-line travel), metres."""
        return math.hypot(self.f2[0] - self.f1[0], self.f2[1] - self.f1[1])

    @property
    def is_feasible(self) -> bool:
        """Whether the ellipse is non-empty.

        An empty travel range means the two samples are further apart than
        ``v_max`` allows — physically impossible motion, which the Auditor
        treats as evidence of a forged trace.
        """
        return self.focal_distance <= self.focal_sum + _EPS

    @property
    def semi_major(self) -> float:
        """Semi-major axis length ``a`` (half the focal sum)."""
        return self.focal_sum / 2.0

    @property
    def semi_minor(self) -> float:
        """Semi-minor axis length ``b = sqrt(a^2 - c^2)`` (0 if infeasible)."""
        a = self.semi_major
        c = self.focal_distance / 2.0
        return math.sqrt(max(0.0, a * a - c * c))

    def contains(self, point: Point, tol: float = _EPS) -> bool:
        """Whether ``point`` could have been visited between the samples."""
        d1 = math.hypot(point[0] - self.f1[0], point[1] - self.f1[1])
        d2 = math.hypot(point[0] - self.f2[0], point[1] - self.f2[1])
        return d1 + d2 <= self.focal_sum + tol

    def focal_sum_at(self, point: Point) -> float:
        """The quantity ``d1 + d2`` for an arbitrary point."""
        d1 = math.hypot(point[0] - self.f1[0], point[1] - self.f1[1])
        d2 = math.hypot(point[0] - self.f2[0], point[1] - self.f2[1])
        return d1 + d2


def ellipse_disk_disjoint_conservative(ellipse: TravelRangeEllipse, disk: Circle) -> bool:
    """Paper's sound approximation of ellipse/disk disjointness.

    Declares the shapes disjoint when ``D1 + D2 > focal_sum`` with ``D_i``
    the signed distance from focus ``i`` to the disk boundary.  Never wrong
    when it answers True; may answer False for some truly-disjoint pairs
    (quantified by the geometry ablation benchmark).
    """
    d1 = disk.distance_to_boundary(ellipse.f1)
    d2 = disk.distance_to_boundary(ellipse.f2)
    return d1 + d2 > ellipse.focal_sum + _EPS


def min_focal_sum_over_disk(ellipse: TravelRangeEllipse, disk: Circle,
                            coarse_steps: int = 256) -> float:
    """Minimum of ``|p - f1| + |p - f2|`` over the closed disk.

    The focal sum is convex, so its minimum over the (convex) disk is either
    the unconstrained minimum ``|f1 - f2|`` (when the focal segment meets the
    disk) or attained on the boundary circle.  The boundary restriction is
    minimized by a dense coarse scan followed by golden-section refinement of
    the best bracket, which is robust to the (at most two) local minima the
    restriction can exhibit.
    """
    if disk.r <= _EPS:
        return ellipse.focal_sum_at(disk.center)
    if _point_segment_distance(disk.center, ellipse.f1, ellipse.f2) <= disk.r:
        return ellipse.focal_distance

    thetas = np.linspace(0.0, 2.0 * math.pi, coarse_steps, endpoint=False)
    px = disk.x + disk.r * np.cos(thetas)
    py = disk.y + disk.r * np.sin(thetas)
    sums = (np.hypot(px - ellipse.f1[0], py - ellipse.f1[1])
            + np.hypot(px - ellipse.f2[0], py - ellipse.f2[1]))
    best = int(np.argmin(sums))
    step = 2.0 * math.pi / coarse_steps
    lo = thetas[best] - step
    hi = thetas[best] + step

    def focal_sum(theta: float) -> float:
        p = (disk.x + disk.r * math.cos(theta), disk.y + disk.r * math.sin(theta))
        return ellipse.focal_sum_at(p)

    # Golden-section search on the bracketed interval.
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = focal_sum(c), focal_sum(d)
    for _ in range(60):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = focal_sum(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = focal_sum(d)
    return min(fc, fd)


def ellipse_disk_disjoint_exact(ellipse: TravelRangeEllipse, disk: Circle) -> bool:
    """Exact ellipse/disk disjointness: ``min focal sum over disk > 2a``."""
    return min_focal_sum_over_disk(ellipse, disk) > ellipse.focal_sum + _EPS
