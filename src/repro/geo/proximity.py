"""Zone-proximity queries at national NFZ scale.

The adaptive sampler (Algorithm 1, paper §IV-C3) and the Auditor's
sufficiency check both reduce to "how close is the current fix pair to the
*nearest* NFZ boundary" — historically an O(Z) scan over every zone per
GPS fix / per sample pair.  That is fine for the field studies' 1–94
zones, but a nationwide Remote-ID-style deployment carries 10^3–10^5
zones, at which point the zone scan (not RSA) dominates both the
drone-side sampling loop and server-side audit throughput.

:class:`ZoneProximityIndex` projects each zone's circle into the local
frame **once**, stores it in a :class:`~repro.geo.spatial_index.GridIndex`,
and answers the three hot queries via expanding-ring search with
lower-bound pruning:

* :meth:`nearest_boundary` — ``FindNearestZone``: the zone whose boundary
  is nearest a point;
* :meth:`min_pair_distance` — ``min over zones of (D1 + D2)`` for a fix
  pair, the exact quantity in sampling conditions (2)/(3) and in the
  conservative sufficiency predicate;
* :meth:`candidates_within` / :meth:`pair_candidates` / :meth:`k_nearest`
  — candidate enumeration for the exact geometric predicates.

Every query supports a ``cutoff_m``: the search stops expanding as soon
as the ring lower bound proves the true answer exceeds the cutoff, which
is how the sampler early-exits once no zone can be within the decision
threshold ``v_max * (dt + margin)``.  **Cutoff contract:** a returned
distance ``<= cutoff_m`` is the exact minimum (bit-identical to the
brute-force scan, because the same ``Circle.distance_to_boundary`` sums
are minimized over a provably-superset candidate set); a returned
distance ``> cutoff_m`` only certifies the predicate "true minimum >
cutoff_m" — callers must not use the magnitude for anything but that
comparison.

Counters land in a :class:`ZoneIndexStats` so the telemetry layer
(:mod:`repro.obs`) can show the pruning working: queries answered,
candidate circles actually evaluated, rings expanded, cutoff early exits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.geo.circle import Circle
from repro.geo.geodesy import LocalFrame
from repro.geo.spatial_index import GridIndex

Point = tuple[float, float]

#: Cell-size floor; also the cell size of an empty index.
_MIN_CELL_M = 1.0
_DEFAULT_EMPTY_CELL_M = 100.0


@dataclass
class ZoneIndexStats:
    """Pruning-effectiveness counters for one (or many shared) indexes.

    Attributes:
        queries: proximity queries answered.
        candidates: circles whose distance was actually evaluated — the
            brute-force scan would have evaluated ``queries * len(index)``.
        rings: grid rings expanded across all queries.
        cutoff_exits: queries that stopped early because the ring lower
            bound proved the answer exceeds the caller's ``cutoff_m``.
    """

    queries: int = 0
    candidates: int = 0
    rings: int = 0
    cutoff_exits: int = 0

    @property
    def mean_candidates_per_query(self) -> float:
        """Average circles evaluated per query (0 when unused)."""
        return self.candidates / self.queries if self.queries else 0.0

    @property
    def mean_rings_per_query(self) -> float:
        """Average rings expanded per query (0 when unused)."""
        return self.rings / self.queries if self.queries else 0.0


def _auto_cell_size(circles: Sequence[Circle]) -> float:
    """A grid cell edge matched to the zone layout.

    Aims for ~1 entry per cell over the populated extent while keeping
    cells no smaller than a typical zone diameter, so one circle does not
    fan out across many cells.
    """
    if not circles:
        return _DEFAULT_EMPTY_CELL_M
    span_x = (max(c.x + c.r for c in circles)
              - min(c.x - c.r for c in circles))
    span_y = (max(c.y + c.r for c in circles)
              - min(c.y - c.r for c in circles))
    span = max(span_x, span_y, _MIN_CELL_M)
    mean_diameter = 2.0 * sum(c.r for c in circles) / len(circles)
    return max(span / math.sqrt(len(circles)), mean_diameter, _MIN_CELL_M)


class ZoneProximityIndex:
    """Nearest-boundary and candidate queries over a projected zone set.

    Zones are projected into ``frame`` exactly once at construction (via
    the cached :meth:`repro.core.nfz.NoFlyZone.to_circle`); all queries
    then run against planar circles.  The circle list is exposed as
    :attr:`circles` in zone order so callers that still need the full
    projection (e.g. the verification pipeline's ``zone_circles`` cache)
    share it instead of re-projecting.

    Args:
        zones: the NFZ set (anything with ``to_circle(frame)``).
        frame: local planar frame the queries are expressed in.
        cell_size: grid cell edge in metres; auto-sized from the layout
            when omitted.
        stats: an optional shared :class:`ZoneIndexStats` (the audit
            engine passes one accumulator across batches).
    """

    def __init__(self, zones: Sequence, frame: LocalFrame,
                 cell_size: float | None = None,
                 stats: ZoneIndexStats | None = None):
        self.zones = list(zones)
        self.frame = frame
        circles = [zone.to_circle(frame) for zone in self.zones]
        self._init_from_circles(circles, cell_size, stats)

    @classmethod
    def from_circles(cls, circles: Sequence[Circle],
                     cell_size: float | None = None,
                     stats: ZoneIndexStats | None = None,
                     ) -> "ZoneProximityIndex":
        """Build directly from already-projected circles (no frame)."""
        index = cls.__new__(cls)
        index.zones = []
        index.frame = None
        index._init_from_circles(list(circles), cell_size, stats)
        return index

    def _init_from_circles(self, circles: list[Circle],
                           cell_size: float | None,
                           stats: ZoneIndexStats | None) -> None:
        self.circles = circles
        self.cell_size = (float(cell_size) if cell_size is not None
                          else _auto_cell_size(circles))
        self.stats = stats if stats is not None else ZoneIndexStats()
        self._grid: GridIndex[int] = GridIndex(self.cell_size)
        for i, circle in enumerate(circles):
            self._grid.insert(i, circle)

    def __len__(self) -> int:
        return len(self.circles)

    # --- point queries ------------------------------------------------------

    def nearest_boundary(self, point: Point,
                         cutoff_m: float | None = None,
                         ) -> tuple[int, float] | None:
        """``FindNearestZone``: ``(zone_index, signed_boundary_distance)``.

        Returns None when the index is empty.  Ties are broken toward the
        smallest zone index.  With ``cutoff_m``, the search may stop once
        the true minimum provably exceeds the cutoff; the returned
        distance is then only guaranteed to be ``> cutoff_m`` (see the
        module docstring's cutoff contract); if the cutoff pruned the
        search before any circle was evaluated, the sentinel
        ``(-1, math.inf)`` is returned.
        """
        if not self.circles:
            return None
        stats = self.stats
        stats.queries += 1
        best_index = -1
        best_dist = math.inf
        for ring, keys in self._grid.ring_candidates(point):
            lower = self._grid.ring_lower_bound(ring)
            if best_dist < lower:
                break
            # Ring 0 must always be scanned: circles *containing* the
            # point (negative distance) all register in the point's own
            # cell, so the lower bound only certifies rings >= 1.
            if (cutoff_m is not None and ring and best_dist > cutoff_m
                    and lower > cutoff_m):
                stats.cutoff_exits += 1
                break
            stats.rings += 1
            stats.candidates += len(keys)
            for i in keys:
                dist = self.circles[i].distance_to_boundary(point)
                if dist < best_dist or (dist == best_dist and i < best_index):
                    best_index, best_dist = i, dist
        return best_index, best_dist

    def k_nearest(self, point: Point, k: int) -> list[tuple[int, float]]:
        """The ``k`` zones of nearest boundary, ascending ``(dist, index)``."""
        if k <= 0 or not self.circles:
            return []
        stats = self.stats
        stats.queries += 1
        best: list[tuple[float, int]] = []
        for ring, keys in self._grid.ring_candidates(point):
            if len(best) >= k and best[-1][0] < self._grid.ring_lower_bound(ring):
                break
            stats.rings += 1
            stats.candidates += len(keys)
            for i in keys:
                best.append((self.circles[i].distance_to_boundary(point), i))
            best.sort()
            del best[k:]
        return [(i, dist) for dist, i in best]

    def candidates_within(self, point: Point, radius_m: float) -> list[int]:
        """Indices of zones whose boundary is within ``radius_m`` of ``point``.

        Membership uses ``distance_to_boundary(point) <= radius_m`` (signed,
        so zones containing the point always qualify).  Ascending index
        order, identical to the brute-force filter.
        """
        if not self.circles:
            return []
        stats = self.stats
        stats.queries += 1
        hits: list[int] = []
        for ring, keys in self._grid.ring_candidates(point):
            # Ring 0 always scans (containing circles have negative
            # distance below any lower bound); rings >= 1 prune normally.
            if ring and self._grid.ring_lower_bound(ring) > radius_m:
                break
            stats.rings += 1
            stats.candidates += len(keys)
            hits.extend(i for i in keys
                        if self.circles[i].distance_to_boundary(point)
                        <= radius_m)
        return sorted(hits)

    # --- pair queries (the sampling / sufficiency hot path) -----------------

    def min_pair_distance(self, a: Point, b: Point,
                          cutoff_m: float | None = None) -> float | None:
        """``min over zones of (D1 + D2)`` for the fix pair ``(a, b)``.

        ``D_i`` is the signed boundary distance from fix ``i`` — exactly
        the quantity in sampling conditions (2)/(3) and the conservative
        sufficiency predicate.  Expands rings around the pair midpoint: a
        zone first seen at ring ``r`` has
        ``D1 + D2 >= 2 * (|m - c| - r_z) >= 2 * ring_lower_bound(r)``, so
        the search stops as soon as the best sum beats the next ring's
        bound.  Results at or below ``cutoff_m`` are bit-identical to the
        brute-force ``min`` (same float expressions, provably-superset
        candidate set); above the cutoff only the ``> cutoff_m`` predicate
        is guaranteed.  Returns None when the index is empty.
        """
        if not self.circles:
            return None
        stats = self.stats
        stats.queries += 1
        midpoint = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
        best = math.inf
        for ring, keys in self._grid.ring_candidates(midpoint):
            lower = 2.0 * self._grid.ring_lower_bound(ring)
            if best < lower:
                break
            # Negative pair sums require the midpoint inside the zone,
            # which pins the zone to ring 0 — so ring 0 always scans.
            if (cutoff_m is not None and ring and best > cutoff_m
                    and lower > cutoff_m):
                stats.cutoff_exits += 1
                break
            stats.rings += 1
            stats.candidates += len(keys)
            for i in keys:
                circle = self.circles[i]
                pair_sum = (circle.distance_to_boundary(a)
                            + circle.distance_to_boundary(b))
                if pair_sum < best:
                    best = pair_sum
        return best

    def pair_candidates(self, a: Point, b: Point, max_sum: float) -> list[int]:
        """Indices of zones with ``D1 + D2 <= max_sum``, ascending.

        The candidate set the *exact* sufficiency predicate must test: any
        zone whose travel ellipse could intersect fails the conservative
        bound first, and the conservative bound is exactly this sum.
        """
        if not self.circles:
            return []
        stats = self.stats
        stats.queries += 1
        midpoint = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
        hits: list[int] = []
        for ring, keys in self._grid.ring_candidates(midpoint):
            if ring and 2.0 * self._grid.ring_lower_bound(ring) > max_sum:
                break
            stats.rings += 1
            stats.candidates += len(keys)
            for i in keys:
                circle = self.circles[i]
                if (circle.distance_to_boundary(a)
                        + circle.distance_to_boundary(b)) <= max_sum:
                    hits.append(i)
        return sorted(hits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ZoneProximityIndex zones={len(self.circles)} "
                f"cell={self.cell_size:.1f}m>")
