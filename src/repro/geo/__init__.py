"""Geometry substrate: geodesy, travel-range ellipses, circles, polygons.

Everything in the protocol layer reasons about positions in a local planar
frame (metres, east/north axes) anchored at a scenario origin; this package
supplies the lat/lon conversions and the geometric primitives behind the
Proof-of-Alibi sufficiency test.
"""

from repro.geo.geodesy import (
    GeoPoint,
    LocalFrame,
    haversine_distance_m,
    destination_point,
    initial_bearing_deg,
)
from repro.geo.circle import Circle, smallest_enclosing_circle
from repro.geo.ellipse import (
    TravelRangeEllipse,
    ellipse_disk_disjoint_conservative,
    ellipse_disk_disjoint_exact,
    min_focal_sum_over_disk,
)
from repro.geo.ellipsoid import TravelRangeEllipsoid, ellipsoid_cylinder_disjoint
from repro.geo.polygon import Polygon
from repro.geo.proximity import ZoneIndexStats, ZoneProximityIndex
from repro.geo.spatial_index import GridIndex

__all__ = [
    "GeoPoint",
    "LocalFrame",
    "haversine_distance_m",
    "destination_point",
    "initial_bearing_deg",
    "Circle",
    "smallest_enclosing_circle",
    "TravelRangeEllipse",
    "ellipse_disk_disjoint_conservative",
    "ellipse_disk_disjoint_exact",
    "min_focal_sum_over_disk",
    "TravelRangeEllipsoid",
    "ellipsoid_cylinder_disjoint",
    "Polygon",
    "GridIndex",
    "ZoneProximityIndex",
    "ZoneIndexStats",
]
