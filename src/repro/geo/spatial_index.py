"""A uniform-grid spatial index over circular regions.

The Auditor's NFZ database and the drone's Adapter both need two queries:
"which zones fall inside this rectangle?" (zone query/response, paper §IV-B)
and "which zone is nearest to this point?" (``FindNearestZone`` in
Algorithm 1).  A uniform grid keyed on circle bounding boxes answers both in
expected O(1) per cell for the dense-but-local NFZ layouts of the field
studies.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Generic, Hashable, Iterator, TypeVar

from repro.errors import ConfigurationError
from repro.geo.circle import Circle

K = TypeVar("K", bound=Hashable)

Point = tuple[float, float]


class GridIndex(Generic[K]):
    """Uniform grid over ``(key, Circle)`` entries.

    Args:
        cell_size: grid cell edge in metres.  Should be on the order of the
            typical query radius; the residential workload uses ~100 m cells.
    """

    def __init__(self, cell_size: float = 100.0):
        if cell_size <= 0:
            raise ConfigurationError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], set[K]] = defaultdict(set)
        self._entries: dict[K, Circle] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def get(self, key: K) -> Circle | None:
        """The circle stored under ``key``, or None."""
        return self._entries.get(key)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_size), math.floor(y / self.cell_size))

    def _cells_for(self, circle: Circle) -> Iterator[tuple[int, int]]:
        x0, y0 = self._cell_of(circle.x - circle.r, circle.y - circle.r)
        x1, y1 = self._cell_of(circle.x + circle.r, circle.y + circle.r)
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                yield (cx, cy)

    def insert(self, key: K, circle: Circle) -> None:
        """Insert or replace the circle stored under ``key``."""
        if key in self._entries:
            self.remove(key)
        self._entries[key] = circle
        for cell in self._cells_for(circle):
            self._cells[cell].add(key)

    def remove(self, key: K) -> None:
        """Remove ``key``; raises KeyError if absent."""
        circle = self._entries.pop(key)
        for cell in self._cells_for(circle):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._cells[cell]

    def items(self) -> Iterator[tuple[K, Circle]]:
        """All ``(key, circle)`` entries."""
        return iter(self._entries.items())

    def query_rect(self, x_min: float, y_min: float,
                   x_max: float, y_max: float) -> list[K]:
        """Keys of circles intersecting the axis-aligned rectangle."""
        if x_min > x_max:
            x_min, x_max = x_max, x_min
        if y_min > y_max:
            y_min, y_max = y_max, y_min
        c0 = self._cell_of(x_min, y_min)
        c1 = self._cell_of(x_max, y_max)
        candidates: set[K] = set()
        for cx in range(c0[0], c1[0] + 1):
            for cy in range(c0[1], c1[1] + 1):
                candidates |= self._cells.get((cx, cy), set())
        hits = []
        for key in candidates:
            circle = self._entries[key]
            # Closest point of the rectangle to the circle centre.
            nx = min(max(circle.x, x_min), x_max)
            ny = min(max(circle.y, y_min), y_max)
            if math.hypot(circle.x - nx, circle.y - ny) <= circle.r:
                hits.append(key)
        return sorted(hits, key=repr)

    def query_point(self, point: Point) -> list[K]:
        """Keys of circles containing ``point``."""
        candidates = self._cells.get(self._cell_of(*point), set())
        return sorted((k for k in candidates if self._entries[k].contains(point)), key=repr)

    def ring_lower_bound(self, ring: int) -> float:
        """Minimum possible distance from a query point to a ring-``ring`` cell.

        The query point sits somewhere inside its own (ring-0) cell, so a
        cell at Chebyshev ring ``r`` is at least ``(r - 1)`` whole cells
        away.  Because a circle is registered in every cell its bounding
        box overlaps, any circle first produced at ring ``r`` has unsigned
        boundary distance at least this bound — the invariant behind every
        pruned search built on :meth:`ring_candidates`.
        """
        return max(0, ring - 1) * self.cell_size

    def ring_candidates(self, point: Point) -> Iterator[tuple[int, list[K]]]:
        """Expanding-ring candidate enumeration around ``point``.

        Yields ``(ring, keys)`` in ascending ring order; every stored key
        is produced exactly once, at the smallest ring containing one of
        its cells.  Keys not yet yielded after ring ``r`` lie in rings
        ``> r`` and are therefore at least ``r * cell_size`` from the
        query point (see :meth:`ring_lower_bound`).

        Once the ring perimeter outgrows the remaining populated cells the
        enumeration falls back to one direct sweep of those cells, so a
        query far outside the populated extent costs O(cells), not
        O(spread^2) empty lookups.
        """
        if not self._cells:
            return
        cx, cy = self._cell_of(*point)
        seen: set[K] = set()
        visited_cells = 0
        ring = 0
        while visited_cells < len(self._cells):
            if ring and 8 * ring > len(self._cells) - visited_cells:
                # Sweep the remaining populated cells directly, attributing
                # each unseen key to the *smallest* of its remaining rings
                # so callers' pruning bounds stay valid.
                first_ring: dict[K, int] = {}
                for (gx, gy), keys in self._cells.items():
                    cell_ring = max(abs(gx - cx), abs(gy - cy))
                    if cell_ring < ring:
                        continue
                    for key in keys:
                        if key in seen:
                            continue
                        held = first_ring.get(key)
                        if held is None or cell_ring < held:
                            first_ring[key] = cell_ring
                grouped: dict[int, list[K]] = {}
                for key, key_ring in first_ring.items():
                    grouped.setdefault(key_ring, []).append(key)
                for key_ring in sorted(grouped):
                    yield key_ring, grouped[key_ring]
                return
            fresh: list[K] = []
            for cell in self._ring_cells(cx, cy, ring):
                keys = self._cells.get(cell)
                if keys is None:
                    continue
                visited_cells += 1
                fresh.extend(k for k in keys if k not in seen)
                seen.update(keys)
            if fresh:
                yield ring, fresh
            ring += 1

    def nearest(self, point: Point) -> tuple[K, float] | None:
        """The circle whose *boundary* is nearest to ``point``.

        Returns ``(key, signed_boundary_distance)`` or None when empty.
        Implements ``FindNearestZone`` from Algorithm 1 with an expanding
        ring search over grid cells, stopping as soon as no unvisited ring
        can hold a closer boundary.  Exact ties are broken by ``repr`` of
        the key (the same deterministic order the rectangle query uses).
        """
        if not self._entries:
            return None
        best_key: K | None = None
        best_dist = math.inf
        for ring, keys in self.ring_candidates(point):
            # Everything in this ring (and beyond) is at least this far
            # away; a strictly better current best cannot be displaced.
            if best_dist < self.ring_lower_bound(ring):
                break
            for key in keys:
                dist = self._entries[key].distance_to_boundary(point)
                if dist < best_dist or (dist == best_dist
                                        and repr(key) < repr(best_key)):
                    best_key, best_dist = key, dist
        if best_key is None:  # pragma: no cover - guarded by emptiness check
            raise AssertionError("non-empty index produced no candidates")
        return best_key, best_dist

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int) -> Iterator[tuple[int, int]]:
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)
