"""A uniform-grid spatial index over circular regions.

The Auditor's NFZ database and the drone's Adapter both need two queries:
"which zones fall inside this rectangle?" (zone query/response, paper §IV-B)
and "which zone is nearest to this point?" (``FindNearestZone`` in
Algorithm 1).  A uniform grid keyed on circle bounding boxes answers both in
expected O(1) per cell for the dense-but-local NFZ layouts of the field
studies.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Generic, Hashable, Iterator, TypeVar

from repro.errors import ConfigurationError
from repro.geo.circle import Circle

K = TypeVar("K", bound=Hashable)

Point = tuple[float, float]


class GridIndex(Generic[K]):
    """Uniform grid over ``(key, Circle)`` entries.

    Args:
        cell_size: grid cell edge in metres.  Should be on the order of the
            typical query radius; the residential workload uses ~100 m cells.
    """

    def __init__(self, cell_size: float = 100.0):
        if cell_size <= 0:
            raise ConfigurationError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int], set[K]] = defaultdict(set)
        self._entries: dict[K, Circle] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def get(self, key: K) -> Circle | None:
        """The circle stored under ``key``, or None."""
        return self._entries.get(key)

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_size), math.floor(y / self.cell_size))

    def _cells_for(self, circle: Circle) -> Iterator[tuple[int, int]]:
        x0, y0 = self._cell_of(circle.x - circle.r, circle.y - circle.r)
        x1, y1 = self._cell_of(circle.x + circle.r, circle.y + circle.r)
        for cx in range(x0, x1 + 1):
            for cy in range(y0, y1 + 1):
                yield (cx, cy)

    def insert(self, key: K, circle: Circle) -> None:
        """Insert or replace the circle stored under ``key``."""
        if key in self._entries:
            self.remove(key)
        self._entries[key] = circle
        for cell in self._cells_for(circle):
            self._cells[cell].add(key)

    def remove(self, key: K) -> None:
        """Remove ``key``; raises KeyError if absent."""
        circle = self._entries.pop(key)
        for cell in self._cells_for(circle):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._cells[cell]

    def items(self) -> Iterator[tuple[K, Circle]]:
        """All ``(key, circle)`` entries."""
        return iter(self._entries.items())

    def query_rect(self, x_min: float, y_min: float,
                   x_max: float, y_max: float) -> list[K]:
        """Keys of circles intersecting the axis-aligned rectangle."""
        if x_min > x_max:
            x_min, x_max = x_max, x_min
        if y_min > y_max:
            y_min, y_max = y_max, y_min
        c0 = self._cell_of(x_min, y_min)
        c1 = self._cell_of(x_max, y_max)
        candidates: set[K] = set()
        for cx in range(c0[0], c1[0] + 1):
            for cy in range(c0[1], c1[1] + 1):
                candidates |= self._cells.get((cx, cy), set())
        hits = []
        for key in candidates:
            circle = self._entries[key]
            # Closest point of the rectangle to the circle centre.
            nx = min(max(circle.x, x_min), x_max)
            ny = min(max(circle.y, y_min), y_max)
            if math.hypot(circle.x - nx, circle.y - ny) <= circle.r:
                hits.append(key)
        return sorted(hits, key=repr)

    def query_point(self, point: Point) -> list[K]:
        """Keys of circles containing ``point``."""
        candidates = self._cells.get(self._cell_of(*point), set())
        return sorted((k for k in candidates if self._entries[k].contains(point)), key=repr)

    def nearest(self, point: Point) -> tuple[K, float] | None:
        """The circle whose *boundary* is nearest to ``point``.

        Returns ``(key, signed_boundary_distance)`` or None when empty.
        Implements ``FindNearestZone`` from Algorithm 1 with an expanding
        ring search over grid cells, falling back to a full scan once the
        ring exceeds the populated extent.
        """
        if not self._entries:
            return None
        cx, cy = self._cell_of(*point)
        best: tuple[K, float] | None = None
        seen: set[K] = set()
        max_radius = self._max_ring_radius(cx, cy)
        for ring in range(max_radius + 1):
            for cell in self._ring_cells(cx, cy, ring):
                for key in self._cells.get(cell, ()):
                    if key in seen:
                        continue
                    seen.add(key)
                    dist = self._entries[key].distance_to_boundary(point)
                    if best is None or dist < best[1]:
                        best = (key, dist)
            # A hit in ring r can still be beaten by a closer boundary in
            # ring r+1 (large circles straddle cells), so scan one extra
            # ring beyond the first hit before accepting.
            if best is not None and best[1] <= (ring - 1) * self.cell_size:
                break
        if best is None:  # pragma: no cover - guarded by the emptiness check
            raise AssertionError("non-empty index produced no candidates")
        return best

    def _max_ring_radius(self, cx: int, cy: int) -> int:
        spread = 0
        for (gx, gy) in self._cells:
            spread = max(spread, abs(gx - cx), abs(gy - cy))
        return spread + 1

    @staticmethod
    def _ring_cells(cx: int, cy: int, ring: int) -> Iterator[tuple[int, int]]:
        if ring == 0:
            yield (cx, cy)
            return
        for dx in range(-ring, ring + 1):
            yield (cx + dx, cy - ring)
            yield (cx + dx, cy + ring)
        for dy in range(-ring + 1, ring):
            yield (cx - ring, cy + dy)
            yield (cx + ring, cy + dy)
