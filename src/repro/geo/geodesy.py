"""Geodesy: lat/lon points, great-circle math, and local planar frames.

The field studies in the paper span at most a few miles, so the protocol
layer works in a local equirectangular frame (metres east/north of a fixed
origin).  At a 10 km scale the projection error against the spherical model
is far below GPS noise (< 10 cm), which we verify in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.units import EARTH_RADIUS_M


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84-style geographic coordinate (spherical earth model).

    Attributes:
        lat: latitude in decimal degrees, in [-90, 90].
        lon: longitude in decimal degrees, in [-180, 180].
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise GeometryError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise GeometryError(f"longitude out of range: {self.lon}")

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in metres."""
        return haversine_distance_m(self, other)


def haversine_distance_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in metres.

    Uses the haversine formulation, which is numerically stable for the
    short distances that dominate drone flights.
    """
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = phi2 - phi1
    dlambda = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial great-circle bearing from ``a`` to ``b`` in degrees [0, 360)."""
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dlambda = math.radians(b.lon - a.lon)
    y = math.sin(dlambda) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlambda)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_m: float) -> GeoPoint:
    """The point ``distance_m`` metres from ``origin`` along ``bearing_deg``.

    Great-circle forward computation on the spherical earth model.
    """
    if distance_m < 0:
        raise GeometryError("distance must be non-negative")
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(origin.lat)
    lambda1 = math.radians(origin.lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    phi2 = math.asin(max(-1.0, min(1.0, sin_phi2)))
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lambda2 = lambda1 + math.atan2(y, x)
    lon = math.degrees(lambda2)
    # Normalize into [-180, 180].
    lon = (lon + 180.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(phi2), lon)


class LocalFrame:
    """An equirectangular local tangent frame anchored at an origin.

    Maps geographic coordinates to planar ``(x, y)`` metres where ``x``
    points east and ``y`` points north.  Valid for scenario footprints up to
    a few tens of kilometres, which covers both field studies with large
    margin.
    """

    def __init__(self, origin: GeoPoint):
        self.origin = origin
        self._cos_lat = math.cos(math.radians(origin.lat))
        if self._cos_lat <= 1e-9:
            raise GeometryError("local frame origin too close to a pole")

    def to_local(self, point: GeoPoint) -> tuple[float, float]:
        """Project a geographic point into the local (east, north) frame."""
        x = math.radians(point.lon - self.origin.lon) * self._cos_lat * EARTH_RADIUS_M
        y = math.radians(point.lat - self.origin.lat) * EARTH_RADIUS_M
        return (x, y)

    def to_geo(self, x: float, y: float) -> GeoPoint:
        """Inverse projection: local (east, north) metres to lat/lon."""
        lat = self.origin.lat + math.degrees(y / EARTH_RADIUS_M)
        lon = self.origin.lon + math.degrees(x / (EARTH_RADIUS_M * self._cos_lat))
        return GeoPoint(lat, lon)

    def distance_m(self, a: GeoPoint, b: GeoPoint) -> float:
        """Planar distance between two geographic points in this frame."""
        ax, ay = self.to_local(a)
        bx, by = self.to_local(b)
        return math.hypot(bx - ax, by - ay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalFrame(origin={self.origin!r})"
