"""Simple polygons in the local planar frame.

Supports the arbitrary-shaped NFZ extension (paper §VII-B2): a Zone Owner
registers a polygon and the Auditor canonicalizes it to the smallest circle
covering its vertices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import GeometryError
from repro.geo.circle import Circle, smallest_enclosing_circle

Point = tuple[float, float]


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertices in order (either winding)."""

    vertices: tuple[Point, ...] = field(default_factory=tuple)

    def __init__(self, vertices: Sequence[Point]):
        pts = tuple((float(x), float(y)) for x, y in vertices)
        if len(pts) < 3:
            raise GeometryError("a polygon needs at least 3 vertices")
        object.__setattr__(self, "vertices", pts)

    def __len__(self) -> int:
        return len(self.vertices)

    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise winding)."""
        total = 0.0
        pts = self.vertices
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            total += x1 * y2 - x2 * y1
        return total / 2.0

    def area(self) -> float:
        """Absolute polygon area."""
        return abs(self.signed_area())

    def centroid(self) -> Point:
        """Area centroid (falls back to vertex mean for degenerate area)."""
        a = self.signed_area()
        pts = self.vertices
        if abs(a) < 1e-12:
            return (sum(p[0] for p in pts) / len(pts), sum(p[1] for p in pts) / len(pts))
        cx = cy = 0.0
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            cross = x1 * y2 - x2 * y1
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        return (cx / (6.0 * a), cy / (6.0 * a))

    def contains(self, point: Point) -> bool:
        """Point-in-polygon by ray casting (boundary counts as inside)."""
        x, y = point
        pts = self.vertices
        inside = False
        for i, (x1, y1) in enumerate(pts):
            x2, y2 = pts[(i + 1) % len(pts)]
            if _on_segment((x, y), (x1, y1), (x2, y2)):
                return True
            if (y1 > y) != (y2 > y):
                x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_cross:
                    inside = not inside
        return inside

    def is_convex(self) -> bool:
        """Whether the polygon is convex (collinear runs allowed)."""
        pts = self.vertices
        sign = 0
        for i in range(len(pts)):
            ox, oy = pts[i]
            ax, ay = pts[(i + 1) % len(pts)]
            bx, by = pts[(i + 2) % len(pts)]
            cross = (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)
            if abs(cross) < 1e-12:
                continue
            current = 1 if cross > 0 else -1
            if sign == 0:
                sign = current
            elif sign != current:
                return False
        return True

    def bounding_circle(self) -> Circle:
        """Smallest circle covering all vertices (Auditor canonical form)."""
        return smallest_enclosing_circle(self.vertices)

    def perimeter(self) -> float:
        """Total edge length."""
        pts = self.vertices
        return sum(math.dist(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts)))


def _on_segment(p: Point, a: Point, b: Point, tol: float = 1e-9) -> bool:
    """Whether ``p`` lies on the closed segment ``ab``."""
    cross = (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0])
    if abs(cross) > tol * max(1.0, math.dist(a, b)):
        return False
    dot = (p[0] - a[0]) * (b[0] - a[0]) + (p[1] - a[1]) * (b[1] - a[1])
    return -tol <= dot <= math.dist(a, b) ** 2 + tol
