"""Circles in the local planar frame, plus Welzl's smallest enclosing circle.

Circular shapes model no-fly-zones (paper §III-A).  The smallest enclosing
circle supports the arbitrary-polygon NFZ extension (§VII-B2), where the
Auditor replaces an n-vertex polygon by the minimal circle covering its
vertices; the paper cites Megiddo's linear-time construction, and we use
Welzl's randomized algorithm which has the same expected linear bound and a
far simpler implementation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import GeometryError

Point = tuple[float, float]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Circle:
    """A circle (disk) in the local planar frame, metres."""

    x: float
    y: float
    r: float

    def __post_init__(self) -> None:
        if self.r < 0:
            raise GeometryError(f"circle radius must be non-negative, got {self.r}")

    @property
    def center(self) -> Point:
        """Centre as an ``(x, y)`` tuple."""
        return (self.x, self.y)

    def contains(self, point: Point, tol: float = _EPS) -> bool:
        """Whether ``point`` lies inside or on the circle (within ``tol``)."""
        return math.hypot(point[0] - self.x, point[1] - self.y) <= self.r + tol

    def distance_to_center(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the circle centre."""
        return math.hypot(point[0] - self.x, point[1] - self.y)

    def distance_to_boundary(self, point: Point) -> float:
        """Signed distance from ``point`` to the circle boundary.

        Positive outside the circle, negative inside.  This is the ``D_i``
        of the adaptive sampling conditions (paper eq. 2/3).
        """
        return self.distance_to_center(point) - self.r

    def intersects_circle(self, other: "Circle") -> bool:
        """Whether the two closed disks share at least one point."""
        d = math.hypot(other.x - self.x, other.y - self.y)
        return d <= self.r + other.r + _EPS

    def intersects_segment(self, a: Point, b: Point) -> bool:
        """Whether the closed disk intersects the closed segment ``ab``."""
        return _point_segment_distance(self.center, a, b) <= self.r + _EPS


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from point ``p`` to the closed segment ``ab``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq <= _EPS * _EPS:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def _circle_from_two(a: Point, b: Point) -> Circle:
    cx = (a[0] + b[0]) / 2.0
    cy = (a[1] + b[1]) / 2.0
    r = math.hypot(a[0] - b[0], a[1] - b[1]) / 2.0
    return Circle(cx, cy, r)


def _circle_from_three(a: Point, b: Point, c: Point) -> Circle | None:
    """Circumcircle of three points, or None if they are collinear."""
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) <= _EPS:
        return None
    ux = ((ax * ax + ay * ay) * (by - cy) + (bx * bx + by * by) * (cy - ay)
          + (cx * cx + cy * cy) * (ay - by)) / d
    uy = ((ax * ax + ay * ay) * (cx - bx) + (bx * bx + by * by) * (ax - cx)
          + (cx * cx + cy * cy) * (bx - ax)) / d
    r = math.hypot(ax - ux, ay - uy)
    return Circle(ux, uy, r)


def _trivial_circle(boundary: Sequence[Point]) -> Circle:
    if not boundary:
        return Circle(0.0, 0.0, 0.0)
    if len(boundary) == 1:
        return Circle(boundary[0][0], boundary[0][1], 0.0)
    if len(boundary) == 2:
        return _circle_from_two(boundary[0], boundary[1])
    # Try all pairs first: the minimal circle through three points may be
    # determined by only two of them.
    for i in range(3):
        for j in range(i + 1, 3):
            c = _circle_from_two(boundary[i], boundary[j])
            if all(c.contains(p, tol=1e-7 * max(1.0, c.r)) for p in boundary):
                return c
    circ = _circle_from_three(*boundary[:3])
    if circ is None:
        # Collinear: the two extreme points determine the circle.
        pts = sorted(boundary)
        return _circle_from_two(pts[0], pts[-1])
    return circ


def smallest_enclosing_circle(points: Iterable[Point], seed: int = 0) -> Circle:
    """Smallest circle enclosing all ``points`` (Welzl, expected O(n)).

    Used by the Auditor to canonicalize arbitrary polygon NFZs at
    registration time (paper §VII-B2).  Deterministic for a given ``seed``.

    Raises:
        GeometryError: if ``points`` is empty.
    """
    pts = [(float(x), float(y)) for x, y in points]
    if not pts:
        raise GeometryError("smallest_enclosing_circle requires at least one point")
    rng = random.Random(seed)
    rng.shuffle(pts)
    # Iterative move-to-front Welzl to avoid recursion limits on large inputs.
    circle = Circle(pts[0][0], pts[0][1], 0.0)
    for i, p in enumerate(pts):
        if circle.contains(p, tol=1e-7 * max(1.0, circle.r)):
            continue
        circle = Circle(p[0], p[1], 0.0)
        for j in range(i):
            q = pts[j]
            if circle.contains(q, tol=1e-7 * max(1.0, circle.r)):
                continue
            circle = _circle_from_two(p, q)
            for k in range(j):
                s = pts[k]
                if circle.contains(s, tol=1e-7 * max(1.0, circle.r)):
                    continue
                circle = _trivial_circle([p, q, s])
    return circle
