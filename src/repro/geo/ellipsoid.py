"""3-D possible-traveling-range ellipsoids and cylinder NFZs (paper §VII-B1).

The 3-D extension replaces GPS samples by ``(x, y, z, t)`` 4-tuples and NFZs
by vertical cylinders; a sample pair proves alibi when the travel-range
ellipsoid (foci at the two sample positions, focal-sum ``v_max * dt``) does
not intersect the cylinder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.errors import GeometryError

Point3 = tuple[float, float, float]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Cylinder:
    """A vertical cylindrical no-fly region.

    The region spans ``z in [0, height]`` above the ground and radius ``r``
    around the axis through ``(x, y)`` — the natural reading of the paper's
    ``z' = (lat, lon, alt, r)`` 4-tuple.
    """

    x: float
    y: float
    r: float
    height: float

    def __post_init__(self) -> None:
        if self.r < 0:
            raise GeometryError("cylinder radius must be non-negative")
        if self.height < 0:
            raise GeometryError("cylinder height must be non-negative")

    def contains(self, point: Point3, tol: float = _EPS) -> bool:
        """Whether ``point`` lies inside the closed cylinder."""
        px, py, pz = point
        if not (-tol <= pz <= self.height + tol):
            return False
        return math.hypot(px - self.x, py - self.y) <= self.r + tol

    def distance_to(self, point: Point3) -> float:
        """Euclidean distance from ``point`` to the closed cylinder (0 inside)."""
        px, py, pz = point
        radial = max(0.0, math.hypot(px - self.x, py - self.y) - self.r)
        if pz < 0.0:
            axial = -pz
        elif pz > self.height:
            axial = pz - self.height
        else:
            axial = 0.0
        return math.hypot(radial, axial)


@dataclass(frozen=True, slots=True)
class TravelRangeEllipsoid:
    """The set of 3-D positions reachable between two timestamped samples."""

    f1: Point3
    f2: Point3
    focal_sum: float

    def __post_init__(self) -> None:
        if self.focal_sum < 0:
            raise GeometryError("focal_sum must be non-negative")

    @property
    def focal_distance(self) -> float:
        """Straight-line distance between the two sample positions."""
        return math.dist(self.f1, self.f2)

    @property
    def is_feasible(self) -> bool:
        """Whether the ellipsoid is non-empty (motion physically possible)."""
        return self.focal_distance <= self.focal_sum + _EPS

    def contains(self, point: Point3, tol: float = _EPS) -> bool:
        """Whether ``point`` could have been visited between the samples."""
        return self.focal_sum_at(point) <= self.focal_sum + tol

    def focal_sum_at(self, point: Point3) -> float:
        """``|p - f1| + |p - f2|`` for an arbitrary 3-D point."""
        return math.dist(point, self.f1) + math.dist(point, self.f2)


def ellipsoid_cylinder_disjoint_conservative(ellipsoid: TravelRangeEllipsoid,
                                             cylinder: Cylinder) -> bool:
    """Sound conservative disjointness: ``D1 + D2 > focal_sum``.

    ``D_i`` is the Euclidean distance from focus ``i`` to the cylinder; by
    the triangle inequality this lower-bounds the minimum focal sum over the
    cylinder, so True answers are always correct.
    """
    d1 = cylinder.distance_to(ellipsoid.f1)
    d2 = cylinder.distance_to(ellipsoid.f2)
    return d1 + d2 > ellipsoid.focal_sum + _EPS


def min_focal_sum_over_cylinder(ellipsoid: TravelRangeEllipsoid,
                                cylinder: Cylinder) -> float:
    """Minimum focal sum over the closed cylinder (convex program).

    The focal sum is convex and the cylinder is a convex body, so SLSQP from
    the cylinder's centroid converges to the global minimum.
    """
    def objective(p: np.ndarray) -> float:
        return (math.dist((p[0], p[1], p[2]), ellipsoid.f1)
                + math.dist((p[0], p[1], p[2]), ellipsoid.f2))

    constraints = [
        {"type": "ineq",
         "fun": lambda p: cylinder.r ** 2 - (p[0] - cylinder.x) ** 2 - (p[1] - cylinder.y) ** 2},
        {"type": "ineq", "fun": lambda p: p[2]},
        {"type": "ineq", "fun": lambda p: cylinder.height - p[2]},
    ]
    start = np.array([cylinder.x, cylinder.y, cylinder.height / 2.0])
    result = optimize.minimize(objective, start, method="SLSQP",
                               constraints=constraints,
                               options={"maxiter": 200, "ftol": 1e-10})
    return float(result.fun)


def ellipsoid_cylinder_disjoint(ellipsoid: TravelRangeEllipsoid,
                                cylinder: Cylinder,
                                exact: bool = False) -> bool:
    """Whether the travel-range ellipsoid misses the cylinder NFZ.

    Args:
        exact: use the convex-program minimum instead of the conservative
            focus-distance bound.
    """
    if exact:
        return min_focal_sum_over_cylinder(ellipsoid, cylinder) > ellipsoid.focal_sum + _EPS
    return ellipsoid_cylinder_disjoint_conservative(ellipsoid, cylinder)
