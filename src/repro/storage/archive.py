"""Auditor state snapshots: registries, zones, and retained evidence.

A single JSON document captures everything the AliDrone Server needs to
survive a restart: registered drones (public keys only), registered
zones, the server's encryption keypair (this *is* the server's secret
store), retained submissions with their verification reports, and the
violation ledger.
"""

from __future__ import annotations

import json
import pathlib

from repro.core.nfz import NoFlyZone
from repro.core.poa import EncryptedPoaRecord
from repro.core.protocol import PoaSubmission
from repro.crypto.keys import (
    private_key_from_bytes,
    private_key_to_bytes,
    public_key_from_bytes,
    public_key_to_bytes,
)
from repro.errors import EncodingError
from repro.server.auditor import AliDroneServer, RetainedSubmission
from repro.server.violations import (
    LedgerEntry,
    ViolationFinding,
    ViolationKind,
)

_FORMAT_VERSION = 1


def _key_hex(key) -> str:
    return public_key_to_bytes(key).hex()


def save_server_state(server: AliDroneServer,
                      path: pathlib.Path | str) -> None:
    """Snapshot the server to a JSON file."""
    drones = []
    for drone_id in sorted(server.drones._drones):
        record = server.drones.lookup(drone_id)
        drones.append({
            "drone_id": record.drone_id,
            "operator_public_key": _key_hex(record.operator_public_key),
            "tee_public_key": _key_hex(record.tee_public_key),
            "operator_name": record.operator_name,
        })
    zones = []
    for record in server.zones.all_zones():
        zones.append({
            "zone_id": record.zone_id,
            "lat": record.zone.lat,
            "lon": record.zone.lon,
            "radius_m": record.zone.radius_m,
            "owner_name": record.owner_name,
        })
    retained = []
    for drone_id, items in server._retained.items():
        for item in items:
            retained.append({
                "drone_id": drone_id,
                "flight_id": item.submission.flight_id,
                "claimed_start": item.submission.claimed_start,
                "claimed_end": item.submission.claimed_end,
                "received_at": item.received_at,
                "status": item.report.status.value,
                "records": [{"ciphertext": r.ciphertext.hex(),
                             "signature": r.signature.hex()}
                            for r in item.submission.records],
            })
    ledger = [{
        "drone_id": entry.finding.drone_id,
        "zone_id": entry.finding.zone_id,
        "incident_time": entry.finding.incident_time,
        "kind": entry.finding.kind.value,
        "detail": entry.finding.detail,
        "fine": entry.fine,
    } for entry in server.ledger]

    document = {
        "version": _FORMAT_VERSION,
        "frame_origin": {"lat": server.frame.origin.lat,
                         "lon": server.frame.origin.lon},
        "encryption_key": private_key_to_bytes(server._encryption_key).hex(),
        "drone_counter": server.drones._counter,
        "zone_counter": server.zones._counter,
        "drones": drones,
        "zones": zones,
        "retained": retained,
        "ledger": ledger,
    }
    pathlib.Path(path).write_text(json.dumps(document, indent=1))


def load_server_state(path: pathlib.Path | str,
                      server: AliDroneServer) -> AliDroneServer:
    """Restore a snapshot into a freshly constructed server.

    The caller supplies a server built with the same frame origin; the
    snapshot's registries, keys, evidence, and ledger replace the fresh
    server's state.  Raises :class:`EncodingError` on malformed input.
    """
    try:
        document = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise EncodingError(f"unreadable server snapshot: {exc}") from exc
    if document.get("version") != _FORMAT_VERSION:
        raise EncodingError("unsupported server snapshot version")
    origin = document["frame_origin"]
    if (abs(origin["lat"] - server.frame.origin.lat) > 1e-9
            or abs(origin["lon"] - server.frame.origin.lon) > 1e-9):
        raise EncodingError("snapshot frame origin does not match the server")

    try:
        server._encryption_key = private_key_from_bytes(
            bytes.fromhex(document["encryption_key"]))
        for entry in document["drones"]:
            record = server.drones.register(
                public_key_from_bytes(
                    bytes.fromhex(entry["operator_public_key"])),
                public_key_from_bytes(bytes.fromhex(entry["tee_public_key"])),
                entry["operator_name"])
            if record.drone_id != entry["drone_id"]:
                raise EncodingError("drone id sequence mismatch in snapshot")
        for entry in document["zones"]:
            record = server.zones.register(
                NoFlyZone(entry["lat"], entry["lon"], entry["radius_m"]),
                owner_name=entry["owner_name"],
                proof_of_ownership="<restored>")
            if record.zone_id != entry["zone_id"]:
                raise EncodingError("zone id sequence mismatch in snapshot")
        server.drones._counter = document["drone_counter"]
        server.zones._counter = document["zone_counter"]

        for entry in document["retained"]:
            records = tuple(
                EncryptedPoaRecord(ciphertext=bytes.fromhex(r["ciphertext"]),
                                   signature=bytes.fromhex(r["signature"]))
                for r in entry["records"])
            submission = PoaSubmission(
                drone_id=entry["drone_id"], flight_id=entry["flight_id"],
                records=records, claimed_start=entry["claimed_start"],
                claimed_end=entry["claimed_end"])
            # Re-verify on restore rather than trusting the stored verdict;
            # the stored status is kept for audit-trail comparison.
            from repro.core.poa import decrypt_poa
            poa = decrypt_poa(records, server._encryption_key)
            drone = server.drones.lookup(entry["drone_id"])
            report = server.verifier.verify(
                poa, drone.tee_public_key,
                [record.zone for record in server.zones.all_zones()])
            if report.status.value != entry["status"]:
                raise EncodingError(
                    f"stored verdict {entry['status']!r} does not reproduce "
                    f"({report.status.value!r}) — snapshot tampered?")
            server._retained.setdefault(entry["drone_id"], []).append(
                RetainedSubmission(submission=submission, poa=poa,
                                   report=report,
                                   received_at=entry["received_at"]))
        for entry in document["ledger"]:
            finding = ViolationFinding(
                drone_id=entry["drone_id"], zone_id=entry["zone_id"],
                incident_time=entry["incident_time"], violation=True,
                kind=ViolationKind(entry["kind"]), detail=entry["detail"])
            server.ledger._entries.append(
                LedgerEntry(finding=finding, fine=entry["fine"]))
            server.ledger._offences[entry["drone_id"]] = (
                server.ledger._offences.get(entry["drone_id"], 0) + 1)
    except (KeyError, ValueError, TypeError) as exc:
        raise EncodingError(f"corrupt server snapshot: {exc}") from exc
    return server
