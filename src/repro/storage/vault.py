"""The drone's local PoA vault (paper §V-C).

One directory per vault; one file per flight, containing a JSON header
(flight id, window, policy) and the hex-encoded Adapter-encrypted records.
Records are ciphertext under the Auditor's key, so the vault can sit on
the drone's untrusted SD card: a thief learns nothing, and tampering is
caught by the TEE signatures at verification time.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass
from typing import Sequence

from repro.core.poa import EncryptedPoaRecord
from repro.errors import EncodingError

_FILENAME_SAFE = re.compile(r"[^A-Za-z0-9._-]")
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class VaultEntry:
    """One stored flight."""

    flight_id: str
    policy: str
    claimed_start: float
    claimed_end: float
    records: tuple[EncryptedPoaRecord, ...]


class PoaVault:
    """Append-only per-flight PoA storage rooted at a directory."""

    def __init__(self, root: pathlib.Path | str):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, flight_id: str) -> pathlib.Path:
        safe = _FILENAME_SAFE.sub("_", flight_id)
        return self.root / f"{safe}.poa.json"

    def store(self, flight_id: str, policy: str, claimed_start: float,
              claimed_end: float,
              records: Sequence[EncryptedPoaRecord]) -> pathlib.Path:
        """Persist one flight; refuses to overwrite (PoAs are evidence)."""
        path = self._path_for(flight_id)
        if path.exists():
            raise EncodingError(f"flight {flight_id!r} is already stored")
        document = {
            "version": _FORMAT_VERSION,
            "flight_id": flight_id,
            "policy": policy,
            "claimed_start": claimed_start,
            "claimed_end": claimed_end,
            "records": [{"ciphertext": r.ciphertext.hex(),
                         "signature": r.signature.hex()} for r in records],
        }
        path.write_text(json.dumps(document, indent=1))
        return path

    def load(self, flight_id: str) -> VaultEntry:
        """Load one flight; raises :class:`EncodingError` if absent/corrupt."""
        path = self._path_for(flight_id)
        if not path.exists():
            raise EncodingError(f"no stored flight {flight_id!r}")
        return self._parse(path)

    @staticmethod
    def _parse(path: pathlib.Path) -> VaultEntry:
        try:
            document = json.loads(path.read_text())
            if document.get("version") != _FORMAT_VERSION:
                raise EncodingError(
                    f"unsupported vault format {document.get('version')!r}")
            records = tuple(
                EncryptedPoaRecord(ciphertext=bytes.fromhex(r["ciphertext"]),
                                   signature=bytes.fromhex(r["signature"]))
                for r in document["records"])
            return VaultEntry(flight_id=document["flight_id"],
                              policy=document["policy"],
                              claimed_start=float(document["claimed_start"]),
                              claimed_end=float(document["claimed_end"]),
                              records=records)
        except (KeyError, ValueError, TypeError) as exc:
            raise EncodingError(f"corrupt vault file {path.name}: {exc}") from exc

    def flights(self) -> list[str]:
        """Stored flight ids, sorted."""
        ids = []
        for path in sorted(self.root.glob("*.poa.json")):
            try:
                ids.append(self._parse(path).flight_id)
            except EncodingError:
                continue  # skip corrupt files when listing
        return ids

    def delete(self, flight_id: str) -> None:
        """Remove a stored flight (after the retention window)."""
        path = self._path_for(flight_id)
        if not path.exists():
            raise EncodingError(f"no stored flight {flight_id!r}")
        path.unlink()
