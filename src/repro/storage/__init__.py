"""Persistence: the drone's local PoA vault and the Auditor's archive.

The prototype "persists the ciphertext along with the signature in the
local storage" (§V-C) and the server "should save the PoAs for a couple of
days" (§IV-C2).  This package gives both sides durable, restart-safe
storage: an append-only flight vault on the drone and a JSON snapshot
archive for the Auditor's registries and retained evidence.
"""

from repro.storage.vault import PoaVault, VaultEntry
from repro.storage.archive import save_server_state, load_server_state

__all__ = [
    "PoaVault",
    "VaultEntry",
    "save_server_state",
    "load_server_state",
]
