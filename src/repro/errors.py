"""Exception hierarchy for the AliDrone reproduction.

Every error raised by :mod:`repro` derives from :class:`AliDroneError` so that
callers can catch the whole family with a single ``except`` clause while still
being able to distinguish protocol violations from, say, crypto failures.
"""

from __future__ import annotations


class AliDroneError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(AliDroneError):
    """A component was constructed or configured with invalid parameters."""


class GeometryError(AliDroneError):
    """Invalid geometric input (e.g. negative radius, degenerate shape)."""


class CryptoError(AliDroneError):
    """Base class for cryptographic failures."""


class KeyGenerationError(CryptoError):
    """RSA/DH key generation failed (e.g. modulus too small)."""


class SignatureError(CryptoError):
    """A signature could not be produced or did not verify."""


class EncryptionError(CryptoError):
    """Encryption or decryption failed (bad padding, message too long...)."""


class EncodingError(CryptoError):
    """Malformed serialized key, DER structure, or protocol message."""


class SchemeError(CryptoError):
    """A sample-authentication scheme was misused (unknown id, bad blob)."""


class TeeError(AliDroneError):
    """Base class for Trusted Execution Environment failures."""


class WorldIsolationError(TeeError):
    """Normal-world code attempted to touch secure-world state directly.

    This is the executable form of the TrustZone hardware isolation
    guarantee: raising here is the simulator's analogue of a bus fault on a
    secure-world physical address.
    """


class TrustedAppError(TeeError):
    """A Trusted Application rejected a command or failed internally."""


class TeeStorageError(TeeError):
    """Sealed-storage lookup or integrity check failed."""


class GpsError(AliDroneError):
    """Base class for GPS receiver / NMEA failures."""


class NmeaError(GpsError):
    """An NMEA 0183 sentence was malformed or failed its checksum."""


class NoFixError(GpsError):
    """The receiver has no position fix / no fresh measurement available."""


class ProtocolError(AliDroneError):
    """An AliDrone protocol message was malformed or out of sequence."""


class RegistrationError(ProtocolError):
    """Drone or zone registration was rejected by the Auditor."""


class AuthenticationError(ProtocolError):
    """A signed protocol message failed authentication."""


class VerificationError(ProtocolError):
    """A Proof-of-Alibi failed verification (forged, tampered, or malformed)."""


class InsufficientAlibiError(VerificationError):
    """A PoA verified cryptographically but does not prove NFZ avoidance."""


class SimulationError(AliDroneError):
    """The simulation kernel was driven incorrectly (e.g. time going back)."""


class TransientError(AliDroneError):
    """A failure expected to clear on its own — the retry layer's contract.

    :mod:`repro.faults.retry` retries exactly this family by default;
    everything else (bad signatures, malformed messages, configuration
    mistakes) is permanent and propagates on the first attempt.
    """


class ServiceUnavailableError(TransientError):
    """The Auditor service could not take the request right now."""


class LinkTimeoutError(TransientError):
    """A network operation did not complete within its attempt timeout."""


class TeeTransientError(TeeError, TransientError):
    """A TEE entry (SMC/TA dispatch) failed transiently; retry may succeed."""
