"""Extensions from the paper's discussion section (§VII).

* 3-D physical model (ellipsoid vs cylinder NFZs) — §VII-B1
* Arbitrary polygon NFZs via smallest enclosing circle — §VII-B2
* Privacy-preserving verification with one-time keys — §VII-B3
* Sign-all-traces-at-once batching — §VII-A1(b)
* Symmetric (HMAC) signing with an ephemeral TEE-Auditor key — §VII-A1(a)
"""

import uuid as _uuid

from repro.crypto.rsa import RsaPrivateKey
from repro.tee.attestation import TrustZoneDevice
from repro.tee.optee import sign_trusted_app

from repro.extensions.threed import (
    pair_is_sufficient_3d,
    alibi_is_sufficient_3d,
    travel_ellipsoid,
)
from repro.extensions.arbitrary_zones import (
    register_polygon_zone,
    overapproximation_ratio,
)
from repro.extensions.privacy import (
    PrivatePoa,
    build_private_poa,
    keys_for_incident,
    verify_private_disclosure,
)
from repro.extensions.batch_signing import (
    BatchGpsSamplerTA,
    BatchSignedPoa,
    CMD_RECORD_GPS,
    CMD_FINALIZE_BATCH,
    verify_batch_poa,
)
from repro.extensions.symmetric import (
    SymmetricGpsSamplerTA,
    SymmetricSignedSample,
    AuditorFlightKey,
    CMD_INIT_FLIGHT_KEY,
    CMD_GET_GPS_AUTH_SYM,
)


def install_extension_ta(device: TrustZoneDevice, ta_factory,
                         vendor_key: RsaPrivateKey) -> _uuid.UUID:
    """Sign an extension TA with the vendor key and install it.

    Only the manufacturer (holder of the vendor signing key used at
    :func:`repro.tee.provision_device` time) can do this — the core rejects
    images signed with any other key.
    """
    image = sign_trusted_app(ta_factory, ta_factory.UUID, vendor_key)
    device.core.ta_store.install(image)
    return ta_factory.UUID


__all__ = [
    "pair_is_sufficient_3d",
    "alibi_is_sufficient_3d",
    "travel_ellipsoid",
    "register_polygon_zone",
    "overapproximation_ratio",
    "PrivatePoa",
    "build_private_poa",
    "keys_for_incident",
    "verify_private_disclosure",
    "BatchGpsSamplerTA",
    "BatchSignedPoa",
    "CMD_RECORD_GPS",
    "CMD_FINALIZE_BATCH",
    "verify_batch_poa",
    "SymmetricGpsSamplerTA",
    "SymmetricSignedSample",
    "AuditorFlightKey",
    "CMD_INIT_FLIGHT_KEY",
    "CMD_GET_GPS_AUTH_SYM",
    "install_extension_ta",
]
