"""Symmetric sample authentication with ephemeral flight keys (§VII-A1(a)).

The bottleneck in Table II is the per-sample RSA signature.  This
extension negotiates a per-flight symmetric key between the drone's TEE
and the Auditor via Diffie-Hellman — the exchange runs *inside* the TA, so
the operator only relays public values and never sees the key — and then
authenticates samples with HMAC-SHA256, three orders of magnitude cheaper
than an RSA signature.
"""

from __future__ import annotations

import random
import uuid as uuid_module
from dataclasses import dataclass
from typing import Any

from repro.core.samples import GpsSample, Trace
from repro.crypto.hmac_sign import hmac_sign, hmac_verify
from repro.crypto.keyexchange import DiffieHellman, derive_session_key
from repro.errors import TrustedAppError, VerificationError
from repro.tee.gps_driver import SecureGpsDriver
from repro.tee.trusted_app import TrustedApplication
from repro.tee.worlds import SecureKeyHandle

CMD_INIT_FLIGHT_KEY = "InitFlightKey"
CMD_GET_GPS_AUTH_SYM = "GetGPSAuthSym"

SYMMETRIC_SAMPLER_UUID = uuid_module.UUID("c3a3e8a4-7d50-4b81-b6de-2a1f0e6c4d11")


@dataclass(frozen=True, slots=True)
class SymmetricSignedSample:
    """One HMAC-authenticated sample."""

    payload: bytes
    tag: bytes

    @property
    def sample(self) -> GpsSample:
        """The decoded GPS sample."""
        return GpsSample.from_signed_payload(self.payload)


class SymmetricGpsSamplerTA(TrustedApplication):
    """GPS Sampler variant using an ephemeral HMAC key.

    ``InitFlightKey`` takes the Auditor's DH public value (relayed by the
    operator), completes the exchange inside the secure world, and returns
    the TA's public value.  ``GetGPSAuthSym`` then authenticates samples
    under the derived key.
    """

    UUID = SYMMETRIC_SAMPLER_UUID

    def __init__(self) -> None:
        super().__init__()
        self._flight_key: SecureKeyHandle | None = None
        self._dh_seed: int | None = None

    def open_session(self, params: dict[str, Any]) -> None:
        # Deterministic tests may pin the TA's DH randomness; production
        # sessions leave it unset and get SystemRandom.
        self._dh_seed = params.get("dh_seed")

    def close_session(self) -> None:
        self._flight_key = None

    def invoke_command(self, command: str, params: dict[str, Any]) -> Any:
        if command == CMD_INIT_FLIGHT_KEY:
            return self._init_flight_key(params)
        if command == CMD_GET_GPS_AUTH_SYM:
            return self._get_gps_auth_sym()
        raise TrustedAppError(f"symmetric sampler: unknown command {command!r}")

    def _init_flight_key(self, params: dict[str, Any]) -> int:
        peer_public = params.get("auditor_public_value")
        flight_id = params.get("flight_id", b"")
        if not isinstance(peer_public, int):
            raise TrustedAppError("InitFlightKey needs the Auditor's DH value")
        rng = random.Random(self._dh_seed) if self._dh_seed is not None else None
        exchange = DiffieHellman(rng=rng)
        key = derive_session_key(exchange.shared_secret(peer_public),
                                 b"alidrone-flight:" + bytes(flight_id))
        self._flight_key = SecureKeyHandle(key, self.core.monitor.state,
                                           "ephemeral flight key")
        self.core.op_counters["dh_exchanges"] += 1
        return exchange.public_value

    def _get_gps_auth_sym(self) -> dict[str, bytes]:
        if self._flight_key is None:
            raise TrustedAppError("flight key not initialized")
        driver: SecureGpsDriver = self.kernel_service(SecureGpsDriver.SERVICE_NAME)
        fix = driver.get_gps()
        sample = GpsSample(lat=fix.lat, lon=fix.lon, t=fix.time,
                           alt=fix.altitude_m)
        payload = sample.to_signed_payload()
        tag = hmac_sign(self._flight_key.reveal(), payload)
        self.core.op_counters["hmac_sign"] += 1
        return {"payload": payload, "tag": tag}


class AuditorFlightKey:
    """The Auditor's half of the per-flight key exchange."""

    def __init__(self, flight_id: bytes,
                 rng: random.Random | None = None):
        self.flight_id = bytes(flight_id)
        self._exchange = DiffieHellman(rng=rng)
        self._key: bytes | None = None

    @property
    def public_value(self) -> int:
        """Sent to the drone (via the operator) before the flight."""
        return self._exchange.public_value

    def complete(self, ta_public_value: int) -> None:
        """Finish the exchange with the TA's public value."""
        self._key = derive_session_key(
            self._exchange.shared_secret(ta_public_value),
            b"alidrone-flight:" + self.flight_id)

    def verify_entries(self, entries: list[SymmetricSignedSample]) -> Trace:
        """Verify every tag and return the decoded trace.

        Raises:
            VerificationError: the exchange is incomplete or a tag fails.
        """
        if self._key is None:
            raise VerificationError("flight key exchange not completed")
        for i, entry in enumerate(entries):
            if not hmac_verify(self._key, entry.payload, entry.tag):
                raise VerificationError(f"sample {i} failed HMAC verification")
        return Trace(entry.sample for entry in entries)
