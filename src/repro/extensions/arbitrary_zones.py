"""Arbitrary-shape NFZ registration (paper §VII-B2).

A Zone Owner describes their property as a polygon; the Auditor computes
the smallest circle covering its vertices once, at registration, and
enforces that circle.  Enforcement against the circle is at least as
strict as against the (convex hull of the) polygon, at the price of some
over-approximation quantified by :func:`overapproximation_ratio`.
"""

from __future__ import annotations

import math

from repro.core.nfz import NoFlyZone, PolygonNfz
from repro.core.protocol import ZoneRegistrationRequest
from repro.server.auditor import AliDroneServer


def register_polygon_zone(server: AliDroneServer, polygon: PolygonNfz,
                          proof_of_ownership: str,
                          owner_name: str = "") -> tuple[str, NoFlyZone]:
    """Canonicalize a polygon NFZ to its covering circle and register it.

    Returns the issued zone id and the canonical circular zone the Auditor
    will actually enforce.
    """
    canonical = polygon.canonical_circle(server.frame)
    zone_id = server.register_zone(ZoneRegistrationRequest(
        zone=canonical, proof_of_ownership=proof_of_ownership,
        owner_name=owner_name))
    return zone_id, canonical


def overapproximation_ratio(polygon: PolygonNfz, frame) -> float:
    """Circle area over polygon area (>= 1; lower is tighter).

    For long thin polygons the covering circle can be much larger than the
    property — the cost of keeping the verifier's geometry circular.
    """
    planar = polygon.to_polygon(frame)
    area = planar.area()
    if area <= 0.0:
        return math.inf
    circle = planar.bounding_circle()
    return math.pi * circle.r ** 2 / area
