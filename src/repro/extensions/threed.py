"""3-D Proof-of-Alibi (paper §VII-B1).

Samples become ``(lat, lon, alt, t)`` 4-tuples, NFZs become vertical
cylinders, and the travel range becomes an ellipsoid.  A drone may legally
overfly a zone above its ceiling — which the 2-D model cannot express.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.core.nfz import CylinderNfz
from repro.core.samples import GpsSample
from repro.errors import ConfigurationError
from repro.geo.ellipsoid import (
    TravelRangeEllipsoid,
    ellipsoid_cylinder_disjoint,
)
from repro.geo.geodesy import LocalFrame
from repro.units import FAA_MAX_SPEED_MPS

Method = Literal["conservative", "exact"]


def travel_ellipsoid(s1: GpsSample, s2: GpsSample, frame: LocalFrame,
                     vmax_mps: float = FAA_MAX_SPEED_MPS) -> TravelRangeEllipsoid:
    """The 3-D possible-traveling range for a pair of altitude samples."""
    if s1.alt is None or s2.alt is None:
        raise ConfigurationError("3-D sufficiency requires altitude samples")
    if s2.t < s1.t:
        raise ConfigurationError("sample pair out of order")
    x1, y1 = s1.local_position(frame)
    x2, y2 = s2.local_position(frame)
    return TravelRangeEllipsoid(f1=(x1, y1, s1.alt), f2=(x2, y2, s2.alt),
                                focal_sum=vmax_mps * (s2.t - s1.t))


def pair_is_sufficient_3d(s1: GpsSample, s2: GpsSample,
                          zones: Sequence[CylinderNfz], frame: LocalFrame,
                          vmax_mps: float = FAA_MAX_SPEED_MPS,
                          method: Method = "conservative") -> bool:
    """Whether the ellipsoid misses every cylinder NFZ."""
    ellipsoid = travel_ellipsoid(s1, s2, frame, vmax_mps)
    exact = method == "exact"
    if method not in ("conservative", "exact"):
        raise ConfigurationError(f"unknown method {method!r}")
    return all(ellipsoid_cylinder_disjoint(ellipsoid, z.to_cylinder(frame),
                                           exact=exact)
               for z in zones)


def alibi_is_sufficient_3d(samples: Sequence[GpsSample],
                           zones: Sequence[CylinderNfz], frame: LocalFrame,
                           vmax_mps: float = FAA_MAX_SPEED_MPS,
                           method: Method = "conservative") -> bool:
    """Equation (1) lifted to three dimensions."""
    if len(samples) < 2:
        return not zones
    return all(pair_is_sufficient_3d(a, b, zones, frame, vmax_mps, method)
               for a, b in zip(samples, samples[1:]))
