"""Sign-all-traces-at-once batching (paper §VII-A1(b)).

Instead of one RSA signature per sample, the TA buffers sample payloads in
secure memory and signs a digest of the whole trace once at flight end.
Feasible because flights are short (<= 30 minutes) and samples are small;
the trade-offs are secure-memory growth (see
:class:`repro.perf.memory.MemoryModel`) and the loss of mid-flight
incremental verifiability.
"""

from __future__ import annotations

import uuid as uuid_module
from dataclasses import dataclass
from typing import Any

from repro.core.samples import GpsSample, Trace
from repro.crypto.digest import framed_sha256
from repro.crypto.keys import private_key_from_bytes, public_key_to_bytes
from repro.crypto.pkcs1 import sign_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.schemes import SCHEME_BATCH
from repro.errors import TrustedAppError
from repro.tee.gps_driver import SecureGpsDriver
from repro.tee.gps_sampler_ta import SIGN_KEY_ENTRY
from repro.tee.trusted_app import TrustedApplication
from repro.tee.worlds import SecureKeyHandle

CMD_RECORD_GPS = "RecordGPS"
CMD_FINALIZE_BATCH = "FinalizeBatch"

BATCH_SAMPLER_UUID = uuid_module.UUID("9b1b5c02-51a0-4c27-9c3e-8f27d6a1c9aa")


def batch_digest(payloads: tuple[bytes, ...]) -> bytes:
    """The signed digest: SHA-256 over length-framed payload concatenation.

    Length framing prevents splice ambiguity between adjacent payloads;
    the framing itself is shared with the hash-chain scheme via
    :func:`repro.crypto.digest.framed_sha256`.
    """
    return framed_sha256(payloads)


@dataclass(frozen=True)
class BatchSignedPoa:
    """A whole trace under a single TEE signature."""

    payloads: tuple[bytes, ...]
    signature: bytes

    def verify(self, tee_public_key: RsaPublicKey,
               hash_name: str = "sha1") -> bool:
        """Whether the batch signature verifies under ``T+``."""
        return verify_pkcs1_v15(tee_public_key, batch_digest(self.payloads),
                                self.signature, hash_name)

    def trace(self) -> Trace:
        """The decoded alibi."""
        return Trace(GpsSample.from_signed_payload(p) for p in self.payloads)

    def __len__(self) -> int:
        return len(self.payloads)


def verify_batch_poa(batch: "BatchSignedPoa", tee_public_key: RsaPublicKey,
                     zones, frame, vmax_mps: float | None = None,
                     hash_name: str = "sha1",
                     method: str = "conservative"):
    """Auditor-side verification of a batch-signed PoA.

    Runs the same pipeline as :class:`repro.core.verification.PoaVerifier`
    — authenticity, well-formedness, feasibility, sufficiency — with the
    per-sample signature stage replaced by the single batch signature.
    Returns a :class:`repro.core.verification.VerificationReport`.
    """
    from repro.core.sufficiency import insufficient_pair_indices
    from repro.core.verification import (
        PoaVerifier,
        VerificationReport,
        VerificationStatus,
    )
    from repro.errors import EncodingError
    from repro.units import FAA_MAX_SPEED_MPS

    vmax = vmax_mps if vmax_mps is not None else FAA_MAX_SPEED_MPS
    if len(batch) == 0:
        return VerificationReport(status=VerificationStatus.REJECTED_EMPTY,
                                  message="batch PoA contains no samples")
    if not batch.verify(tee_public_key, hash_name):
        return VerificationReport(
            status=VerificationStatus.REJECTED_BAD_SIGNATURE,
            sample_count=len(batch),
            message="batch signature failed under T+")
    from repro.errors import GeometryError

    try:
        # Decode payloads directly: Trace() would reject out-of-order
        # timestamps with an exception, but that case must be *reported*.
        samples = [GpsSample.from_signed_payload(p) for p in batch.payloads]
    except (EncodingError, GeometryError) as exc:
        return VerificationReport(status=VerificationStatus.REJECTED_MALFORMED,
                                  sample_count=len(batch), message=str(exc))
    helper = PoaVerifier(frame, vmax_mps=vmax, hash_name=hash_name,
                         method=method)
    if not helper.check_ordering(samples):
        return VerificationReport(
            status=VerificationStatus.REJECTED_MALFORMED,
            sample_count=len(batch),
            message="sample timestamps are not non-decreasing")
    infeasible = helper.infeasible_pairs(samples)
    if infeasible:
        return VerificationReport(
            status=VerificationStatus.REJECTED_INFEASIBLE,
            infeasible_pair_indices=infeasible, sample_count=len(batch),
            message=f"{len(infeasible)} pairs exceed v_max")
    insufficient = insufficient_pair_indices(samples, list(zones), frame,
                                             vmax, method)
    if len(samples) < 2 and zones:
        insufficient = [0]
    if insufficient:
        return VerificationReport(
            status=VerificationStatus.INSUFFICIENT,
            insufficient_pair_indices=insufficient, sample_count=len(batch),
            message=f"{len(insufficient)} pairs cannot rule out NFZ entrance")
    return VerificationReport(status=VerificationStatus.ACCEPTED,
                              sample_count=len(batch))


class BatchGpsSamplerTA(TrustedApplication):
    """A GPS Sampler variant that signs the whole flight once.

    ``RecordGPS`` reads and buffers a sample (no signature — cheap);
    ``FinalizeBatch`` signs the digest of everything buffered and resets
    the buffer for the next flight.
    """

    UUID = BATCH_SAMPLER_UUID

    def __init__(self) -> None:
        super().__init__()
        self._sign_key: SecureKeyHandle | None = None
        self._hash_name = "sha1"
        self._buffer: list[bytes] = []

    def open_session(self, params: dict[str, Any]) -> None:
        hash_name = params.get("hash_name", "sha1")
        if hash_name not in ("sha1", "sha256"):
            raise TrustedAppError(f"unsupported signing hash: {hash_name!r}")
        self._hash_name = hash_name
        storage = self.core.sealed_storage
        if storage is None:
            raise TrustedAppError("device has no sealed storage provisioned")
        key = private_key_from_bytes(storage.unseal(SIGN_KEY_ENTRY))
        self._sign_key = SecureKeyHandle(key, self.core.monitor.state,
                                         "TEE sign key T- (batch)")

    def close_session(self) -> None:
        self._sign_key = None
        self._buffer.clear()

    def invoke_command(self, command: str, params: dict[str, Any]) -> Any:
        if self._sign_key is None:
            raise TrustedAppError("batch sampler session not opened")
        if command == CMD_RECORD_GPS:
            driver: SecureGpsDriver = self.kernel_service(
                SecureGpsDriver.SERVICE_NAME)
            fix = driver.get_gps()
            sample = GpsSample(lat=fix.lat, lon=fix.lon, t=fix.time,
                               alt=fix.altitude_m)
            payload = sample.to_signed_payload()
            self._buffer.append(payload)
            self.core.op_counters["batch_records"] += 1
            # The scheme-tagged TA output: an empty blob, because the
            # authenticator for this scheme is the flight-end signature.
            return {"payload": payload, "signature": b"",
                    "scheme": SCHEME_BATCH, "buffered": len(self._buffer)}
        if command == CMD_FINALIZE_BATCH:
            if not self._buffer:
                raise TrustedAppError("no samples buffered for batch signing")
            payloads = tuple(self._buffer)
            key = self._sign_key.reveal()
            signature = sign_pkcs1_v15(key, batch_digest(payloads),
                                       self._hash_name)
            self.core.op_counters[f"rsa_sign_{key.bits}"] += 1
            self.core.op_counters["batch_finalizations"] += 1
            self._buffer.clear()
            return {"payloads": payloads, "signature": signature,
                    "finalizer": signature, "scheme": SCHEME_BATCH,
                    "public_key": public_key_to_bytes(key.public_key)}
        raise TrustedAppError(f"batch sampler: unknown command {command!r}")

    @property
    def buffered_samples(self) -> int:
        """Secure-memory buffer occupancy (for the memory model)."""
        return len(self._buffer)
