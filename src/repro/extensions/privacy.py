"""Privacy-preserving verification (paper §VII-B3).

Against an honest-but-curious Auditor, the operator encrypts every PoA
sample under its own one-time key before upload.  When a Zone Owner files
an incident report, the operator reveals only the keys for the two samples
bracketing the incident time; the Auditor decrypts exactly that pair,
checks the TEE signatures, and decides sufficiency against the single
accusing zone.  The Auditor thus learns at most two points of the
trajectory per accusation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.sufficiency import pair_is_sufficient
from repro.crypto.onetime import OneTimeKey, onetime_decrypt, onetime_encrypt
from repro.crypto.rsa import RsaPublicKey
from repro.errors import EncryptionError, VerificationError
from repro.geo.geodesy import LocalFrame
from repro.units import FAA_MAX_SPEED_MPS


@dataclass(frozen=True, slots=True)
class PrivatePoaEntry:
    """One uploaded record: one-time-encrypted payload + TEE signature."""

    blob: bytes
    signature: bytes


@dataclass(frozen=True)
class PrivatePoa:
    """The Auditor's view of a privacy-preserving submission."""

    entries: tuple[PrivatePoaEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)


def build_private_poa(poa: ProofOfAlibi,
                      rng: random.Random | None = None,
                      ) -> tuple[PrivatePoa, list[OneTimeKey]]:
    """Encrypt each signed sample under a fresh one-time key.

    Returns the uploadable PoA and the key list, which stays with the
    operator.  Signatures remain cleartext: they are deterministic values
    over the hidden payloads and reveal nothing useful without them.
    """
    rng = rng or random.SystemRandom()
    keys = [OneTimeKey.generate(rng) for _ in range(len(poa))]
    entries = tuple(
        PrivatePoaEntry(blob=onetime_encrypt(key, entry.payload),
                        signature=entry.signature)
        for key, entry in zip(keys, poa))
    return PrivatePoa(entries=entries), keys


def keys_for_incident(poa: ProofOfAlibi, keys: list[OneTimeKey],
                      incident_time: float) -> dict[int, OneTimeKey]:
    """Operator side: the two keys bracketing the incident time.

    Raises:
        VerificationError: the PoA does not cover the incident time (in
            which case the operator has nothing exculpatory to reveal).
    """
    samples = [entry.sample for entry in poa]
    for i in range(len(samples) - 1):
        if samples[i].t <= incident_time <= samples[i + 1].t:
            return {i: keys[i], i + 1: keys[i + 1]}
    raise VerificationError("PoA does not cover the incident time")


def verify_private_disclosure(private_poa: PrivatePoa,
                              disclosed: dict[int, OneTimeKey],
                              tee_public_key: RsaPublicKey,
                              zone: NoFlyZone, incident_time: float,
                              frame: LocalFrame,
                              vmax_mps: float = FAA_MAX_SPEED_MPS,
                              hash_name: str = "sha1") -> bool:
    """Auditor side: adjudicate an incident from a two-key disclosure.

    Returns True when the disclosed pair proves the drone could not have
    entered ``zone`` at ``incident_time``.  Raises
    :class:`VerificationError` when the disclosure is unusable (wrong
    indices, bad decryption, bad signatures, pair not bracketing).
    """
    if len(disclosed) != 2:
        raise VerificationError("disclosure must reveal exactly two samples")
    indices = sorted(disclosed)
    if indices[1] != indices[0] + 1:
        raise VerificationError("disclosed samples must be consecutive")
    samples = []
    for index in indices:
        if not 0 <= index < len(private_poa.entries):
            raise VerificationError(f"disclosed index {index} out of range")
        entry = private_poa.entries[index]
        try:
            payload = onetime_decrypt(disclosed[index], entry.blob)
        except EncryptionError as exc:
            raise VerificationError(f"sample {index} failed decryption") from exc
        signed = SignedSample(payload=payload, signature=entry.signature)
        if not signed.verify(tee_public_key, hash_name):
            raise VerificationError(f"sample {index} failed TEE signature check")
        samples.append(signed.sample)
    first, second = samples
    if not first.t <= incident_time <= second.t:
        raise VerificationError("disclosed pair does not bracket the incident")
    return pair_is_sufficient(first, second, [zone], frame, vmax_mps)
