"""The alibi sufficiency predicate — paper equation (1).

An alibi ``{S_0, ..., S_n}`` is *sufficient* against a zone set ``Z`` when
for every consecutive pair the possible-traveling-range ellipse intersects
no zone: ``E(S_i, S_{i+1}) ∩ (∪ z) = ∅``.  Insufficiency does not prove a
violation — it means the samples cannot *rule one out*, and under the
paper's burden-of-proof model that is enough for the Auditor to act.

Two predicates are exposed via ``method``:

* ``"conservative"`` (default, the paper's): a pair clears zone ``z`` when
  ``D1 + D2 > v_max * dt`` with ``D_i`` the focus-to-boundary distance —
  exactly the quantity in the adaptive-sampling conditions and in the
  §VI-A3 insufficiency counter.
* ``"exact"``: true geometric ellipse/disk disjointness.

Conservative is sound (never passes a pair exact would fail) but may flag
pairs exact would clear; the ablation benchmark quantifies the gap.
"""

from __future__ import annotations

from typing import Iterable, Literal, Sequence

from repro.core.nfz import NoFlyZone
from repro.core.samples import GpsSample
from repro.errors import ConfigurationError, GeometryError
from repro.geo.circle import Circle
from repro.geo.ellipse import (
    _EPS,
    TravelRangeEllipse,
    ellipse_disk_disjoint_conservative,
    ellipse_disk_disjoint_exact,
)
from repro.geo.geodesy import LocalFrame
from repro.geo.proximity import ZoneProximityIndex
from repro.units import FAA_MAX_SPEED_MPS

Method = Literal["conservative", "exact"]


def _zone_circles(zones: Iterable[NoFlyZone], frame: LocalFrame) -> list[Circle]:
    return [zone.to_circle(frame) for zone in zones]


def travel_ellipse(s1: GpsSample, s2: GpsSample, frame: LocalFrame,
                   vmax_mps: float = FAA_MAX_SPEED_MPS) -> TravelRangeEllipse:
    """The possible-traveling-range ellipse for a sample pair."""
    if s2.t < s1.t:
        raise ConfigurationError("sample pair out of order")
    return TravelRangeEllipse(f1=s1.local_position(frame),
                              f2=s2.local_position(frame),
                              focal_sum=vmax_mps * (s2.t - s1.t))


def pair_is_sufficient(s1: GpsSample, s2: GpsSample,
                       zones: Sequence[NoFlyZone], frame: LocalFrame,
                       vmax_mps: float = FAA_MAX_SPEED_MPS,
                       method: Method = "conservative") -> bool:
    """Whether the pair proves non-entrance for *every* zone."""
    ellipse = travel_ellipse(s1, s2, frame, vmax_mps)
    disjoint = _disjoint_predicate(method)
    return all(disjoint(ellipse, circle) for circle in _zone_circles(zones, frame))


def _disjoint_predicate(method: Method):
    if method == "conservative":
        return ellipse_disk_disjoint_conservative
    if method == "exact":
        return ellipse_disk_disjoint_exact
    raise ConfigurationError(f"unknown sufficiency method: {method!r}")


def insufficient_pairs_projected(positions: Sequence[tuple[float, float]],
                                 times: Sequence[float],
                                 circles: Sequence[Circle],
                                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                                 method: Method = "conservative") -> list[int]:
    """:func:`insufficient_pair_indices` over already-projected inputs.

    The staged verification pipeline and the batch audit engine memoize
    local-frame projections and zone circles across samples, submissions,
    and stages; this entry point lets them reuse those caches while
    producing float-identical results to the sample-level API (the
    projection is deterministic).
    """
    disjoint = _disjoint_predicate(method)
    failures = []
    for i in range(len(positions) - 1):
        ellipse = TravelRangeEllipse(
            f1=positions[i], f2=positions[i + 1],
            focal_sum=vmax_mps * (times[i + 1] - times[i]))
        if not all(disjoint(ellipse, circle) for circle in circles):
            failures.append(i)
    return failures


def insufficient_pairs_indexed(positions: Sequence[tuple[float, float]],
                               times: Sequence[float],
                               index: ZoneProximityIndex,
                               vmax_mps: float = FAA_MAX_SPEED_MPS,
                               method: Method = "conservative") -> list[int]:
    """:func:`insufficient_pairs_projected` through a proximity index.

    Produces the identical failure list (both methods) without scanning
    every zone per pair:

    * ``"conservative"`` fails a pair exactly when
      ``min_z (D1 + D2) <= focal_sum + eps``, which is precisely the
      index's :meth:`~repro.geo.proximity.ZoneProximityIndex.min_pair_distance`
      with ``cutoff_m`` at the predicate threshold — results at or below
      the cutoff are bit-identical to the brute-force minimum, and results
      above it decide the predicate the same way.
    * ``"exact"`` evaluates the true ellipse/disk test, but only over
      :meth:`~repro.geo.proximity.ZoneProximityIndex.pair_candidates` —
      sound because ``D1 + D2`` lower-bounds the minimal focal sum over a
      disk, so every zone the exact predicate could fail is a candidate.
    """
    if method not in ("conservative", "exact"):
        raise ConfigurationError(f"unknown sufficiency method: {method!r}")
    failures = []
    for i in range(len(positions) - 1):
        focal_sum = vmax_mps * (times[i + 1] - times[i])
        if focal_sum < 0:
            # Same failure the ellipse constructor raises on the scan path.
            raise GeometryError("focal_sum must be non-negative")
        a, b = positions[i], positions[i + 1]
        threshold = focal_sum + _EPS
        if method == "conservative":
            minimum = index.min_pair_distance(a, b, cutoff_m=threshold)
            if minimum is not None and minimum <= threshold:
                failures.append(i)
        else:
            candidates = index.pair_candidates(a, b, threshold)
            if candidates:
                ellipse = TravelRangeEllipse(f1=a, f2=b, focal_sum=focal_sum)
                if not all(ellipse_disk_disjoint_exact(ellipse,
                                                       index.circles[j])
                           for j in candidates):
                    failures.append(i)
    return failures


def insufficient_pair_indices(samples: Sequence[GpsSample],
                              zones: Sequence[NoFlyZone], frame: LocalFrame,
                              vmax_mps: float = FAA_MAX_SPEED_MPS,
                              method: Method = "conservative") -> list[int]:
    """Indices ``i`` whose pair ``(S_i, S_{i+1})`` fails sufficiency.

    Zone circles are projected once; with the conservative method each pair
    costs two distance evaluations per zone.
    """
    return insufficient_pairs_projected(
        [s.local_position(frame) for s in samples], [s.t for s in samples],
        _zone_circles(zones, frame), vmax_mps, method)


def alibi_is_sufficient(samples: Sequence[GpsSample],
                        zones: Sequence[NoFlyZone], frame: LocalFrame,
                        vmax_mps: float = FAA_MAX_SPEED_MPS,
                        method: Method = "conservative") -> bool:
    """Equation (1): every consecutive pair clears every zone.

    A trace with fewer than two samples carries no alibi information and is
    treated as sufficient only when there are no zones at all.
    """
    if len(samples) < 2:
        return not zones
    return not insufficient_pair_indices(samples, zones, frame, vmax_mps, method)


def count_insufficient_pairs(samples: Sequence[GpsSample],
                             zones: Sequence[NoFlyZone], frame: LocalFrame,
                             vmax_mps: float = FAA_MAX_SPEED_MPS) -> int:
    """The §VI-A3 field-study metric.

    ``count += 1`` for each pair with
    ``min_j (d_{i,j} + d_{i+1,j}) < v_max * (t_{i+1} - t_i)`` where ``d``
    is the distance to the zone boundary — i.e. the conservative predicate
    restricted to the nearest zone, which for the conservative form is
    equivalent to checking all zones.
    """
    return len(insufficient_pair_indices(samples, zones, frame, vmax_mps,
                                         method="conservative"))


def cumulative_insufficiency_series(samples: Sequence[GpsSample],
                                    zones: Sequence[NoFlyZone],
                                    frame: LocalFrame,
                                    vmax_mps: float = FAA_MAX_SPEED_MPS,
                                    ) -> list[tuple[float, int]]:
    """Fig. 8(c)'s series: ``(t, cumulative insufficient-pair count)``.

    Each pair is attributed to the timestamp of its later sample.
    """
    failures = set(insufficient_pair_indices(samples, zones, frame, vmax_mps))
    series = []
    count = 0
    for i in range(len(samples) - 1):
        if i in failures:
            count += 1
        series.append((samples[i + 1].t, count))
    return series
