"""Auditor-side Proof-of-Alibi verification as a staged pipeline.

The checks the AliDrone Server runs on every submission (paper §IV-C2):

1. **Authenticity** — every sample's TEE signature verifies under the
   drone's registered ``T+``.  A single bad signature rejects the PoA:
   either the trace was tampered with, or it was signed by something other
   than this drone's TEE (forgery, relay).
2. **Well-formedness** — payloads decode, timestamps are non-decreasing.
3. **Physical feasibility** — no consecutive pair implies motion above
   ``v_max``.  An infeasible pair means spliced or fabricated data (the
   travel-range ellipse would be empty).
4. **Disclosure** — Merkle-committed flights only (docs/PROTOCOL.md §8):
   the revealed subset must pin both flight endpoints and every
   undisclosed interval between adjacent revealed fixes must be
   infeasible-to-violate under ``v_max``, judged by the conservative
   sufficiency predicate on the gap pair.
5. **Sufficiency** — equation (1) against the zone set.  Insufficiency is
   not proof of violation, but under the burden-of-proof model the Auditor
   treats it as non-compliance.

Each check is a composable :class:`VerificationStage` operating on a shared
:class:`VerificationContext`.  The :class:`VerificationPipeline` runs the
stages either in ``short_circuit`` mode (stop at the first failure — the
paper's behaviour and the historic ``PoaVerifier.verify`` contract) or in
``collect_findings`` mode (run every runnable stage and report everything
wrong with the PoA at once).  Per-stage wall time and sample counts are
recorded into a :class:`repro.perf.meter.StageMetrics` when one is
supplied, which is how the batch audit engine
(:mod:`repro.server.engine`) accounts for where its time goes.

:class:`PoaVerifier` remains the single-submission facade; its ``verify``
is now a thin wrapper over the default pipeline and produces reports
identical to the pre-pipeline implementation.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi
from repro.core.samples import GpsSample
from repro.core.sufficiency import (
    Method,
    insufficient_pairs_indexed,
    insufficient_pairs_projected,
)
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.schemes import SCHEME_MERKLE, MerkleFinalizer, get_scheme
from repro.errors import EncodingError, SchemeError
from repro.privacy.merkle import MembershipProof
from repro.geo.circle import Circle
from repro.geo.geodesy import LocalFrame
from repro.geo.proximity import ZoneProximityIndex
from repro.obs.trace import get_tracer
from repro.perf.meter import StageMetrics
from repro.units import FAA_MAX_SPEED_MPS

#: Below this zone count the brute-force scan beats building an index for
#: a single submission; the batch engine pre-seeds a shared index instead.
ZONE_INDEX_MIN_ZONES = 8


class VerificationStatus(enum.Enum):
    """Outcome of PoA verification, ordered by severity."""

    ACCEPTED = "accepted"
    INSUFFICIENT = "insufficient"           # cannot rule out NFZ entrance
    REJECTED_INFEASIBLE = "infeasible"      # physically impossible motion
    REJECTED_MALFORMED = "malformed"        # undecodable / out-of-order
    REJECTED_BAD_SIGNATURE = "bad_signature"
    REJECTED_EMPTY = "empty"


class RejectionReason(enum.Enum):
    """The stable rejection taxonomy (finer-grained than the status).

    A status can be reached from more than one check — ``REJECTED_MALFORMED``
    covers undecodable payloads, out-of-order timestamps, and (at the
    engine's intake) undecryptable records.  Downstream tooling (the
    adversary matrix, the conformance harness, incident dashboards) needs
    to distinguish them without parsing free-text messages, so every
    non-accepted report carries exactly one of these values.  The string
    values are a wire/report format: never rename them.
    """

    BAD_SIGNATURE = "bad_signature"
    MALFORMED_PAYLOAD = "malformed_payload"
    OUT_OF_ORDER = "out_of_order"
    SPEED_INFEASIBLE = "speed_infeasible"
    INSUFFICIENT_COVERAGE = "insufficient_coverage"
    INSUFFICIENT_DISCLOSURE = "insufficient_disclosure"
    EMPTY_POA = "empty_poa"
    DECRYPT_FAILED = "decrypt_failed"


@dataclass
class VerificationReport:
    """Everything the Auditor learns from one verification run."""

    status: VerificationStatus
    bad_signature_indices: list[int] = field(default_factory=list)
    infeasible_pair_indices: list[int] = field(default_factory=list)
    insufficient_pair_indices: list[int] = field(default_factory=list)
    sample_count: int = 0
    message: str = ""
    #: Why the PoA was not accepted (None exactly when ACCEPTED).
    reason: RejectionReason | None = None

    @property
    def compliant(self) -> bool:
        """Whether the PoA proves compliance."""
        return self.status is VerificationStatus.ACCEPTED


@dataclass(frozen=True, slots=True)
class StageFinding:
    """One failed check: which stage, what outcome, which indices."""

    stage: str
    status: VerificationStatus
    message: str
    indices: tuple[int, ...] = ()
    reason: RejectionReason | None = None


@dataclass
class VerificationContext:
    """Shared state the stages read and extend.

    The immutable inputs (PoA, key, zones, physical parameters) are set up
    front; stages populate the derived fields as they run.  The three
    ``*_cache``-style fields (``position_memo``, ``zone_circles``,
    ``bad_signature_indices``) can be pre-seeded by the batch audit engine
    so work already done for other submissions in the batch is not
    repeated.
    """

    poa: ProofOfAlibi
    tee_public_key: RsaPublicKey
    zones: Sequence[NoFlyZone]
    frame: LocalFrame
    vmax_mps: float = FAA_MAX_SPEED_MPS
    hash_name: str = "sha1"
    method: Method = "conservative"
    feasibility_slack: float = 1.02
    #: When False the sufficiency stage always takes the exhaustive
    #: projected scan, regardless of zone count — the reference arm of the
    #: conformance harness's index/exhaustive decision-equivalence check.
    use_zone_index: bool = True

    #: Decoded samples (set by :class:`DecodeStage`).
    samples: list[GpsSample] | None = None
    #: Local-frame projections parallel to ``samples``.
    positions: list[tuple[float, float]] | None = None
    #: Cross-submission projection memo ``(lat, lon) -> (x, y)``.
    position_memo: dict[tuple[float, float], tuple[float, float]] | None = None
    #: Zone disks projected into the frame (shared across a batch).
    zone_circles: list[Circle] | None = None
    #: Proximity index over ``zone_circles`` (shared across a batch).
    zone_index: ZoneProximityIndex | None = None
    #: Signature results; pre-seeded by the engine's fan-out workers.
    bad_signature_indices: list[int] | None = None
    #: Every failure observed so far (all of them in collect mode).
    findings: list[StageFinding] = field(default_factory=list)

    def ensure_positions(self) -> list[tuple[float, float]]:
        """Project all decoded samples, via the shared memo when present."""
        if self.positions is None:
            if self.samples is None:
                raise RuntimeError("DecodeStage has not run")
            memo = self.position_memo
            if memo is None:
                self.positions = [s.local_position(self.frame)
                                  for s in self.samples]
            else:
                positions = []
                for s in self.samples:
                    key = (s.lat, s.lon)
                    xy = memo.get(key)
                    if xy is None:
                        xy = s.local_position(self.frame)
                        memo[key] = xy
                    positions.append(xy)
                self.positions = positions
        return self.positions

    def ensure_zone_circles(self) -> list[Circle]:
        """Project the zone set once (or reuse the batch-shared list)."""
        if self.zone_circles is None:
            self.zone_circles = [zone.to_circle(self.frame)
                                 for zone in self.zones]
        return self.zone_circles

    def ensure_zone_index(self) -> ZoneProximityIndex | None:
        """The shared proximity index, built on demand for large zone sets.

        Returns the pre-seeded index when the batch engine supplied one;
        otherwise builds one over :meth:`ensure_zone_circles` once the
        zone count justifies the construction cost.  ``None`` means the
        sufficiency stage should fall back to the plain projected scan —
        both paths produce identical verdicts.
        """
        if not self.use_zone_index:
            return None
        if self.zone_index is None and len(self.zones) >= ZONE_INDEX_MIN_ZONES:
            self.zone_index = ZoneProximityIndex.from_circles(
                self.ensure_zone_circles())
        return self.zone_index


class VerificationStage:
    """One composable check of the Auditor pipeline.

    Subclasses set :attr:`name`, implement :meth:`run` returning a
    :class:`StageFinding` on failure (or ``None``), and declare via
    :attr:`blocks_downstream` whether later stages can still run after
    this one fails (a PoA whose payloads do not decode has no samples for
    the geometric stages to look at).
    """

    name = "stage"
    #: When True, a failure here stops the pipeline even in collect mode.
    blocks_downstream = False

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        raise NotImplementedError

    def sample_count(self, ctx: VerificationContext) -> int:
        """How many samples this stage processed (for metrics)."""
        return len(ctx.poa)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class SignatureStage(VerificationStage):
    """Authenticity: every entry's TEE signature verifies under ``T+``.

    Honours a pre-seeded ``ctx.bad_signature_indices`` so the batch audit
    engine can fan the expensive RSA work out across a worker pool (or
    screen the whole batch with one exponentiation) and feed the result
    back through the unchanged pipeline.
    """

    name = "signature"

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        if ctx.bad_signature_indices is None:
            ctx.bad_signature_indices = get_scheme(ctx.poa.scheme).verify(
                ctx.tee_public_key,
                [(entry.payload, entry.signature) for entry in ctx.poa],
                ctx.poa.finalizer, ctx.hash_name)
        bad = ctx.bad_signature_indices
        if bad:
            return StageFinding(
                stage=self.name,
                status=VerificationStatus.REJECTED_BAD_SIGNATURE,
                message=f"{len(bad)} of {len(ctx.poa)} signatures failed",
                indices=tuple(bad),
                reason=RejectionReason.BAD_SIGNATURE)
        return None


class DecodeStage(VerificationStage):
    """Well-formedness: every payload decodes to a GPS sample."""

    name = "decode"
    blocks_downstream = True

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        try:
            ctx.samples = [entry.sample for entry in ctx.poa]
        except EncodingError as exc:
            return StageFinding(stage=self.name,
                                status=VerificationStatus.REJECTED_MALFORMED,
                                message=str(exc),
                                reason=RejectionReason.MALFORMED_PAYLOAD)
        return None


class OrderingStage(VerificationStage):
    """Well-formedness: timestamps are non-decreasing."""

    name = "ordering"
    blocks_downstream = True

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        samples = ctx.samples or []
        if all(b.t >= a.t for a, b in zip(samples, samples[1:])):
            return None
        return StageFinding(
            stage=self.name, status=VerificationStatus.REJECTED_MALFORMED,
            message="sample timestamps are not non-decreasing",
            reason=RejectionReason.OUT_OF_ORDER)


class FeasibilityStage(VerificationStage):
    """Physical feasibility: no pair implies motion above ``v_max``.

    A pair with ``dt == 0`` but distinct positions is flagged explicitly:
    two samples cannot be taken at the same instant in different places,
    regardless of any epsilon on the speed bound.
    """

    name = "feasibility"

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        failures = self.infeasible_pairs(ctx)
        if failures:
            return StageFinding(
                stage=self.name,
                status=VerificationStatus.REJECTED_INFEASIBLE,
                message=f"{len(failures)} pairs exceed v_max",
                indices=tuple(failures),
                reason=RejectionReason.SPEED_INFEASIBLE)
        return None

    @staticmethod
    def infeasible_pairs(ctx: VerificationContext) -> list[int]:
        """Indices of pairs implying motion above the slackened bound."""
        samples = ctx.samples or []
        positions = ctx.ensure_positions()
        limit = ctx.vmax_mps * ctx.feasibility_slack
        failures = []
        for i in range(len(samples) - 1):
            dt = samples[i + 1].t - samples[i].t
            ax, ay = positions[i]
            bx, by = positions[i + 1]
            distance = math.hypot(bx - ax, by - ay)
            if dt <= 0.0:
                # Same-instant samples at different positions are spliced
                # data — infeasible by definition, no epsilon involved.
                if distance > 0.0:
                    failures.append(i)
            elif distance > limit * dt + 1e-9:
                failures.append(i)
        return failures

    def sample_count(self, ctx: VerificationContext) -> int:
        return max(0, len(ctx.samples or []) - 1)


class DisclosureStage(VerificationStage):
    """Selective disclosure: every undisclosed gap must be provably clear.

    Applies only to Merkle-committed flights (``merkle-disclosure``); for
    every other scheme the stage is a no-op.  The revealed subset must
    (1) pin both flight endpoints — proven leaf 0 and leaf ``count - 1``
    — so neither end of the flight can be silently cut off, (2) carry
    the signed epoch as its first timestamp, binding the commitment to
    this flight, and (3) leave no gap between adjacent revealed fixes
    that the *conservative* sufficiency predicate cannot clear against
    every zone.  Conservative is deliberate regardless of ``ctx.method``:
    the verifier never sees what happened inside a gap, so it grants the
    hidden interval no benefit of the doubt.

    Structurally broken disclosures (unparseable finalizer or proofs,
    out-of-order leaf indices) are not re-reported here — the signature
    stage already condemned the flight for those.
    """

    name = "disclosure"

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        view = self._disclosure_view(ctx.poa)
        if view is None:
            return None
        fin, leaves = view
        samples = ctx.samples or []
        if not samples:
            return None
        if leaves[0] != 0 or leaves[-1] != fin.count - 1:
            return StageFinding(
                stage=self.name, status=VerificationStatus.INSUFFICIENT,
                message="disclosure does not pin the flight endpoints",
                reason=RejectionReason.INSUFFICIENT_DISCLOSURE)
        if fin.epoch != samples[0].t:
            return StageFinding(
                stage=self.name, status=VerificationStatus.INSUFFICIENT,
                message=("disclosure epoch does not match the first "
                         "revealed sample"),
                reason=RejectionReason.INSUFFICIENT_DISCLOSURE)
        gaps = {i for i in range(len(leaves) - 1)
                if leaves[i + 1] - leaves[i] > 1}
        if not gaps:
            return None
        positions = ctx.ensure_positions()
        times = [s.t for s in samples]
        index = ctx.ensure_zone_index()
        if index is not None:
            insufficient = insufficient_pairs_indexed(
                positions, times, index, ctx.vmax_mps, "conservative")
        else:
            insufficient = insufficient_pairs_projected(
                positions, times, ctx.ensure_zone_circles(), ctx.vmax_mps,
                "conservative")
        bad = sorted(gaps.intersection(insufficient))
        if bad:
            return StageFinding(
                stage=self.name, status=VerificationStatus.INSUFFICIENT,
                message=(f"{len(bad)} undisclosed gaps cannot rule out NFZ "
                         "entrance"),
                indices=tuple(bad),
                reason=RejectionReason.INSUFFICIENT_DISCLOSURE)
        return None

    @staticmethod
    def _disclosure_view(poa: ProofOfAlibi,
                         ) -> tuple[MerkleFinalizer, list[int]] | None:
        """``(finalizer, proven leaf indices)``, or ``None`` off-path.

        ``None`` covers both "not a Merkle flight" and "structurally
        broken disclosure" — the latter is the signature stage's failure
        to report, not this stage's.
        """
        if poa.scheme != SCHEME_MERKLE:
            return None
        try:
            fin = MerkleFinalizer.from_bytes(poa.finalizer)
        except SchemeError:
            return None
        blobs = [entry.signature for entry in poa]
        if all(not blob for blob in blobs):
            # Full-trace mode: entries are the committed flight verbatim.
            if len(blobs) != fin.count or fin.count == 0:
                return None
            return fin, list(range(fin.count))
        leaves = []
        for blob in blobs:
            try:
                leaves.append(MembershipProof.from_bytes(blob).leaf_index)
            except SchemeError:
                return None
        if any(b <= a for a, b in zip(leaves, leaves[1:])):
            return None
        if leaves[-1] >= fin.count:
            return None
        return fin, leaves

    def sample_count(self, ctx: VerificationContext) -> int:
        return max(0, len(ctx.samples or []) - 1)


class SufficiencyStage(VerificationStage):
    """Equation (1): every pair's travel ellipse clears every zone."""

    name = "sufficiency"

    def run(self, ctx: VerificationContext) -> StageFinding | None:
        samples = ctx.samples or []
        if len(samples) < 2:
            # A single sample proves nothing.
            insufficient = [0] if ctx.zones else []
        else:
            index = ctx.ensure_zone_index()
            if index is not None:
                insufficient = insufficient_pairs_indexed(
                    ctx.ensure_positions(), [s.t for s in samples],
                    index, ctx.vmax_mps, ctx.method)
            else:
                insufficient = insufficient_pairs_projected(
                    ctx.ensure_positions(), [s.t for s in samples],
                    ctx.ensure_zone_circles(), ctx.vmax_mps, ctx.method)
        if insufficient:
            return StageFinding(
                stage=self.name, status=VerificationStatus.INSUFFICIENT,
                message=(f"{len(insufficient)} pairs cannot rule out NFZ "
                         "entrance"),
                indices=tuple(insufficient),
                reason=RejectionReason.INSUFFICIENT_COVERAGE)
        return None

    def sample_count(self, ctx: VerificationContext) -> int:
        return max(0, len(ctx.samples or []) - 1)


#: Pipeline order doubles as the severity order for collected findings.
DEFAULT_STAGES: tuple[type[VerificationStage], ...] = (
    SignatureStage, DecodeStage, OrderingStage, FeasibilityStage,
    DisclosureStage, SufficiencyStage)

_INDEX_FIELD_BY_STAGE = {
    SignatureStage.name: "bad_signature_indices",
    FeasibilityStage.name: "infeasible_pair_indices",
    DisclosureStage.name: "insufficient_pair_indices",
    SufficiencyStage.name: "insufficient_pair_indices",
}


def build_default_stages() -> list[VerificationStage]:
    """Fresh instances of the default stages, in pipeline order."""
    return [cls() for cls in DEFAULT_STAGES]


class VerificationPipeline:
    """Runs stages over a context and assembles the report.

    Args:
        stages: stage instances in execution order (defaults to the
            paper's five).
        mode: ``"short_circuit"`` stops at the first failing stage
            (identical reports to the historic monolithic verifier);
            ``"collect_findings"`` keeps running every stage whose inputs
            are still available and merges everything into one report.
        metrics: optional :class:`StageMetrics` receiving per-stage wall
            time and sample counts.
    """

    SHORT_CIRCUIT = "short_circuit"
    COLLECT_FINDINGS = "collect_findings"

    def __init__(self, stages: Sequence[VerificationStage] | None = None,
                 mode: str = SHORT_CIRCUIT,
                 metrics: StageMetrics | None = None):
        if mode not in (self.SHORT_CIRCUIT, self.COLLECT_FINDINGS):
            raise ValueError(f"unknown pipeline mode: {mode!r}")
        self.stages = list(stages) if stages is not None \
            else build_default_stages()
        self.mode = mode
        self.metrics = metrics

    def run(self, ctx: VerificationContext) -> VerificationReport:
        """Execute the pipeline and report the outcome."""
        if len(ctx.poa) == 0:
            return VerificationReport(status=VerificationStatus.REJECTED_EMPTY,
                                      message="PoA contains no samples",
                                      reason=RejectionReason.EMPTY_POA)
        collect = self.mode == self.COLLECT_FINDINGS
        tracer = get_tracer()
        for stage in self.stages:
            # Span names are the stage names so a trace reads exactly like
            # the pipeline: signature, decode, ordering, feasibility,
            # sufficiency.
            with tracer.span(stage.name) as span:
                start = time.perf_counter()
                finding = stage.run(ctx)
                elapsed = time.perf_counter() - start
                span.set_attribute("samples", stage.sample_count(ctx))
                if finding is not None:
                    span.set_attribute("finding", finding.status.value)
            if self.metrics is not None:
                self.metrics.record(stage.name, elapsed,
                                    stage.sample_count(ctx))
            if finding is None:
                continue
            ctx.findings.append(finding)
            if not collect or stage.blocks_downstream:
                break
        return self._report(ctx)

    def _report(self, ctx: VerificationContext) -> VerificationReport:
        if not ctx.findings:
            return VerificationReport(status=VerificationStatus.ACCEPTED,
                                      sample_count=len(ctx.poa))
        primary = ctx.findings[0]
        report = VerificationReport(status=primary.status,
                                    sample_count=len(ctx.poa),
                                    message=primary.message,
                                    reason=primary.reason)
        if self.mode == self.COLLECT_FINDINGS and len(ctx.findings) > 1:
            report.message = "; ".join(f.message for f in ctx.findings)
        for finding in ctx.findings:
            index_field = _INDEX_FIELD_BY_STAGE.get(finding.stage)
            if index_field is not None and finding.indices:
                getattr(report, index_field).extend(finding.indices)
        return report


class PoaVerifier:
    """A reusable verification pipeline bound to a frame and speed limit.

    Args:
        frame: local planar frame covering the operating area.
        vmax_mps: physical speed bound (FAA 100 mph default).
        hash_name: signature hash (the prototype uses SHA-1).
        method: sufficiency predicate, ``"conservative"`` (paper) or
            ``"exact"``.
        feasibility_slack: multiplicative tolerance on the speed bound to
            absorb GPS noise (an honest drone at the limit should not be
            rejected because of metre-level jitter).
        metrics: optional :class:`StageMetrics` accumulating per-stage
            timings across every ``verify`` call.
    """

    def __init__(self, frame: LocalFrame,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 hash_name: str = "sha1",
                 method: Method = "conservative",
                 feasibility_slack: float = 1.02,
                 metrics: StageMetrics | None = None):
        self.frame = frame
        self.vmax_mps = float(vmax_mps)
        self.hash_name = hash_name
        self.method: Method = method
        self.feasibility_slack = float(feasibility_slack)
        self.metrics = metrics

    # --- context / pipeline construction ------------------------------------

    def context(self, poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
                zones: Sequence[NoFlyZone], *,
                position_memo: dict | None = None,
                zone_circles: list[Circle] | None = None,
                zone_index: ZoneProximityIndex | None = None,
                bad_signature_indices: list[int] | None = None,
                use_zone_index: bool = True,
                ) -> VerificationContext:
        """A context carrying this verifier's parameters (and any caches)."""
        return VerificationContext(
            poa=poa, tee_public_key=tee_public_key, zones=zones,
            frame=self.frame, vmax_mps=self.vmax_mps,
            hash_name=self.hash_name, method=self.method,
            feasibility_slack=self.feasibility_slack,
            use_zone_index=use_zone_index,
            position_memo=position_memo, zone_circles=zone_circles,
            zone_index=zone_index,
            bad_signature_indices=bad_signature_indices)

    def pipeline(self, mode: str = VerificationPipeline.SHORT_CIRCUIT,
                 ) -> VerificationPipeline:
        """The default five-stage pipeline wired to this verifier's metrics."""
        return VerificationPipeline(mode=mode, metrics=self.metrics)

    # --- individual stages (historic API, kept for composability) -----------

    def check_signatures(self, poa: ProofOfAlibi,
                         tee_public_key: RsaPublicKey) -> list[int]:
        """Indices of entries that fail flight authentication under ``T+``."""
        return get_scheme(poa.scheme).verify(
            tee_public_key,
            [(entry.payload, entry.signature) for entry in poa],
            poa.finalizer, self.hash_name)

    def decode_samples(self, poa: ProofOfAlibi) -> list[GpsSample]:
        """Decode all payloads; raises :class:`EncodingError` on failure."""
        return [entry.sample for entry in poa]

    def check_ordering(self, samples: Sequence[GpsSample]) -> bool:
        """Whether timestamps are non-decreasing."""
        return all(b.t >= a.t for a, b in zip(samples, samples[1:]))

    def infeasible_pairs(self, samples: Sequence[GpsSample]) -> list[int]:
        """Pairs implying motion faster than the (slackened) speed bound."""
        ctx = VerificationContext(
            poa=ProofOfAlibi(), tee_public_key=None, zones=(),
            frame=self.frame, vmax_mps=self.vmax_mps,
            feasibility_slack=self.feasibility_slack)
        ctx.samples = list(samples)
        return FeasibilityStage.infeasible_pairs(ctx)

    # --- the pipeline --------------------------------------------------------

    def verify(self, poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
               zones: Sequence[NoFlyZone],
               mode: str = VerificationPipeline.SHORT_CIRCUIT,
               ) -> VerificationReport:
        """Run the staged pipeline and report the outcome.

        In the default ``short_circuit`` mode the report is identical to
        the historic monolithic implementation; ``collect_findings`` mode
        additionally surfaces every independent failure at once.
        """
        return self.pipeline(mode).run(self.context(poa, tee_public_key,
                                                    zones))
