"""Auditor-side Proof-of-Alibi verification.

The pipeline the AliDrone Server runs on every submission (paper §IV-C2):

1. **Authenticity** — every sample's TEE signature verifies under the
   drone's registered ``T+``.  A single bad signature rejects the PoA:
   either the trace was tampered with, or it was signed by something other
   than this drone's TEE (forgery, relay).
2. **Well-formedness** — payloads decode, timestamps are non-decreasing.
3. **Physical feasibility** — no consecutive pair implies motion above
   ``v_max``.  An infeasible pair means spliced or fabricated data (the
   travel-range ellipse would be empty).
4. **Sufficiency** — equation (1) against the zone set.  Insufficiency is
   not proof of violation, but under the burden-of-proof model the Auditor
   treats it as non-compliance.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi
from repro.core.samples import GpsSample
from repro.core.sufficiency import Method, insufficient_pair_indices
from repro.crypto.rsa import RsaPublicKey
from repro.errors import EncodingError
from repro.geo.geodesy import LocalFrame
from repro.units import FAA_MAX_SPEED_MPS


class VerificationStatus(enum.Enum):
    """Outcome of PoA verification, ordered by severity."""

    ACCEPTED = "accepted"
    INSUFFICIENT = "insufficient"           # cannot rule out NFZ entrance
    REJECTED_INFEASIBLE = "infeasible"      # physically impossible motion
    REJECTED_MALFORMED = "malformed"        # undecodable / out-of-order
    REJECTED_BAD_SIGNATURE = "bad_signature"
    REJECTED_EMPTY = "empty"


@dataclass
class VerificationReport:
    """Everything the Auditor learns from one verification run."""

    status: VerificationStatus
    bad_signature_indices: list[int] = field(default_factory=list)
    infeasible_pair_indices: list[int] = field(default_factory=list)
    insufficient_pair_indices: list[int] = field(default_factory=list)
    sample_count: int = 0
    message: str = ""

    @property
    def compliant(self) -> bool:
        """Whether the PoA proves compliance."""
        return self.status is VerificationStatus.ACCEPTED


class PoaVerifier:
    """A reusable verification pipeline bound to a frame and speed limit.

    Args:
        frame: local planar frame covering the operating area.
        vmax_mps: physical speed bound (FAA 100 mph default).
        hash_name: signature hash (the prototype uses SHA-1).
        method: sufficiency predicate, ``"conservative"`` (paper) or
            ``"exact"``.
        feasibility_slack: multiplicative tolerance on the speed bound to
            absorb GPS noise (an honest drone at the limit should not be
            rejected because of metre-level jitter).
    """

    def __init__(self, frame: LocalFrame,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 hash_name: str = "sha1",
                 method: Method = "conservative",
                 feasibility_slack: float = 1.02):
        self.frame = frame
        self.vmax_mps = float(vmax_mps)
        self.hash_name = hash_name
        self.method: Method = method
        self.feasibility_slack = float(feasibility_slack)

    # --- individual stages --------------------------------------------------

    def check_signatures(self, poa: ProofOfAlibi,
                         tee_public_key: RsaPublicKey) -> list[int]:
        """Indices of entries whose signature fails under ``T+``."""
        return [i for i, entry in enumerate(poa)
                if not entry.verify(tee_public_key, self.hash_name)]

    def decode_samples(self, poa: ProofOfAlibi) -> list[GpsSample]:
        """Decode all payloads; raises :class:`EncodingError` on failure."""
        return [entry.sample for entry in poa]

    def check_ordering(self, samples: Sequence[GpsSample]) -> bool:
        """Whether timestamps are non-decreasing."""
        return all(b.t >= a.t for a, b in zip(samples, samples[1:]))

    def infeasible_pairs(self, samples: Sequence[GpsSample]) -> list[int]:
        """Pairs implying motion faster than the (slackened) speed bound."""
        limit = self.vmax_mps * self.feasibility_slack
        failures = []
        for i in range(len(samples) - 1):
            a, b = samples[i], samples[i + 1]
            dt = b.t - a.t
            ax, ay = a.local_position(self.frame)
            bx, by = b.local_position(self.frame)
            distance = math.hypot(bx - ax, by - ay)
            if distance > limit * dt + 1e-9:
                failures.append(i)
        return failures

    # --- the pipeline --------------------------------------------------------

    def verify(self, poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
               zones: Sequence[NoFlyZone]) -> VerificationReport:
        """Run the full pipeline and report the outcome."""
        if len(poa) == 0:
            return VerificationReport(status=VerificationStatus.REJECTED_EMPTY,
                                      message="PoA contains no samples")

        bad = self.check_signatures(poa, tee_public_key)
        if bad:
            return VerificationReport(
                status=VerificationStatus.REJECTED_BAD_SIGNATURE,
                bad_signature_indices=bad, sample_count=len(poa),
                message=f"{len(bad)} of {len(poa)} signatures failed")

        try:
            samples = self.decode_samples(poa)
        except EncodingError as exc:
            return VerificationReport(
                status=VerificationStatus.REJECTED_MALFORMED,
                sample_count=len(poa), message=str(exc))

        if not self.check_ordering(samples):
            return VerificationReport(
                status=VerificationStatus.REJECTED_MALFORMED,
                sample_count=len(poa),
                message="sample timestamps are not non-decreasing")

        infeasible = self.infeasible_pairs(samples)
        if infeasible:
            return VerificationReport(
                status=VerificationStatus.REJECTED_INFEASIBLE,
                infeasible_pair_indices=infeasible, sample_count=len(poa),
                message=f"{len(infeasible)} pairs exceed v_max")

        insufficient = insufficient_pair_indices(
            samples, list(zones), self.frame, self.vmax_mps, self.method)
        if len(samples) < 2 and zones:
            insufficient = [0]  # a single sample proves nothing
        if insufficient:
            return VerificationReport(
                status=VerificationStatus.INSUFFICIENT,
                insufficient_pair_indices=insufficient, sample_count=len(poa),
                message=f"{len(insufficient)} pairs cannot rule out NFZ entrance")

        return VerificationReport(status=VerificationStatus.ACCEPTED,
                                  sample_count=len(poa))
