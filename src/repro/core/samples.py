"""GPS samples and traces: the protocol's basic data model (paper §III-A).

A sample is the paper's ``S = (lat, lon, t)`` tuple (optionally with
altitude for the 3-D extension).  The *signed payload* encoding defined
here is the canonical byte string the GPS Sampler TA signs inside the TEE;
the Auditor re-encodes received samples the same way to verify signatures,
so the encoding must be exact and deterministic — coordinates are
fixed-point scaled rather than floats on the wire.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import EncodingError, GeometryError
from repro.geo.geodesy import GeoPoint, LocalFrame

#: Fixed-point scale for coordinates: 1e-7 degrees ~ 1.1 cm, finer than GPS.
_COORD_SCALE = 10_000_000
#: Fixed-point scale for time: microseconds.
_TIME_SCALE = 1_000_000
#: Fixed-point scale for altitude: millimetres.
_ALT_SCALE = 1_000

_PAYLOAD_MAGIC = b"ADGS"
_NO_ALTITUDE = -(2 ** 63)  # sentinel for "2-D sample" in the wire encoding


@dataclass(frozen=True, slots=True)
class GpsSample:
    """One timestamped GPS position.

    Attributes:
        lat: latitude, decimal degrees.
        lon: longitude, decimal degrees.
        t: UNIX timestamp, seconds.
        alt: altitude in metres, or None for the paper's 2-D model.
    """

    lat: float
    lon: float
    t: float
    alt: float | None = None

    def __post_init__(self) -> None:
        for name, value in (("lat", self.lat), ("lon", self.lon), ("t", self.t)):
            if not math.isfinite(value):
                raise GeometryError(f"GPS sample field {name} is not finite")
        if not -90.0 <= self.lat <= 90.0:
            raise GeometryError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise GeometryError(f"longitude out of range: {self.lon}")
        if self.alt is not None and not math.isfinite(self.alt):
            raise GeometryError("altitude is not finite")

    @property
    def point(self) -> GeoPoint:
        """The position as a :class:`GeoPoint`."""
        return GeoPoint(self.lat, self.lon)

    def local_position(self, frame: LocalFrame) -> tuple[float, float]:
        """Position projected into ``frame`` (east, north) metres."""
        return frame.to_local(self.point)

    def to_signed_payload(self) -> bytes:
        """Canonical fixed-point byte encoding — what the TEE signs.

        Layout: magic ``ADGS`` then big-endian int64 scaled lat, lon, time,
        altitude (sentinel for None).  Quantization (1.1 cm / 1 us / 1 mm)
        is far below sensor noise, so round-tripping is lossless for
        protocol purposes.
        """
        alt_scaled = _NO_ALTITUDE if self.alt is None else round(self.alt * _ALT_SCALE)
        return _PAYLOAD_MAGIC + struct.pack(
            ">qqqq",
            round(self.lat * _COORD_SCALE),
            round(self.lon * _COORD_SCALE),
            round(self.t * _TIME_SCALE),
            alt_scaled,
        )

    @classmethod
    def from_signed_payload(cls, payload: bytes) -> "GpsSample":
        """Decode a canonical payload; raises :class:`EncodingError` if malformed."""
        if len(payload) != 4 + 32 or payload[:4] != _PAYLOAD_MAGIC:
            raise EncodingError("malformed GPS sample payload")
        lat_s, lon_s, t_s, alt_s = struct.unpack(">qqqq", payload[4:])
        alt = None if alt_s == _NO_ALTITUDE else alt_s / _ALT_SCALE
        return cls(lat=lat_s / _COORD_SCALE, lon=lon_s / _COORD_SCALE,
                   t=t_s / _TIME_SCALE, alt=alt)

    def canonical(self) -> "GpsSample":
        """The sample after a payload round-trip (quantized form).

        Signature verification re-encodes samples, so any sample that will
        be compared against a signed payload should be canonicalized first.
        """
        return GpsSample.from_signed_payload(self.to_signed_payload())


class Trace:
    """An ordered flight trace ``F = {S0, S1, ..., Sn}`` (paper §III-A)."""

    def __init__(self, samples: Iterable[GpsSample] = ()):
        self._samples: list[GpsSample] = []
        for sample in samples:
            self.append(sample)

    def append(self, sample: GpsSample) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if self._samples and sample.t < self._samples[-1].t:
            raise GeometryError(
                f"trace timestamps must be non-decreasing: {sample.t} < {self._samples[-1].t}")
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[GpsSample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> GpsSample:
        return self._samples[index]

    @property
    def samples(self) -> Sequence[GpsSample]:
        """Read-only view of the samples."""
        return tuple(self._samples)

    @property
    def duration(self) -> float:
        """Seconds between the first and last sample (0 for short traces)."""
        if len(self._samples) < 2:
            return 0.0
        return self._samples[-1].t - self._samples[0].t

    def pairs(self) -> Iterator[tuple[GpsSample, GpsSample]]:
        """Consecutive sample pairs ``(S_i, S_{i+1})``."""
        for i in range(len(self._samples) - 1):
            yield self._samples[i], self._samples[i + 1]

    def max_speed_mps(self, frame: LocalFrame) -> float:
        """The largest implied straight-line speed between consecutive samples.

        The Auditor uses this as a cheap plausibility screen: any value
        above ``v_max`` proves the trace is physically impossible.
        """
        worst = 0.0
        for a, b in self.pairs():
            dt = b.t - a.t
            if dt <= 0:
                return math.inf
            ax, ay = a.local_position(frame)
            bx, by = b.local_position(frame)
            worst = max(worst, math.hypot(bx - ax, by - ay) / dt)
        return worst
