"""Proof-of-Alibi structures (paper §IV-C2).

``PoA = {(S_0, Sig(S_0, T-)), (S_1, Sig(S_1, T-)), ...}`` — GPS samples
paired with TEE signatures.  The Adapter additionally encrypts each sample
payload under the Auditor's public key before persisting it
(``RSAES_PKCS1_v1_5``, §V-C); :func:`encrypt_poa`/:func:`decrypt_poa`
implement that wrapping.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.samples import GpsSample, Trace
from repro.crypto.pkcs1 import decrypt_pkcs1_v15, encrypt_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import EncodingError


@dataclass(frozen=True, slots=True)
class SignedSample:
    """One ``(S_i, Sig(S_i, T-))`` entry of a PoA.

    Attributes:
        payload: the canonical sample encoding that was signed in the TEE.
        signature: RSASSA-PKCS1-v1_5 signature over ``payload``.
    """

    payload: bytes
    signature: bytes

    @classmethod
    def from_ta_output(cls, output: Mapping[str, bytes]) -> "SignedSample":
        """Wrap the dict the GPS Sampler TA's ``GetGPSAuth`` returns."""
        return cls(payload=bytes(output["payload"]),
                   signature=bytes(output["signature"]))

    @property
    def sample(self) -> GpsSample:
        """The decoded GPS sample."""
        return GpsSample.from_signed_payload(self.payload)

    def verify(self, tee_public_key: RsaPublicKey,
               hash_name: str = "sha1") -> bool:
        """Whether the signature verifies under ``T+``."""
        return verify_pkcs1_v15(tee_public_key, self.payload,
                                self.signature, hash_name)


class ProofOfAlibi:
    """An ordered collection of signed samples for one flight."""

    def __init__(self, entries: Iterable[SignedSample] = ()):
        self._entries: list[SignedSample] = list(entries)

    def append(self, entry: SignedSample) -> None:
        """Append one signed sample."""
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SignedSample]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> SignedSample:
        return self._entries[index]

    @property
    def entries(self) -> tuple[SignedSample, ...]:
        """Read-only view of the signed samples."""
        return tuple(self._entries)

    def trace(self) -> Trace:
        """The decoded alibi ``{S_0, ..., S_n}`` (signatures stripped)."""
        return Trace(entry.sample for entry in self._entries)

    def verify_all(self, tee_public_key: RsaPublicKey,
                   hash_name: str = "sha1") -> bool:
        """Whether every signature verifies under ``T+``."""
        return all(entry.verify(tee_public_key, hash_name)
                   for entry in self._entries)

    # --- persistence -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Length-prefixed binary encoding (the drone's local persistence)."""
        parts = [struct.pack(">I", len(self._entries))]
        for entry in self._entries:
            parts.append(struct.pack(">HH", len(entry.payload), len(entry.signature)))
            parts.append(entry.payload)
            parts.append(entry.signature)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProofOfAlibi":
        """Decode :meth:`to_bytes` output; raises on malformed input."""
        if len(data) < 4:
            raise EncodingError("truncated PoA encoding")
        (count,) = struct.unpack_from(">I", data, 0)
        offset = 4
        entries = []
        for _ in range(count):
            if offset + 4 > len(data):
                raise EncodingError("truncated PoA entry header")
            payload_len, signature_len = struct.unpack_from(">HH", data, offset)
            offset += 4
            end = offset + payload_len + signature_len
            if end > len(data):
                raise EncodingError("truncated PoA entry body")
            payload = data[offset:offset + payload_len]
            signature = data[offset + payload_len:end]
            entries.append(SignedSample(payload=payload, signature=signature))
            offset = end
        if offset != len(data):
            raise EncodingError("trailing bytes after PoA encoding")
        return cls(entries)


@dataclass(frozen=True, slots=True)
class EncryptedPoaRecord:
    """One persisted record: encrypted payload + cleartext TEE signature."""

    ciphertext: bytes
    signature: bytes


def encrypt_poa(poa: ProofOfAlibi, auditor_public_key: RsaPublicKey,
                rng: random.Random | None = None) -> list[EncryptedPoaRecord]:
    """Encrypt each sample payload under the Auditor's public key (§V-C).

    The signature stays in the clear — it covers the plaintext payload and
    is verified after the Auditor decrypts.
    """
    return [EncryptedPoaRecord(
                ciphertext=encrypt_pkcs1_v15(auditor_public_key, entry.payload, rng=rng),
                signature=entry.signature)
            for entry in poa]


def decrypt_poa(records: Iterable[EncryptedPoaRecord],
                auditor_private_key: RsaPrivateKey) -> ProofOfAlibi:
    """Decrypt Adapter-encrypted records back into a PoA.

    Raises:
        repro.errors.EncryptionError: a record's padding is invalid
            (tampered ciphertext or wrong key).
    """
    return ProofOfAlibi(
        SignedSample(payload=decrypt_pkcs1_v15(auditor_private_key, record.ciphertext),
                     signature=record.signature)
        for record in records)
