"""Proof-of-Alibi structures (paper §IV-C2).

``PoA = {(S_0, Auth(S_0, T-)), (S_1, Auth(S_1, T-)), ...}`` — GPS samples
paired with TEE-produced authenticators.  Which authenticator depends on
the flight's :mod:`authentication scheme <repro.crypto.schemes>`: the
default is one RSA signature per sample, but a flight may instead carry
empty per-sample blobs plus one batch signature, or chained HMAC links
plus a hash-chain finalizer.  The PoA records the scheme id and the
flight-level finalizer alongside the entries so every verifier can
dispatch without out-of-band context.

The Adapter additionally encrypts each sample payload under the Auditor's
public key before persisting it (``RSAES_PKCS1_v1_5``, §V-C);
:func:`encrypt_poa`/:func:`decrypt_poa` implement that wrapping.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.samples import GpsSample, Trace
from repro.crypto.pkcs1 import decrypt_pkcs1_v15, encrypt_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.schemes import SCHEME_RSA, get_scheme
from repro.errors import EncodingError

#: Magic tag opening the versioned PoA encoding.  The legacy (pre-scheme)
#: encoding starts with a 4-byte big-endian entry count, which would have
#: to be 0x41445041 (~1.1 billion entries) to collide with this.
_POA_MAGIC = b"ADPA"
_POA_VERSION = 1


@dataclass(frozen=True, slots=True)
class SignedSample:
    """One ``(S_i, Auth(S_i, T-))`` entry of a PoA.

    Attributes:
        payload: the canonical sample encoding that was authenticated in
            the TEE.
        signature: the per-sample auth blob — an RSASSA-PKCS1-v1_5
            signature for the default scheme, a chained HMAC link for
            ``hash-chain``, empty for ``rsa-batch``.
        scheme: the authentication scheme id that produced the blob.
    """

    payload: bytes
    signature: bytes
    scheme: str = SCHEME_RSA

    @classmethod
    def from_ta_output(cls, output: Mapping[str, object]) -> "SignedSample":
        """Wrap the dict the GPS Sampler TA's ``GetGPSAuth`` returns."""
        return cls(payload=bytes(output["payload"]),
                   signature=bytes(output["signature"]),
                   scheme=str(output.get("scheme", SCHEME_RSA)))

    @property
    def sample(self) -> GpsSample:
        """The decoded GPS sample."""
        return GpsSample.from_signed_payload(self.payload)

    def verify(self, tee_public_key: RsaPublicKey,
               hash_name: str = "sha1") -> bool:
        """Whether this sample authenticates standing alone under ``T+``.

        Only per-sample schemes can say yes; flight-level schemes (batch,
        hash-chain) return False here and are checked via
        :meth:`ProofOfAlibi.verify_all` with the finalizer present.
        """
        return get_scheme(self.scheme).verify_sample(
            tee_public_key, self.payload, self.signature, hash_name)


class ProofOfAlibi:
    """An ordered collection of authenticated samples for one flight."""

    def __init__(self, entries: Iterable[SignedSample] = (),
                 scheme: str | None = None, finalizer: bytes = b""):
        self._entries: list[SignedSample] = list(entries)
        self._scheme = scheme
        self._finalizer = finalizer

    def append(self, entry: SignedSample) -> None:
        """Append one signed sample."""
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SignedSample]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> SignedSample:
        return self._entries[index]

    @property
    def entries(self) -> tuple[SignedSample, ...]:
        """Read-only view of the signed samples."""
        return tuple(self._entries)

    @property
    def scheme(self) -> str:
        """The flight's authentication scheme id.

        Falls back to the first entry's tag (samplers build PoAs by
        appending TA outputs, which carry the scheme) and finally to the
        per-sample RSA default.
        """
        if self._scheme is not None:
            return self._scheme
        if self._entries:
            return self._entries[0].scheme
        return SCHEME_RSA

    @property
    def finalizer(self) -> bytes:
        """The flight-level finalizer blob (empty for per-sample schemes)."""
        return self._finalizer

    def seal(self, finalizer: bytes) -> None:
        """Attach the flight-level finalizer produced at flight end."""
        self._finalizer = finalizer

    def replace_entries(self, entries: Iterable[SignedSample],
                        ) -> "ProofOfAlibi":
        """A new PoA with different entries but this flight's scheme and
        finalizer — used by attack helpers that rebuild entry lists."""
        return ProofOfAlibi(entries, scheme=self.scheme,
                            finalizer=self._finalizer)

    def trace(self) -> Trace:
        """The decoded alibi ``{S_0, ..., S_n}`` (authenticators stripped)."""
        return Trace(entry.sample for entry in self._entries)

    def verify_all(self, tee_public_key: RsaPublicKey,
                   hash_name: str = "sha1") -> bool:
        """Whether the whole flight authenticates under ``T+``."""
        return not get_scheme(self.scheme).verify(
            tee_public_key,
            [(entry.payload, entry.signature) for entry in self._entries],
            self._finalizer, hash_name)

    # --- persistence -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Length-prefixed binary encoding (the drone's local persistence).

        Default-scheme flights without a finalizer keep the legacy layout
        (a bare entry count) so previously persisted PoAs and their readers
        stay interoperable; anything scheme-tagged gets the versioned
        ``ADPA`` envelope carrying the scheme id and finalizer.
        """
        entry_parts = []
        for entry in self._entries:
            entry_parts.append(struct.pack(">HH", len(entry.payload),
                                           len(entry.signature)))
            entry_parts.append(entry.payload)
            entry_parts.append(entry.signature)
        if self.scheme == SCHEME_RSA and not self._finalizer:
            return b"".join([struct.pack(">I", len(self._entries)),
                             *entry_parts])
        scheme_id = self.scheme.encode("ascii")
        return b"".join([
            _POA_MAGIC,
            struct.pack(">B", _POA_VERSION),
            struct.pack(">B", len(scheme_id)), scheme_id,
            struct.pack(">I", len(self._finalizer)), self._finalizer,
            struct.pack(">I", len(self._entries)),
            *entry_parts,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProofOfAlibi":
        """Decode :meth:`to_bytes` output; raises on malformed input."""
        scheme: str | None = None
        finalizer = b""
        if data[:4] == _POA_MAGIC:
            if len(data) < 6:
                raise EncodingError("truncated PoA header")
            version = data[4]
            if version != _POA_VERSION:
                raise EncodingError(f"unsupported PoA version {version}")
            scheme_len = data[5]
            offset = 6
            if offset + scheme_len + 4 > len(data):
                raise EncodingError("truncated PoA scheme header")
            try:
                scheme = data[offset:offset + scheme_len].decode("ascii")
            except UnicodeDecodeError as exc:
                raise EncodingError("malformed PoA scheme id") from exc
            offset += scheme_len
            (finalizer_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if offset + finalizer_len + 4 > len(data):
                raise EncodingError("truncated PoA finalizer")
            finalizer = data[offset:offset + finalizer_len]
            offset += finalizer_len
        else:
            if len(data) < 4:
                raise EncodingError("truncated PoA encoding")
            offset = 0
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        entries = []
        for _ in range(count):
            if offset + 4 > len(data):
                raise EncodingError("truncated PoA entry header")
            payload_len, signature_len = struct.unpack_from(">HH", data, offset)
            offset += 4
            end = offset + payload_len + signature_len
            if end > len(data):
                raise EncodingError("truncated PoA entry body")
            payload = data[offset:offset + payload_len]
            signature = data[offset + payload_len:end]
            entries.append(SignedSample(payload=payload, signature=signature,
                                        scheme=scheme or SCHEME_RSA))
            offset = end
        if offset != len(data):
            raise EncodingError("trailing bytes after PoA encoding")
        return cls(entries, scheme=scheme, finalizer=finalizer)


@dataclass(frozen=True, slots=True)
class EncryptedPoaRecord:
    """One persisted record: encrypted payload + cleartext authenticator."""

    ciphertext: bytes
    signature: bytes


def encrypt_poa(poa: ProofOfAlibi, auditor_public_key: RsaPublicKey,
                rng: random.Random | None = None) -> list[EncryptedPoaRecord]:
    """Encrypt each sample payload under the Auditor's public key (§V-C).

    The authenticator stays in the clear — it covers the plaintext payload
    and is checked after the Auditor decrypts.  The scheme id and
    finalizer travel in the submission envelope, not per record.
    """
    return [EncryptedPoaRecord(
                ciphertext=encrypt_pkcs1_v15(auditor_public_key, entry.payload, rng=rng),
                signature=entry.signature)
            for entry in poa]


def decrypt_poa(records: Iterable[EncryptedPoaRecord],
                auditor_private_key: RsaPrivateKey,
                scheme: str = SCHEME_RSA,
                finalizer: bytes = b"") -> ProofOfAlibi:
    """Decrypt Adapter-encrypted records back into a PoA.

    Raises:
        repro.errors.EncryptionError: a record's padding is invalid
            (tampered ciphertext or wrong key).
    """
    return ProofOfAlibi(
        (SignedSample(payload=decrypt_pkcs1_v15(auditor_private_key,
                                                record.ciphertext),
                      signature=record.signature, scheme=scheme)
         for record in records),
        scheme=scheme, finalizer=finalizer)
