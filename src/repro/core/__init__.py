"""The paper's primary contribution: the AliDrone Proof-of-Alibi protocol.

Contains the sample/zone/PoA data model, the alibi sufficiency predicate
(paper eq. 1), the Adaptive Sampling algorithm (Algorithm 1) and its
fix-rate baseline, the protocol messages, the Auditor-side verification
pipeline, and the GPS-forgery attack generators used to evaluate
unforgeability.
"""

from repro.core.samples import GpsSample, Trace
from repro.core.nfz import NoFlyZone, CylinderNfz, PolygonNfz
from repro.core.poa import SignedSample, ProofOfAlibi
from repro.core.sufficiency import (
    pair_is_sufficient,
    alibi_is_sufficient,
    count_insufficient_pairs,
    insufficient_pair_indices,
)
from repro.core.sampling import (
    AdaptiveSampler,
    FixRateSampler,
    SamplerStats,
)
from repro.core.protocol import (
    ZoneQuery,
    ZoneResponse,
    DroneRegistrationRequest,
    ZoneRegistrationRequest,
    PoaSubmission,
)
from repro.core.verification import (
    PoaVerifier,
    RejectionReason,
    VerificationReport,
    VerificationStatus,
)
from repro.core.attacks import (
    forge_straight_route,
    replay_old_poa,
    relay_foreign_poa,
    tamper_with_samples,
)

__all__ = [
    "GpsSample",
    "Trace",
    "NoFlyZone",
    "CylinderNfz",
    "PolygonNfz",
    "SignedSample",
    "ProofOfAlibi",
    "pair_is_sufficient",
    "alibi_is_sufficient",
    "count_insufficient_pairs",
    "insufficient_pair_indices",
    "AdaptiveSampler",
    "FixRateSampler",
    "SamplerStats",
    "ZoneQuery",
    "ZoneResponse",
    "DroneRegistrationRequest",
    "ZoneRegistrationRequest",
    "PoaSubmission",
    "PoaVerifier",
    "RejectionReason",
    "VerificationReport",
    "VerificationStatus",
    "forge_straight_route",
    "replay_old_poa",
    "relay_foreign_poa",
    "tamper_with_samples",
]
