"""GPS sampling policies: Adaptive Sampling (Algorithm 1) and the baseline.

Both samplers drive a :class:`SamplingHarness` — the Adapter's view of the
platform: a virtual clock, the normal-world GPS read, the receiver's update
schedule, and the TEE's ``GetGPSAuth``.  They return the Proof-of-Alibi
plus the statistics the evaluation consumes (sample instants, raw reads,
world-switch-worthy events).

Adaptive sampling (paper §IV-C3): authenticate a sample only when the next
receiver update *could* make the running pair insufficient — conditions (2)
and (3):

    v_max * (t2 - t1)  <=  D1 + D2  <=  v_max * (t2 - t1 + 2/R)

One deliberate deviation from the pseudocode: when a missed GPS update (or
aggressive geometry) lets the pair shoot *past* condition (2) — i.e.
``D1 + D2 < v_max * (t2 - t1)``, the pair is already insufficient — the
pseudocode's guard would never fire again and the sampler would stall for
the rest of the flight.  We sample immediately in that case, recording a
``late_sample`` event, which re-anchors the pair exactly as the paper's
field prototype evidently did (its 5 Hz run recovers after its single
missed-update insufficiency, §VI-A3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.errors import ConfigurationError
from repro.geo.circle import Circle
from repro.geo.geodesy import LocalFrame
from repro.geo.proximity import ZoneIndexStats, ZoneProximityIndex
from repro.obs.trace import get_tracer
from repro.sim.events import EventLog
from repro.units import FAA_MAX_SPEED_MPS


class SamplingHarness(Protocol):
    """What a sampling policy needs from the platform (the Adapter's view)."""

    def now(self) -> float:
        """Current virtual time."""
        ...  # pragma: no cover - protocol

    def advance_to(self, t: float) -> None:
        """Sleep until absolute time ``t``."""
        ...  # pragma: no cover - protocol

    def read_gps(self) -> GpsSample | None:
        """Normal-world read of the latest receiver measurement (ReadGPS)."""
        ...  # pragma: no cover - protocol

    def next_update_after(self, t: float) -> float:
        """Time of the receiver's next update slot after ``t``."""
        ...  # pragma: no cover - protocol

    def next_fix_time_after(self, t: float) -> float:
        """Time of the next *surviving* (non-missed) update after ``t``."""
        ...  # pragma: no cover - protocol

    def get_gps_auth(self) -> SignedSample:
        """``GetGPSAuth`` through the TEE at the current instant."""
        ...  # pragma: no cover - protocol


@dataclass
class SamplerStats:
    """Counters and series produced by one sampling run."""

    raw_reads: int = 0
    auth_samples: int = 0
    late_samples: int = 0
    iterations: int = 0
    #: Sampling decisions taken with a dropout-inflated safety margin
    #: (degraded mode only; always 0 with degraded mode off).
    degraded_decisions: int = 0
    start_time: float = 0.0
    end_time: float = 0.0
    sample_times: list[float] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock span of the run in virtual seconds."""
        return self.end_time - self.start_time

    @property
    def mean_rate_hz(self) -> float:
        """Authenticated samples per second over the run."""
        if self.duration <= 0:
            return 0.0
        return self.auth_samples / self.duration


@dataclass
class SamplingResult:
    """A completed sampling run."""

    poa: ProofOfAlibi
    stats: SamplerStats
    events: EventLog


class _SamplerBase:
    """Shared bookkeeping for the two policies."""

    def _take_auth_sample(self, harness: SamplingHarness, poa: ProofOfAlibi,
                          stats: SamplerStats, events: EventLog) -> GpsSample:
        with get_tracer().span("sampling.auth_sample",
                               virtual_t=harness.now()) as span:
            signed = harness.get_gps_auth()
            span.set_attribute("sample_t", signed.sample.t)
        poa.append(signed)
        stats.auth_samples += 1
        stats.sample_times.append(harness.now())
        events.record(harness.now(), "auth_sample", t=signed.sample.t)
        return signed.sample

    @staticmethod
    def _wait_for_first_fix(harness: SamplingHarness) -> None:
        while harness.read_gps() is None:
            harness.advance_to(harness.next_update_after(harness.now()))


class AdaptiveSampler(_SamplerBase):
    """Algorithm 1: NFZ-proximity-driven sampling.

    Args:
        zones: the NFZ list returned by the Auditor's zone response.
        frame: local planar frame for distance computation.
        vmax_mps: the physical speed bound (FAA 100 mph by default).
        gps_rate_hz: the receiver's update rate ``R`` used in the 2/R
            safety margin of condition (3).
        margin_updates: how many update periods of safety margin to use;
            the paper derives 2 (one for the sampler's own delay, one for
            the next measurement) — exposed for the margin ablation.
        use_index: answer the per-update zone scan through a
            :class:`~repro.geo.proximity.ZoneProximityIndex` instead of a
            brute-force sweep.  Sampling decisions are identical either
            way (the index's cutoff contract returns the bit-identical
            minimum whenever it is at or below the decision threshold);
            only the per-update cost changes.
        degraded_mode: grow the condition-(3) safety margin conservatively
            across GPS dropout gaps.  The baseline margin assumes the next
            receiver update arrives within ``margin_updates / R``; during
            a dropout burst the next *surviving* fix can be far later, and
            a pair that looked safely distant can shoot past condition (2)
            before the sampler gets another chance.  In degraded mode the
            sampler tracks the observed inter-fix gap (decaying estimate)
            and, while it exceeds ``degraded_threshold_updates`` periods,
            substitutes ``margin_updates * gap`` for the margin — the
            possible-travel range the trigger guards against grows with
            the outage.  The inflated margin is never *smaller* than the
            baseline, so the trigger fires at least as early: dropouts can
            only add samples, never weaken safety.  Off by default; the
            no-fault decision sequence is unchanged even when on (the gap
            estimate only exceeds the threshold after a real dropout).
        degraded_threshold_updates: observed-gap threshold, in receiver
            update periods, past which the margin inflates.
    """

    def __init__(self, zones: Sequence[NoFlyZone], frame: LocalFrame,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 gps_rate_hz: float = 5.0,
                 margin_updates: float = 2.0,
                 use_index: bool = True,
                 degraded_mode: bool = False,
                 degraded_threshold_updates: float = 2.5):
        if gps_rate_hz <= 0:
            raise ConfigurationError("gps_rate_hz must be positive")
        if margin_updates < 0:
            raise ConfigurationError("margin_updates must be non-negative")
        if degraded_threshold_updates < 1.0:
            raise ConfigurationError(
                "degraded_threshold_updates must be >= 1 (a gap of one "
                "period is the healthy case)")
        self.zones = list(zones)
        self.frame = frame
        self.vmax_mps = float(vmax_mps)
        self.gps_rate_hz = float(gps_rate_hz)
        self.margin_updates = float(margin_updates)
        self.degraded_mode = bool(degraded_mode)
        self.degraded_threshold_updates = float(degraded_threshold_updates)
        self._circles: list[Circle] = [z.to_circle(frame) for z in self.zones]
        self._index: ZoneProximityIndex | None = (
            ZoneProximityIndex.from_circles(self._circles)
            if use_index and self._circles else None)

    @property
    def index_stats(self) -> ZoneIndexStats | None:
        """Pruning counters of the proximity index (None when disabled)."""
        return self._index.stats if self._index is not None else None

    def _min_pair_distance(self, last_xy: tuple[float, float],
                           current_xy: tuple[float, float],
                           cutoff_m: float | None = None) -> float | None:
        """``min over zones of (D1 + D2)`` for the running sample pair.

        The pseudocode's ``FindNearestZone(S2, Z)`` evaluates D1 + D2 only
        against the zone nearest the *current* sample.  That is correct
        when one zone dominates, but between two zones the minimizing zone
        can differ from the nearest-to-S2 zone (S1 close to zone A, S2
        close to zone B), and the heuristic would leave an insufficient
        pair behind.  We evaluate the exact minimum — same asymptotic cost,
        strictly safer.

        ``cutoff_m`` is the caller's decision threshold: a result above it
        may be an early-exit lower-bound certificate rather than the exact
        minimum (see the :mod:`repro.geo.proximity` cutoff contract); a
        result at or below it is the exact, bit-identical minimum.
        """
        if not self._circles:
            return None
        if self._index is not None:
            return self._index.min_pair_distance(last_xy, current_xy,
                                                 cutoff_m=cutoff_m)
        return min(c.distance_to_boundary(last_xy)
                   + c.distance_to_boundary(current_xy)
                   for c in self._circles)

    def run(self, harness: SamplingHarness, t_end: float) -> SamplingResult:
        """Execute the policy until virtual time ``t_end``."""
        poa = ProofOfAlibi()
        stats = SamplerStats(start_time=harness.now())
        events = EventLog()

        # The PoA's first sample is the flight's first sample (S_{k0} = S_0).
        self._wait_for_first_fix(harness)
        last = self._take_auth_sample(harness, poa, stats, events)

        margin = self.margin_updates / self.gps_rate_hz
        period = 1.0 / self.gps_rate_hz
        last_fix_t = last.t       # newest fix seen (degraded-gap tracking)
        gap_estimate = period     # decaying estimate of the inter-fix gap
        was_degraded = False
        while True:
            next_update = harness.next_update_after(harness.now())
            if next_update > t_end:
                break
            if next_update <= harness.now():
                # A receiver whose schedule fails to advance would spin this
                # loop forever; fail loudly instead.
                raise ConfigurationError(
                    "GPS update schedule did not advance past "
                    f"t={harness.now()}")
            harness.advance_to(next_update)  # sleep(1/R)
            stats.iterations += 1
            current = harness.read_gps()
            stats.raw_reads += 1
            if current is None or current.t <= last.t:
                continue  # missed update: register still holds the old fix
            dt = current.t - last.t
            margin_used = margin
            if self.degraded_mode:
                if current.t > last_fix_t:
                    observed_gap = current.t - last_fix_t
                    last_fix_t = current.t
                    # Remember the worst recent gap, decaying by half per
                    # surviving fix so the margin relaxes after recovery.
                    gap_estimate = max(observed_gap, 0.5 * gap_estimate,
                                       period)
                if gap_estimate > self.degraded_threshold_updates * period:
                    margin_used = max(margin,
                                      self.margin_updates * gap_estimate)
                    stats.degraded_decisions += 1
                    if not was_degraded:
                        events.record(harness.now(), "degraded_margin",
                                      gap=gap_estimate, margin=margin_used)
                    was_degraded = True
                else:
                    was_degraded = False
            pair_distance = self._min_pair_distance(
                last.local_position(self.frame),
                current.local_position(self.frame),
                cutoff_m=self.vmax_mps * (dt + margin_used))
            if pair_distance is None:
                continue  # no zones: the initial sample alone is the alibi
            if pair_distance > self.vmax_mps * (dt + margin_used):
                continue  # condition (3) false: next update stays sufficient
            if pair_distance < self.vmax_mps * dt:
                # Condition (2) already violated: the running pair is
                # insufficient.  Sample now to re-anchor (see module doc).
                stats.late_samples += 1
                events.record(harness.now(), "late_sample",
                              deficit=self.vmax_mps * dt - pair_distance)
            last = self._take_auth_sample(harness, poa, stats, events)

        # Close the final pair (goal G1: the alibi must cover the *entire*
        # flight).  Equation (1) is defined over sample pairs, so a PoA
        # whose last trigger fired long before landing — or a flight that
        # never triggered at all — proves nothing about the tail of the
        # flight.  Condition (3) was false at every untriggered update,
        # i.e. D1 + D2 exceeded v_max * (dt + margin) at the latest
        # reading, so authenticating that reading always yields a
        # sufficient final pair.
        if self._circles:
            final = harness.read_gps()
            if final is not None and final.t > last.t:
                events.record(harness.now(), "final_sample")
                self._take_auth_sample(harness, poa, stats, events)

        stats.end_time = harness.now()
        return SamplingResult(poa=poa, stats=stats, events=events)


class FixRateSampler(_SamplerBase):
    """The "Fix Rate Sampling" baseline (paper §VI-A1).

    Wakes on a fixed grid of period ``1 / rate_hz``; after each wake it
    waits for the first receiver update at-or-after the wake instant and
    authenticates it.  Because the receiver updates on its own schedule,
    the achieved rate can be lower than configured.
    """

    def __init__(self, rate_hz: float):
        if rate_hz <= 0:
            raise ConfigurationError("rate_hz must be positive")
        self.rate_hz = float(rate_hz)

    def run(self, harness: SamplingHarness, t_end: float) -> SamplingResult:
        """Execute the policy until virtual time ``t_end``."""
        poa = ProofOfAlibi()
        stats = SamplerStats(start_time=harness.now())
        events = EventLog()
        period = 1.0 / self.rate_hz

        wake = harness.now()
        while wake <= t_end:
            stats.iterations += 1
            # Wait for the first surviving measurement at or after the wake.
            # The epsilon makes the bound inclusive; it must be large enough
            # to survive float addition against epoch-scale timestamps.
            fix_time = harness.next_fix_time_after(wake - 1e-4)
            if fix_time > t_end:
                break
            if fix_time > harness.now():
                harness.advance_to(fix_time)
            stats.raw_reads += 1
            self._take_auth_sample(harness, poa, stats, events)
            # Fixed wake grid: skip any wakes that elapsed while waiting,
            # but stay aligned to the schedule.
            wake += period
            while wake < harness.now() - 1e-9:
                wake += period

        stats.end_time = max(harness.now(), min(wake, t_end))
        return SamplingResult(poa=poa, stats=stats, events=events)
