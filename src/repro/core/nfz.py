"""No-fly-zone types (paper §III-A, §VII-B1, §VII-B2).

The base model is a circle ``z = (lat, lon, r)``.  The 3-D extension adds a
cylinder (altitude-capped circle), and the arbitrary-shape extension lets a
Zone Owner register a polygon which the Auditor canonicalizes to its
smallest enclosing circle at registration time.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Sequence

from repro.errors import GeometryError
from repro.geo.circle import Circle, smallest_enclosing_circle
from repro.geo.ellipsoid import Cylinder
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.geo.polygon import Polygon

#: Projection cache keyed by frame identity: ``frame -> {zone: circle}``.
#: The sampler, the verification pipeline, and the audit engine all
#: project the same zone set into the same frame over and over; frames
#: are weakly referenced so a retired frame releases its projections.
_CIRCLE_CACHE: "weakref.WeakKeyDictionary[LocalFrame, dict[NoFlyZone, Circle]]" \
    = weakref.WeakKeyDictionary()


@dataclass(frozen=True, slots=True)
class NoFlyZone:
    """A circular no-fly-zone ``z = (lat, lon, r)``.

    Attributes:
        lat: centre latitude, decimal degrees.
        lon: centre longitude, decimal degrees.
        radius_m: zone radius in metres.
    """

    lat: float
    lon: float
    radius_m: float

    def __post_init__(self) -> None:
        if self.radius_m < 0:
            raise GeometryError("NFZ radius must be non-negative")
        GeoPoint(self.lat, self.lon)  # validates the coordinate ranges

    @property
    def center(self) -> GeoPoint:
        """Zone centre as a geographic point."""
        return GeoPoint(self.lat, self.lon)

    def to_circle(self, frame: LocalFrame) -> Circle:
        """The zone as a planar circle in ``frame`` (cached per frame)."""
        per_frame = _CIRCLE_CACHE.get(frame)
        if per_frame is None:
            per_frame = {}
            _CIRCLE_CACHE[frame] = per_frame
        circle = per_frame.get(self)
        if circle is None:
            x, y = frame.to_local(self.center)
            circle = per_frame[self] = Circle(x, y, self.radius_m)
        return circle

    def boundary_distance_m(self, sample_xy: tuple[float, float],
                            frame: LocalFrame) -> float:
        """Signed distance from a local-frame point to the zone boundary."""
        return self.to_circle(frame).distance_to_boundary(sample_xy)


@dataclass(frozen=True, slots=True)
class CylinderNfz:
    """A 3-D no-fly region ``z' = (lat, lon, alt, r)`` — a vertical cylinder.

    The region spans ground level up to ``ceiling_m``; a drone above the
    ceiling may legally overfly the zone (paper §VII-B1).
    """

    lat: float
    lon: float
    ceiling_m: float
    radius_m: float

    def __post_init__(self) -> None:
        if self.radius_m < 0:
            raise GeometryError("NFZ radius must be non-negative")
        if self.ceiling_m < 0:
            raise GeometryError("NFZ ceiling must be non-negative")
        GeoPoint(self.lat, self.lon)

    @property
    def center(self) -> GeoPoint:
        """Axis position as a geographic point."""
        return GeoPoint(self.lat, self.lon)

    def to_cylinder(self, frame: LocalFrame) -> Cylinder:
        """The zone as a planar-frame cylinder."""
        x, y = frame.to_local(self.center)
        return Cylinder(x=x, y=y, r=self.radius_m, height=self.ceiling_m)

    def footprint(self) -> NoFlyZone:
        """The 2-D circular footprint (what a 2-D verifier would enforce)."""
        return NoFlyZone(self.lat, self.lon, self.radius_m)


@dataclass(frozen=True)
class PolygonNfz:
    """An arbitrary-shape NFZ registered as a polygon (paper §VII-B2).

    The Auditor does not verify against the polygon directly: at
    registration it computes the smallest circle covering the vertices
    (once, expected linear time) and enforces that circle.
    """

    vertices_latlon: tuple[tuple[float, float], ...]

    def __init__(self, vertices_latlon: Sequence[tuple[float, float]]):
        pts = tuple((float(lat), float(lon)) for lat, lon in vertices_latlon)
        if len(pts) < 3:
            raise GeometryError("polygon NFZ needs at least 3 vertices")
        for lat, lon in pts:
            GeoPoint(lat, lon)
        object.__setattr__(self, "vertices_latlon", pts)

    def to_polygon(self, frame: LocalFrame) -> Polygon:
        """The zone as a planar polygon in ``frame``."""
        return Polygon([frame.to_local(GeoPoint(lat, lon))
                        for lat, lon in self.vertices_latlon])

    def canonical_circle(self, frame: LocalFrame) -> NoFlyZone:
        """Smallest-enclosing-circle canonicalization, as a circular NFZ.

        The returned circle always covers the polygon's vertices; for
        convex polygons it covers the whole region, so enforcement against
        the circle is at least as strict as against the polygon.
        """
        circle = smallest_enclosing_circle(
            [frame.to_local(GeoPoint(lat, lon)) for lat, lon in self.vertices_latlon])
        center = frame.to_geo(circle.x, circle.y)
        return NoFlyZone(center.lat, center.lon, circle.r)
