"""AliDrone protocol messages (paper §IV-B, Table I).

Five interactions: drone registration (0), zone registration (1), zone
query/response (2-3), and PoA submission (4).  Messages are plain frozen
dataclasses; the signed parts (the zone query nonce) carry explicit
sign/verify helpers so the Auditor-side checks are one call.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import EncryptedPoaRecord
from repro.crypto.pkcs1 import sign_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.schemes import SCHEME_RSA
from repro.errors import ProtocolError
from repro.geo.geodesy import GeoPoint

#: Zone-query nonce length in bytes.
NONCE_LENGTH = 16


def generate_nonce(rng: random.Random | None = None) -> bytes:
    """A fresh random nonce for a zone query."""
    rng = rng or random.SystemRandom()
    return bytes(rng.randrange(256) for _ in range(NONCE_LENGTH))


@dataclass(frozen=True, slots=True)
class DroneRegistrationRequest:
    """Step 0: the operator registers a drone with the Auditor.

    Carries the operator's verification key ``D+``, the TEE verification
    key ``T+`` exported at manufacture, and optionally the manufacturer's
    attestation quote binding ``T+`` to a genuine device (an Auditor
    running with ``require_attestation`` rejects requests without one).
    """

    operator_public_key: RsaPublicKey
    tee_public_key: RsaPublicKey
    operator_name: str = ""
    quote: object | None = None  # repro.tee.attestation.DeviceQuote


@dataclass(frozen=True, slots=True)
class ZoneRegistrationRequest:
    """Step 1: a Zone Owner registers an NFZ over their property."""

    zone: NoFlyZone
    proof_of_ownership: str
    owner_name: str = ""


@dataclass(frozen=True, slots=True)
class ZoneQuery:
    """Steps 2-3: the pre-flight NFZ lookup.

    ``(id_drone, (x1, y1), (x2, y2), nonce, Sig(nonce, D-))`` — the two
    corners bound the intended navigation rectangle.  Following the paper,
    the operator's signature covers the *nonce* only; it authenticates the
    querying drone rather than protecting the rectangle's integrity.
    """

    drone_id: str
    corner_a: GeoPoint
    corner_b: GeoPoint
    nonce: bytes
    signature: bytes

    @classmethod
    def create(cls, drone_id: str, corner_a: GeoPoint, corner_b: GeoPoint,
               operator_key: RsaPrivateKey,
               rng: random.Random | None = None) -> "ZoneQuery":
        """Build and sign a query with a fresh nonce."""
        nonce = generate_nonce(rng)
        return cls(drone_id=drone_id, corner_a=corner_a, corner_b=corner_b,
                   nonce=nonce,
                   signature=sign_pkcs1_v15(operator_key, nonce, "sha256"))

    def verify(self, operator_public_key: RsaPublicKey) -> bool:
        """Auditor-side check that the nonce was signed by ``D-``."""
        if len(self.nonce) != NONCE_LENGTH:
            return False
        return verify_pkcs1_v15(operator_public_key, self.nonce,
                                self.signature, "sha256")


@dataclass(frozen=True, slots=True)
class ZoneResponse:
    """The Auditor's answer: all registered NFZs within the rectangle."""

    zones: tuple[tuple[str, NoFlyZone], ...]

    @property
    def zone_list(self) -> list[NoFlyZone]:
        """Just the zones, without their identifiers."""
        return [zone for _, zone in self.zones]


@dataclass(frozen=True)
class PoaSubmission:
    """Step 4: the post-flight Proof-of-Alibi upload.

    Records are per-sample Adapter-encrypted blobs with cleartext TEE
    authenticators; ``flight_id`` ties the submission to one flight for
    evidence retention and replay checks.  ``scheme`` names the
    authentication scheme the flight used and ``finalizer`` carries its
    flight-level blob (batch signature or hash-chain closure) — both ride
    in the clear, like the per-sample authenticators.
    """

    drone_id: str
    flight_id: str
    records: tuple[EncryptedPoaRecord, ...]
    claimed_start: float
    claimed_end: float
    scheme: str
    finalizer: bytes

    def __init__(self, drone_id: str, flight_id: str,
                 records: Sequence[EncryptedPoaRecord],
                 claimed_start: float, claimed_end: float,
                 scheme: str = SCHEME_RSA, finalizer: bytes = b""):
        if claimed_end < claimed_start:
            raise ProtocolError("flight window end precedes its start")
        object.__setattr__(self, "drone_id", drone_id)
        object.__setattr__(self, "flight_id", flight_id)
        object.__setattr__(self, "records", tuple(records))
        object.__setattr__(self, "claimed_start", float(claimed_start))
        object.__setattr__(self, "claimed_end", float(claimed_end))
        object.__setattr__(self, "scheme", str(scheme))
        object.__setattr__(self, "finalizer", bytes(finalizer))


@dataclass(frozen=True, slots=True)
class IncidentReport:
    """A Zone Owner's accusation: drone spotted near their NFZ."""

    zone_id: str
    drone_id: str
    incident_time: float
    description: str = ""


def rect_bounds(a: GeoPoint, b: GeoPoint) -> tuple[float, float, float, float]:
    """Normalized ``(lat_min, lon_min, lat_max, lon_max)`` of a query rect."""
    return (min(a.lat, b.lat), min(a.lon, b.lon),
            max(a.lat, b.lat), max(a.lon, b.lon))


def pack_flight_window(start: float, end: float) -> bytes:
    """Binary form of a flight window (used in evidence digests)."""
    return struct.pack(">dd", start, end)
