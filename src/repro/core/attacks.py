"""GPS-forgery attack generators (threat model, paper §III-B).

A dishonest Drone Operator wants to fly through an NFZ while presenting an
innocuous PoA.  The paper names three strategies — pre-computing a
compliant route, replaying a previously reported route, and relaying a
route from another drone — plus the implicit fourth, tampering with a
genuine PoA.  Each generator below fabricates the corresponding submission
so the test suite and examples can demonstrate that the Auditor rejects
every one of them (goal G3, unforgeability).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey
from repro.geo.geodesy import GeoPoint, LocalFrame


def forge_straight_route(start: GeoPoint, end: GeoPoint, t_start: float,
                         t_end: float, n_samples: int,
                         attacker_key: RsaPrivateKey,
                         hash_name: str = "sha1") -> ProofOfAlibi:
    """Strategy 1: pre-compute a compliant route and sign it yourself.

    The attacker fabricates a plausible straight-line trace around the NFZ
    and signs it with a key *they* control — they cannot use ``T-``, which
    never leaves the TEE.  Every signature therefore fails under the
    registered ``T+``.
    """
    poa = ProofOfAlibi()
    for i in range(n_samples):
        alpha = i / max(1, n_samples - 1)
        sample = GpsSample(
            lat=start.lat + alpha * (end.lat - start.lat),
            lon=start.lon + alpha * (end.lon - start.lon),
            t=t_start + alpha * (t_end - t_start))
        payload = sample.to_signed_payload()
        poa.append(SignedSample(
            payload=payload,
            signature=sign_pkcs1_v15(attacker_key, payload, hash_name)))
    return poa


def replay_old_poa(old_poa: ProofOfAlibi) -> ProofOfAlibi:
    """Strategy 2: resubmit a genuine PoA from an earlier flight.

    The signatures are valid — they are the drone's own — but the
    timestamps belong to the old flight.  The Auditor detects the replay
    because the PoA does not cover the reported incident time (or the
    claimed flight window) of the *current* flight.
    """
    return old_poa.replace_entries(old_poa.entries)


def relay_foreign_poa(foreign_poa: ProofOfAlibi) -> ProofOfAlibi:
    """Strategy 3: submit a PoA produced by a *different* drone's TEE.

    An accomplice drone flies a compliant route concurrently and streams
    its signed samples to the attacker.  The signatures are internally
    valid but verify only under the accomplice's ``T+``, not the key
    registered for the accused drone.
    """
    return foreign_poa.replace_entries(foreign_poa.entries)


def tamper_with_samples(poa: ProofOfAlibi, lat_shift_deg: float,
                        lon_shift_deg: float,
                        indices: Sequence[int] | None = None) -> ProofOfAlibi:
    """Strategy 4: shift positions in a genuine PoA away from the NFZ.

    Keeps the original TEE signatures (and, for flight-level schemes, the
    original finalizer) but rewrites the payloads; the authenticator over
    each modified payload no longer verifies.
    """
    tampered = []
    target = set(indices) if indices is not None else None
    for i, entry in enumerate(poa):
        if target is not None and i not in target:
            tampered.append(entry)
            continue
        sample = entry.sample
        moved = GpsSample(lat=sample.lat + lat_shift_deg,
                          lon=sample.lon + lon_shift_deg,
                          t=sample.t, alt=sample.alt)
        tampered.append(SignedSample(payload=moved.to_signed_payload(),
                                     signature=entry.signature,
                                     scheme=entry.scheme))
    return poa.replace_entries(tampered)


def splice_poas(first: ProofOfAlibi, second: ProofOfAlibi,
                frame: LocalFrame | None = None) -> ProofOfAlibi:
    """Strategy 5 (bonus): stitch two genuine PoA segments around a gap.

    An attacker records honest samples before and after an NFZ incursion
    and concatenates them, hoping the hole goes unnoticed.  All signatures
    verify — detection falls to the feasibility/sufficiency stages: the
    junction pair either implies impossible speed or admits an ellipse
    overlapping the zone.
    """
    del frame  # kept for signature symmetry with potential smarter splicers
    return first.replace_entries(list(first.entries) + list(second.entries))


def shuffle_poa(poa: ProofOfAlibi, rng: random.Random) -> ProofOfAlibi:
    """Strategy 6 (bonus): reorder genuine entries.

    All signatures verify individually, but the timestamp-ordering check
    rejects the submission.
    """
    entries = list(poa.entries)
    rng.shuffle(entries)
    return poa.replace_entries(entries)
