"""Incremental PoA verification for real-time auditing.

The batch verifier (:class:`repro.core.verification.PoaVerifier`) needs
the whole flight; a real-time Auditor receiving streamed entries wants a
verdict *per entry*, the moment it arrives.  :class:`IncrementalVerifier`
maintains the running state — last accepted sample, cumulative pair
verdicts — and classifies each new signed sample in O(zones):

* bad signature / undecodable payload / time regression → rejected (and
  the running state is untouched, so one bad entry cannot corrupt the
  stream);
* infeasible jump from the previous sample → rejected;
* otherwise the new pair is scored sufficient or insufficient and the
  sample becomes the new anchor.

The final :meth:`report` matches what the batch verifier would say about
the accepted prefix, which :mod:`tests.integration` asserts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import SignedSample
from repro.core.samples import GpsSample
from repro.core.sufficiency import Method, pair_is_sufficient
from repro.core.verification import VerificationReport, VerificationStatus
from repro.crypto.rsa import RsaPublicKey
from repro.errors import EncodingError, GeometryError
from repro.geo.geodesy import LocalFrame
from repro.units import FAA_MAX_SPEED_MPS


class EntryVerdict(enum.Enum):
    """Classification of one streamed entry."""

    ACCEPTED = "accepted"                 # pair sufficient (or first sample)
    INSUFFICIENT_PAIR = "insufficient"    # genuine but cannot rule out entry
    REJECTED_SIGNATURE = "bad_signature"
    REJECTED_MALFORMED = "malformed"
    REJECTED_ORDER = "out_of_order"
    REJECTED_INFEASIBLE = "infeasible"


@dataclass
class IncrementalState:
    """Running counters exposed for dashboards and tests."""

    entries_seen: int = 0
    entries_accepted: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    insufficient_pairs: int = 0

    def note_rejection(self, verdict: EntryVerdict) -> None:
        self.rejected[verdict.value] = self.rejected.get(verdict.value, 0) + 1


class IncrementalVerifier:
    """Verify a PoA one signed sample at a time."""

    def __init__(self, tee_public_key: RsaPublicKey,
                 zones: Sequence[NoFlyZone], frame: LocalFrame,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 hash_name: str = "sha1",
                 method: Method = "conservative",
                 feasibility_slack: float = 1.02):
        self.tee_public_key = tee_public_key
        self.zones = list(zones)
        self.frame = frame
        self.vmax_mps = float(vmax_mps)
        self.hash_name = hash_name
        self.method: Method = method
        self.feasibility_slack = float(feasibility_slack)
        self.state = IncrementalState()
        self._last: GpsSample | None = None

    @property
    def last_sample(self) -> GpsSample | None:
        """The current anchor (last accepted sample)."""
        return self._last

    def push(self, entry: SignedSample) -> EntryVerdict:
        """Classify one streamed entry and advance the anchor if genuine."""
        self.state.entries_seen += 1

        if not entry.verify(self.tee_public_key, self.hash_name):
            self.state.note_rejection(EntryVerdict.REJECTED_SIGNATURE)
            return EntryVerdict.REJECTED_SIGNATURE
        try:
            sample = entry.sample
        except (EncodingError, GeometryError):
            self.state.note_rejection(EntryVerdict.REJECTED_MALFORMED)
            return EntryVerdict.REJECTED_MALFORMED

        if self._last is None:
            self._last = sample
            self.state.entries_accepted += 1
            return EntryVerdict.ACCEPTED

        if sample.t < self._last.t:
            self.state.note_rejection(EntryVerdict.REJECTED_ORDER)
            return EntryVerdict.REJECTED_ORDER

        dt = sample.t - self._last.t
        ax, ay = self._last.local_position(self.frame)
        bx, by = sample.local_position(self.frame)
        distance = math.hypot(bx - ax, by - ay)
        if distance > self.vmax_mps * self.feasibility_slack * dt + 1e-9:
            self.state.note_rejection(EntryVerdict.REJECTED_INFEASIBLE)
            return EntryVerdict.REJECTED_INFEASIBLE

        sufficient = pair_is_sufficient(self._last, sample, self.zones,
                                        self.frame, self.vmax_mps,
                                        self.method)
        self._last = sample
        self.state.entries_accepted += 1
        if sufficient:
            return EntryVerdict.ACCEPTED
        self.state.insufficient_pairs += 1
        return EntryVerdict.INSUFFICIENT_PAIR

    def report(self) -> VerificationReport:
        """The overall verdict for the stream so far.

        Mirrors the batch pipeline's severity ordering: any rejection
        dominates, then insufficiency, then acceptance.  A stream with no
        genuine samples is EMPTY.
        """
        rejected = self.state.rejected
        if rejected.get(EntryVerdict.REJECTED_SIGNATURE.value):
            status = VerificationStatus.REJECTED_BAD_SIGNATURE
        elif (rejected.get(EntryVerdict.REJECTED_MALFORMED.value)
              or rejected.get(EntryVerdict.REJECTED_ORDER.value)):
            status = VerificationStatus.REJECTED_MALFORMED
        elif rejected.get(EntryVerdict.REJECTED_INFEASIBLE.value):
            status = VerificationStatus.REJECTED_INFEASIBLE
        elif self.state.entries_accepted == 0:
            status = VerificationStatus.REJECTED_EMPTY
        elif self.state.insufficient_pairs > 0:
            status = VerificationStatus.INSUFFICIENT
        elif self.state.entries_accepted < 2 and self.zones:
            status = VerificationStatus.INSUFFICIENT
        else:
            status = VerificationStatus.ACCEPTED
        return VerificationReport(
            status=status, sample_count=self.state.entries_accepted,
            message=(f"incremental: {self.state.entries_seen} entries seen, "
                     f"{self.state.entries_accepted} accepted, "
                     f"{self.state.insufficient_pairs} insufficient pairs"))
