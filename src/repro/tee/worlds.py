"""World state and secure key handles.

TrustZone hardware tags every bus transaction with a non-secure (NS) bit
and faults normal-world accesses to secure resources.  The simulator's
equivalent: a :class:`WorldState` flag owned by the secure monitor, and
:class:`SecureKeyHandle` wrappers that check the flag before revealing key
material.
"""

from __future__ import annotations

import enum
from typing import Generic, TypeVar

from repro.errors import WorldIsolationError

T = TypeVar("T")


class World(enum.Enum):
    """Which world the (single-core) processor is currently executing in."""

    NORMAL = "normal"
    SECURE = "secure"


class WorldState:
    """The current-world flag; mutated only by the secure monitor."""

    def __init__(self) -> None:
        self._world = World.NORMAL

    @property
    def current(self) -> World:
        """The currently executing world."""
        return self._world

    def _enter_secure(self) -> None:
        self._world = World.SECURE

    def _exit_secure(self) -> None:
        self._world = World.NORMAL

    def require_secure(self, what: str) -> None:
        """Fault (raise) unless the secure world is executing."""
        if self._world is not World.SECURE:
            raise WorldIsolationError(
                f"normal-world access to secure resource: {what}")


class SecureKeyHandle(Generic[T]):
    """An opaque handle to secret material owned by the secure world.

    The wrapped value (an RSA private key, an HMAC key, ...) is only
    retrievable while the secure world is executing.  Normal-world code can
    hold and pass the handle around freely — exactly like a GlobalPlatform
    object handle — but every extraction path raises
    :class:`WorldIsolationError` outside the TEE.
    """

    __slots__ = ("_value", "_state", "_label")

    def __init__(self, value: T, state: WorldState, label: str):
        self._value = value
        self._state = state
        self._label = label

    @property
    def label(self) -> str:
        """Human-readable handle label (safe to expose)."""
        return self._label

    def reveal(self) -> T:
        """The wrapped secret; secure world only."""
        self._state.require_secure(f"key handle {self._label!r}")
        return self._value

    def __repr__(self) -> str:
        return f"<SecureKeyHandle {self._label!r}>"

    # Defensive: block the obvious accidental-disclosure channels.
    def __str__(self) -> str:
        return repr(self)

    def __reduce__(self):  # pickling would serialize the secret
        raise WorldIsolationError(
            f"key handle {self._label!r} cannot be serialized out of the TEE")

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)
