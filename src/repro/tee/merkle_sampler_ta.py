"""A Merkle-commitment GPS Sampler TA: selective-disclosure flights.

The selective-disclosure scheme (``merkle-disclosure``,
:mod:`repro.privacy`) moves all per-sample asymmetric cost to flight
end: samples are merely accumulated inside the secure world, and
``FinalizeFlight`` signs one RSA commitment over the Merkle
``root ‖ epoch ‖ count`` of the whole trace.  The normal world never
holds anything the operator could not already redact — membership
proofs are derivable from the payloads alone, while *forging* a
disclosed sample still requires a second preimage or a fresh root
signature under ``T-``.

Command surface mirrors the chained sampler: ``StartFlight`` opens an
accumulation window, ``GetGPSAuth`` returns a payload with an empty
auth blob (the commitment is flight-level), ``FinalizeFlight`` returns
the signed finalizer blob.
"""

from __future__ import annotations

import uuid as uuid_module
from typing import Any

from repro.core.samples import GpsSample
from repro.crypto.schemes import SCHEME_MERKLE, MerkleSigner
from repro.errors import TrustedAppError
from repro.obs.trace import get_tracer
from repro.tee.chained_sampler_ta import CMD_FINALIZE_FLIGHT, CMD_START_FLIGHT
from repro.tee.gps_sampler_ta import GpsSamplerTA

MERKLE_SAMPLER_UUID = uuid_module.UUID("7d0a6b42-9c1e-4f83-a5d6-2b94c8e01f27")


class MerkleGpsSamplerTA(GpsSamplerTA):
    """``GetGPSAuth`` with flight-level Merkle commitment instead of RSA."""

    UUID = MERKLE_SAMPLER_UUID

    def __init__(self) -> None:
        super().__init__()
        self._signer: MerkleSigner | None = None

    def open_session(self, params: dict[str, Any]) -> None:
        super().open_session(params)
        self._signer = None

    def close_session(self) -> None:
        self._signer = None
        super().close_session()

    def invoke_command(self, command: str, params: dict[str, Any]) -> Any:
        if self._sign_key is None:
            raise TrustedAppError("GPS Sampler session not opened")
        if command == CMD_START_FLIGHT:
            return self._start_flight()
        if command == CMD_FINALIZE_FLIGHT:
            return self._finalize_flight()
        return super().invoke_command(command, params)

    def _start_flight(self) -> dict[str, Any]:
        # No asymmetric work at flight start: the commitment is deferred
        # entirely to FinalizeFlight.
        self._signer = MerkleSigner(self._sign_key.reveal(), self._hash_name)
        self.core.op_counters["merkle_flights"] += 1
        return {"scheme": SCHEME_MERKLE}

    def _get_gps_auth(self) -> dict[str, Any]:
        if self._signer is None:
            raise TrustedAppError(
                "merkle sampler: no flight started (StartFlight first)")
        tracer = get_tracer()
        with tracer.span("gps.receiver.get_fix"):
            fix = self._driver().get_gps()
        self._consult_spoof_detector(fix)
        sample = GpsSample(lat=fix.lat, lon=fix.lon, t=fix.time,
                           alt=fix.altitude_m)
        payload = sample.to_signed_payload()
        with tracer.span("tee.merkle_sampler_ta.leaf", t=sample.t):
            blob = self._signer.sign_sample(payload)
        self.samples_signed += 1
        self.core.op_counters["merkle_leaves"] += 1
        self.core.op_counters["gps_auth_samples"] += 1
        return {"payload": payload, "signature": blob,
                "scheme": SCHEME_MERKLE}

    def _finalize_flight(self) -> dict[str, bytes]:
        if self._signer is None:
            raise TrustedAppError(
                "merkle sampler: no flight started (StartFlight first)")
        key = self._sign_key.reveal()
        tracer = get_tracer()
        with tracer.span("tee.merkle_sampler_ta.commit", key_bits=key.bits,
                         hash=self._hash_name):
            finalizer = self._signer.finalize_flight()
        self._signer = None  # one commitment per flight
        self.core.op_counters[f"rsa_sign_{key.bits}"] += 1
        self.core.op_counters["merkle_finalizations"] += 1
        return {"finalizer": finalizer, "scheme": SCHEME_MERKLE}
