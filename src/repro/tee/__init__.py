"""Software Trusted Execution Environment modelled on ARM TrustZone/OP-TEE.

The paper's security argument rests on one hardware property: the TEE sign
key ``T-`` is reachable only through the GPS Sampler TA's ``GetGPSAuth``
interface, never as raw bytes in the normal world.  This package turns that
property into an executable contract:

* :class:`~repro.tee.monitor.SecureMonitor` is the only door between the
  worlds (the Secure Monitor Call of Fig. 1); it tracks which world is
  currently executing and counts world switches for the cost model.
* :class:`~repro.tee.worlds.SecureKeyHandle` wraps private key material and
  refuses to reveal it unless the secure world is executing — touching it
  from the normal world raises :class:`~repro.errors.WorldIsolationError`,
  the simulator's analogue of a TrustZone bus fault.
* :class:`~repro.tee.optee.OpTeeCore` loads signature-verified Trusted
  Applications by UUID from untrusted storage (the tee-supplicant flow) and
  hosts statically built-in Pseudo TAs with peripheral access.
* :mod:`~repro.tee.attestation` provisions the device keypair at
  "manufacture time" so the private key is born inside the secure world.
"""

from repro.tee.worlds import World, SecureKeyHandle
from repro.tee.monitor import SecureMonitor, SmcStats
from repro.tee.optee import OpTeeCore, TaStore, sign_trusted_app
from repro.tee.trusted_app import TrustedApplication, PseudoTrustedApplication, TaSession
from repro.tee.secure_storage import SealedStorage
from repro.tee.gps_driver import SecureGpsDriver
from repro.tee.gps_sampler_ta import GpsSamplerTA, CMD_GET_GPS_AUTH, CMD_GET_PUBLIC_KEY
from repro.tee.attestation import TrustZoneDevice, provision_device

__all__ = [
    "World",
    "SecureKeyHandle",
    "SecureMonitor",
    "SmcStats",
    "OpTeeCore",
    "TaStore",
    "sign_trusted_app",
    "TrustedApplication",
    "PseudoTrustedApplication",
    "TaSession",
    "SealedStorage",
    "SecureGpsDriver",
    "GpsSamplerTA",
    "CMD_GET_GPS_AUTH",
    "CMD_GET_PUBLIC_KEY",
    "TrustZoneDevice",
    "provision_device",
]
