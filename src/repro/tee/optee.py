"""The OP-TEE core: TA loading, sessions, kernel services, peripherals.

Follows the architecture of Fig. 1: normal-world applications talk to the
GlobalPlatform TEE Client API (:class:`TeeClient`), which traps through the
secure monitor; the core resolves the target TA by UUID — a statically
built-in Pseudo TA, or a normal TA fetched from untrusted storage by the
tee-supplicant (:class:`TaStore`) and admitted only if its vendor signature
verifies.
"""

from __future__ import annotations

import inspect
import uuid as uuid_module
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.crypto.pkcs1 import sign_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import TeeError, TrustedAppError
from repro.tee.trusted_app import PseudoTrustedApplication, TrustedApplication, TaSession

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.tee.monitor import SecureMonitor
    from repro.tee.secure_storage import SealedStorage


def _ta_code_bytes(factory: Callable[[], TrustedApplication],
                   ta_uuid: uuid_module.UUID) -> bytes:
    """The simulated "compiled TA image" the vendor signature covers.

    Real OP-TEE signs the TA ELF; our stand-in for the code bytes is the
    factory's source text (falling back to its qualified name), so swapping
    in a modified TA class produces a different image and a failed
    signature check.
    """
    try:
        source = inspect.getsource(factory)
    except (OSError, TypeError):
        source = getattr(factory, "__qualname__", repr(factory))
    return ta_uuid.bytes + source.encode()


@dataclass(frozen=True)
class SignedTaImage:
    """A TA "binary" plus its vendor signature, storable untrusted."""

    ta_uuid: uuid_module.UUID
    factory: Callable[[], TrustedApplication]
    signature: bytes


def sign_trusted_app(factory: Callable[[], TrustedApplication],
                     ta_uuid: uuid_module.UUID,
                     vendor_key: RsaPrivateKey) -> SignedTaImage:
    """Produce a vendor-signed TA image (the TA build/sign step)."""
    code = _ta_code_bytes(factory, ta_uuid)
    return SignedTaImage(ta_uuid=ta_uuid, factory=factory,
                         signature=sign_pkcs1_v15(vendor_key, code, "sha256"))


class TaStore:
    """Untrusted TA storage, served to the core by the tee-supplicant.

    Anyone — including a dishonest operator — can write to it; the core's
    signature check is what keeps malicious images out of the TEE.
    """

    def __init__(self) -> None:
        self._images: dict[uuid_module.UUID, SignedTaImage] = {}

    def install(self, image: SignedTaImage) -> None:
        """Install (or overwrite) an image under its UUID."""
        self._images[image.ta_uuid] = image

    def lookup(self, ta_uuid: uuid_module.UUID) -> SignedTaImage | None:
        """Fetch an image by UUID, or None."""
        return self._images.get(ta_uuid)


class OpTeeCore:
    """The secure-world kernel: sessions, PTAs, devices, kernel services."""

    def __init__(self, ta_verification_key: RsaPublicKey,
                 ta_store: TaStore | None = None):
        self.ta_verification_key = ta_verification_key
        self.ta_store = ta_store if ta_store is not None else TaStore()
        self._monitor: "SecureMonitor | None" = None
        self._ptas: dict[uuid_module.UUID, PseudoTrustedApplication] = {}
        self._sessions: dict[int, TaSession] = {}
        self._next_session_id = 1
        self._devices: dict[str, Any] = {}
        self._kernel_services: dict[str, Any] = {}
        self.sealed_storage: "SealedStorage | None" = None
        #: Secure-world operation counters consumed by the cost model.
        self.op_counters: Counter[str] = Counter()

    # --- wiring -----------------------------------------------------------

    def _attach_monitor(self, monitor: "SecureMonitor") -> None:
        if self._monitor is not None:
            raise TeeError("core already attached to a monitor")
        self._monitor = monitor

    @property
    def monitor(self) -> "SecureMonitor":
        """The attached secure monitor."""
        if self._monitor is None:
            raise TeeError("core has no monitor attached")
        return self._monitor

    def register_pta(self, pta: PseudoTrustedApplication) -> None:
        """Statically build a Pseudo TA into the core (boot-time only)."""
        if pta.UUID in self._ptas:
            raise TeeError(f"duplicate PTA UUID {pta.UUID}")
        pta.on_load(self)
        self._ptas[pta.UUID] = pta

    def register_device(self, name: str, peripheral: Any) -> None:
        """Add a peripheral to the secure device tree (boot-time only)."""
        self._devices[name] = peripheral

    def register_kernel_service(self, name: str, service: Any) -> None:
        """Add a secure-kernel service, e.g. the GPS driver (boot-time)."""
        self._kernel_services[name] = service

    def device(self, name: str) -> Any:
        """A peripheral by name; secure world only."""
        self.monitor.state.require_secure(f"device {name!r}")
        try:
            return self._devices[name]
        except KeyError:
            raise TeeError(f"no device named {name!r}") from None

    def kernel_service(self, name: str) -> Any:
        """A kernel service by name; secure world only."""
        self.monitor.state.require_secure(f"kernel service {name!r}")
        try:
            return self._kernel_services[name]
        except KeyError:
            raise TeeError(f"no kernel service named {name!r}") from None

    # --- TA resolution and dispatch ----------------------------------------

    def _load_ta(self, ta_uuid: uuid_module.UUID) -> TrustedApplication:
        pta = self._ptas.get(ta_uuid)
        if pta is not None:
            return pta
        image = self.ta_store.lookup(ta_uuid)
        if image is None:
            raise TrustedAppError(f"no TA with UUID {ta_uuid}")
        code = _ta_code_bytes(image.factory, image.ta_uuid)
        if not verify_pkcs1_v15(self.ta_verification_key, code,
                                image.signature, "sha256"):
            raise TrustedAppError(
                f"TA image {ta_uuid} failed vendor signature verification")
        ta = image.factory()
        if ta.UUID != ta_uuid:
            raise TrustedAppError("TA image UUID does not match its instance")
        ta.on_load(self)
        return ta

    def _dispatch(self, session_id: int, command: str, params: dict[str, Any]) -> Any:
        """Secure-world entry point; only the monitor calls this."""
        if command == "__open_session__":
            ta_uuid = params["uuid"]
            ta = self._load_ta(ta_uuid)
            ta.open_session(params.get("open_params", {}))
            sid = self._next_session_id
            self._next_session_id += 1
            self._sessions[sid] = TaSession(session_id=sid, ta=ta)
            return sid
        session = self._sessions.get(session_id)
        if session is None:
            raise TrustedAppError(f"no open session {session_id}")
        if command == "__close_session__":
            session.close()
            del self._sessions[session_id]
            return None
        return session.ta.invoke_command(command, params)


class TeeClient:
    """The normal-world GlobalPlatform TEE Client API.

    This is the *only* interface deployed normal-world code uses to reach
    the secure world; every method is a secure monitor call.
    """

    def __init__(self, monitor: "SecureMonitor"):
        self._monitor = monitor

    def open_session(self, ta_uuid: uuid_module.UUID,
                     open_params: dict[str, Any] | None = None) -> int:
        """Open a session to the TA with ``ta_uuid``; returns a session id."""
        return self._monitor.smc_call(
            0, "__open_session__",
            {"uuid": ta_uuid, "open_params": open_params or {}})

    def invoke(self, session_id: int, command: str,
               params: dict[str, Any] | None = None) -> Any:
        """Invoke a TA command over an open session."""
        return self._monitor.smc_call(session_id, command, params or {})

    def close_session(self, session_id: int) -> None:
        """Close an open session."""
        self._monitor.smc_call(session_id, "__close_session__", {})
