"""Sealed storage: secrets at rest, opaque to the normal world.

OP-TEE stores TA data in normal-world storage, sealed (encrypted and
integrity-protected) under a device-unique hardware key so the rich OS can
host the blobs without being able to read or undetectably modify them.  We
seal with the one-time-pad-style authenticated stream cipher from
:mod:`repro.crypto.onetime`, keyed per-entry from a device root key.
"""

from __future__ import annotations

import hashlib

from repro.crypto.onetime import OneTimeKey, onetime_encrypt, onetime_decrypt
from repro.errors import EncryptionError, TeeStorageError
from repro.tee.worlds import SecureKeyHandle, WorldState


class SealedStorage:
    """A name → sealed-blob store bound to a device root key.

    ``seal``/``unseal`` are secure-world operations (they require the root
    key).  :meth:`raw_blobs` models the normal world's view: ciphertext
    only.
    """

    def __init__(self, root_key: SecureKeyHandle[bytes], state: WorldState):
        self._root_key = root_key
        self._state = state
        self._blobs: dict[str, bytes] = {}

    def _entry_key(self, name: str) -> OneTimeKey:
        root = self._root_key.reveal()  # faults outside the secure world
        material = hashlib.sha256(root + b"|seal|" + name.encode()).digest()
        return OneTimeKey(material)

    def seal(self, name: str, secret: bytes) -> None:
        """Store ``secret`` under ``name``; secure world only."""
        self._state.require_secure(f"sealing storage entry {name!r}")
        self._blobs[name] = onetime_encrypt(self._entry_key(name), secret)

    def unseal(self, name: str) -> bytes:
        """Recover the secret under ``name``; secure world only.

        Raises:
            TeeStorageError: unknown name, or blob tampered with.
        """
        self._state.require_secure(f"unsealing storage entry {name!r}")
        blob = self._blobs.get(name)
        if blob is None:
            raise TeeStorageError(f"no sealed entry named {name!r}")
        try:
            return onetime_decrypt(self._entry_key(name), blob)
        except EncryptionError as exc:
            raise TeeStorageError(f"sealed entry {name!r} failed integrity check") from exc

    def contains(self, name: str) -> bool:
        """Whether an entry exists (names are not secret)."""
        return name in self._blobs

    def raw_blobs(self) -> dict[str, bytes]:
        """The normal world's view: entry names and ciphertext blobs.

        Exposed deliberately — tests use it to demonstrate that possession
        of the blobs does not yield key material, and that blob tampering
        is detected at unseal time.
        """
        return dict(self._blobs)

    def tamper(self, name: str, blob: bytes) -> None:
        """Overwrite a blob from the normal world (attack simulation).

        The rich OS controls the backing store, so a malicious operator
        *can* replace blobs; sealing only guarantees detection.
        """
        if name not in self._blobs:
            raise TeeStorageError(f"no sealed entry named {name!r}")
        self._blobs[name] = blob
