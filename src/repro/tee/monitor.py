"""The Secure Monitor: the only door between the two worlds.

Every normal-world request enters the secure world through
:meth:`SecureMonitor.smc_call` — the simulator's Secure Monitor Call
(Fig. 1).  The monitor flips the world flag around the dispatch, so secure
resources guarded by :class:`~repro.tee.worlds.WorldState` are reachable
exactly while a TA is handling a call, and it counts switches and
per-command invocations for the performance model (world switches are one
of the two dominant costs the adaptive sampler amortizes, §IV-C3).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import TeeError, TeeTransientError
from repro.obs.trace import get_tracer
from repro.tee.worlds import World, WorldState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.tee.optee import OpTeeCore


@dataclass
class SmcStats:
    """Counters the cost model consumes."""

    world_switches: int = 0
    calls_by_command: Counter[str] = field(default_factory=Counter)

    @property
    def total_calls(self) -> int:
        """Total SMC invocations (each costs two world switches)."""
        return sum(self.calls_by_command.values())


class SecureMonitor:
    """Dispatches SMCs into an :class:`~repro.tee.optee.OpTeeCore`."""

    #: Injection-point name transient-SMC-failure rules target.
    FAULT_POINT = "tee.smc"

    def __init__(self, core: "OpTeeCore"):
        self.state = WorldState()
        self.stats = SmcStats()
        self._core = core
        self._injector = None
        core._attach_monitor(self)

    def attach_injector(self, injector) -> None:
        """Opt this monitor into fault injection at :attr:`FAULT_POINT`.

        The monitor has no clock of its own; windowed rules need the
        injector constructed with a ``now_fn`` (the sim clock).  Pass
        ``None`` to detach.
        """
        self._injector = injector

    @property
    def current_world(self) -> World:
        """The currently executing world."""
        return self.state.current

    def smc_call(self, session_id: int, command: str, params: dict[str, Any]) -> Any:
        """Trap to the secure world, dispatch to a TA session, return.

        Re-entrant SMCs (a TA issuing an SMC) are rejected: OP-TEE TAs call
        each other through internal APIs, not by re-trapping.

        With a fault injector attached, a firing ``fail`` rule raises
        :class:`~repro.errors.TeeTransientError` *before* the world switch
        — modelling an SMC the secure world never serviced (busy TEE,
        scheduler preemption); no secure state is touched and no switch is
        counted.
        """
        if self.state.current is World.SECURE:
            raise TeeError("re-entrant SMC from the secure world")
        if self._injector is not None:
            self._injector.maybe_fail(self.FAULT_POINT,
                                      error=TeeTransientError)
        with get_tracer().span("tee.monitor.smc_call", command=command):
            self.stats.world_switches += 1  # normal -> secure
            self.state._enter_secure()
            try:
                self.stats.calls_by_command[command] += 1
                return self._core._dispatch(session_id, command, params)
            finally:
                self.state._exit_secure()
                self.stats.world_switches += 1  # secure -> normal

    def secure_boot_call(self, fn, *args, **kwargs):
        """Run ``fn`` inside the secure world outside any TA session.

        Models firmware-time execution (manufacture-time key provisioning,
        secure boot).  Not reachable from deployed normal-world code paths;
        only the provisioning flow in :mod:`repro.tee.attestation` uses it.
        """
        if self.state.current is World.SECURE:
            raise TeeError("re-entrant secure boot call")
        self.state._enter_secure()
        try:
            return fn(*args, **kwargs)
        finally:
            self.state._exit_secure()
