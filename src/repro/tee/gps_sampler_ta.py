"""The GPS Sampler Trusted Application (paper §IV-C2, §V-B).

A normal (non-privileged, dynamically loaded) TA.  Its one job: produce
*authenticated* GPS samples.  ``GetGPSAuth`` reads the latest measurement
from the secure-world GPS driver, encodes it as the canonical signed
payload, and signs it with the TEE sign key ``T-`` unsealed from secure
storage — the key never leaves the secure world.

The prototype signs with ``TEE_ALG_RSASSA_PKCS1_V1_5_SHA1``; the hash is
selectable at session-open for the modern-deployment variant.
"""

from __future__ import annotations

import uuid as uuid_module
from typing import Any

from repro.core.samples import GpsSample
from repro.crypto.keys import private_key_from_bytes, public_key_to_bytes
from repro.crypto.pkcs1 import sign_pkcs1_v15
from repro.crypto.schemes import SCHEME_RSA
from repro.errors import TrustedAppError
from repro.obs.trace import get_tracer
from repro.tee.gps_driver import SecureGpsDriver
from repro.tee.trusted_app import TrustedApplication
from repro.tee.worlds import SecureKeyHandle

#: Command: sample the GPS and return
#: ``{"payload": bytes, "signature": bytes, "scheme": str}``.
CMD_GET_GPS_AUTH = "GetGPSAuth"
#: Command: return the TEE verification key ``T+`` (public, freely shareable).
CMD_GET_PUBLIC_KEY = "GetPublicKey"

#: Sealed-storage entry name for the TEE sign key.
SIGN_KEY_ENTRY = "tee-sign-key"

GPS_SAMPLER_UUID = uuid_module.UUID("8aaaf200-2450-11e4-abe2-0002a5d5c51b")


class GpsSamplerTA(TrustedApplication):
    """Authenticated GPS sampling behind the ``GetGPSAuth`` interface."""

    UUID = GPS_SAMPLER_UUID

    def __init__(self) -> None:
        super().__init__()
        self._sign_key: SecureKeyHandle | None = None
        self._hash_name = "sha1"
        self.samples_signed = 0

    def open_session(self, params: dict[str, Any]) -> None:
        """Unseal the sign key; runs in the secure world at session open."""
        hash_name = params.get("hash_name", "sha1")
        if hash_name not in ("sha1", "sha256"):
            raise TrustedAppError(f"unsupported signing hash: {hash_name!r}")
        self._hash_name = hash_name
        storage = self.core.sealed_storage
        if storage is None:
            raise TrustedAppError("device has no sealed storage provisioned")
        key_bytes = storage.unseal(SIGN_KEY_ENTRY)
        key = private_key_from_bytes(key_bytes)
        self._sign_key = SecureKeyHandle(key, self.core.monitor.state,
                                         "TEE sign key T-")

    def close_session(self) -> None:
        self._sign_key = None

    def _driver(self) -> SecureGpsDriver:
        return self.kernel_service(SecureGpsDriver.SERVICE_NAME)

    def _consult_spoof_detector(self, fix) -> None:
        """Decline to sign in a suspicious GPS environment (§VII-A2)."""
        from repro.errors import TeeError
        from repro.tee.spoof_detector import GpsSpoofingDetector

        try:
            detector = self.kernel_service(GpsSpoofingDetector.SERVICE_NAME)
        except TeeError:
            return  # detector not provisioned on this device
        verdict = detector.observe(fix)
        if verdict.suspicious:
            self.core.op_counters["spoof_declines"] += 1
            raise TrustedAppError(
                f"GPS environment suspicious ({verdict.reason}); "
                "declining to provide authenticity services")

    def invoke_command(self, command: str, params: dict[str, Any]) -> Any:
        if self._sign_key is None:
            raise TrustedAppError("GPS Sampler session not opened")
        if command == CMD_GET_GPS_AUTH:
            return self._get_gps_auth()
        if command == CMD_GET_PUBLIC_KEY:
            key = self._sign_key.reveal()
            return public_key_to_bytes(key.public_key)
        raise TrustedAppError(f"GPS Sampler: unknown command {command!r}")

    def _get_gps_auth(self) -> dict[str, bytes]:
        tracer = get_tracer()
        with tracer.span("gps.receiver.get_fix"):
            fix = self._driver().get_gps()
        self._consult_spoof_detector(fix)
        sample = GpsSample(lat=fix.lat, lon=fix.lon, t=fix.time,
                           alt=fix.altitude_m)
        payload = sample.to_signed_payload()
        key = self._sign_key.reveal()
        with tracer.span("tee.gps_sampler_ta.sign", key_bits=key.bits,
                         hash=self._hash_name, t=sample.t):
            signature = sign_pkcs1_v15(key, payload, self._hash_name)
        self.samples_signed += 1
        self.core.op_counters[f"rsa_sign_{key.bits}"] += 1
        self.core.op_counters["gps_auth_samples"] += 1
        return {"payload": payload, "signature": signature,
                "scheme": SCHEME_RSA}
