"""Secure-world GPS spoofing detection (paper §VII-A2).

The paper's proposed mitigation for GPS spoofing: "embed the GPS spoofing
detector into the secure world.  If the hardware is running in a
suspicious environment, the GPS Sampler can decline to provide
authenticity services."

This detector runs as a secure-kernel service beside the GPS driver and
applies three plausibility checks over the recent fix history:

* **teleportation** — implied speed between consecutive fixes above the
  physical bound (plus slack for GPS noise);
* **time regression** — fix timestamps moving backwards;
* **frozen clock** — position changing while the reported GPS time stays
  still (a classic replay/synthesis artefact).

When any check trips, the detector latches *suspicious* for a hold-down
period; the GPS Sampler TA consults it before signing and refuses to
authenticate samples while the environment looks hostile — failing closed
exactly as the paper prescribes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gps.nmea import GpsFix
from repro.tee.worlds import WorldState
from repro.units import FAA_MAX_SPEED_MPS, EARTH_RADIUS_M


@dataclass(frozen=True, slots=True)
class SpoofVerdict:
    """The detector's current assessment."""

    suspicious: bool
    reason: str = ""


class GpsSpoofingDetector:
    """Plausibility monitor over the secure-world fix stream."""

    SERVICE_NAME = "gps-spoof-detector"

    def __init__(self, state: WorldState,
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 speed_slack: float = 1.5,
                 frozen_clock_moves_m: float = 5.0,
                 hold_down_s: float = 30.0,
                 history: int = 16):
        if speed_slack < 1.0:
            raise ConfigurationError("speed_slack must be at least 1.0")
        if hold_down_s < 0:
            raise ConfigurationError("hold_down must be non-negative")
        self._state = state
        self.vmax_mps = float(vmax_mps)
        self.speed_slack = float(speed_slack)
        self.frozen_clock_moves_m = float(frozen_clock_moves_m)
        self.hold_down_s = float(hold_down_s)
        self._fixes: deque[GpsFix] = deque(maxlen=history)
        self._suspicious_until: float | None = None
        self._last_reason = ""
        self.trips = 0

    @staticmethod
    def _distance_m(a: GpsFix, b: GpsFix) -> float:
        # Equirectangular over the short inter-fix baseline.
        mean_lat = math.radians((a.lat + b.lat) / 2.0)
        dx = math.radians(b.lon - a.lon) * math.cos(mean_lat) * EARTH_RADIUS_M
        dy = math.radians(b.lat - a.lat) * EARTH_RADIUS_M
        return math.hypot(dx, dy)

    def observe(self, fix: GpsFix) -> SpoofVerdict:
        """Feed one fix; returns the current verdict.  Secure world only."""
        self._state.require_secure("GPS spoofing detector")
        previous = self._fixes[-1] if self._fixes else None
        if previous is not None and fix.time != previous.time:
            self._check_pair(previous, fix)
        elif previous is not None:
            distance = self._distance_m(previous, fix)
            if distance > self.frozen_clock_moves_m:
                self._trip(fix.time,
                           f"position moved {distance:.0f} m on a frozen "
                           "GPS clock")
        if not self._fixes or fix.time >= self._fixes[-1].time:
            self._fixes.append(fix)
        return self.verdict(fix.time)

    def _check_pair(self, previous: GpsFix, fix: GpsFix) -> None:
        dt = fix.time - previous.time
        if dt < 0:
            self._trip(previous.time, "GPS time moved backwards")
            return
        distance = self._distance_m(previous, fix)
        speed = distance / dt
        if speed > self.vmax_mps * self.speed_slack:
            self._trip(fix.time,
                       f"implied speed {speed:.0f} m/s exceeds the physical "
                       f"bound ({self.vmax_mps * self.speed_slack:.0f} m/s)")

    def _trip(self, now: float, reason: str) -> None:
        self.trips += 1
        self._last_reason = reason
        self._suspicious_until = now + self.hold_down_s

    def verdict(self, now: float) -> SpoofVerdict:
        """The verdict at time ``now``.  Secure world only."""
        self._state.require_secure("GPS spoofing detector")
        if (self._suspicious_until is not None
                and now <= self._suspicious_until):
            return SpoofVerdict(suspicious=True, reason=self._last_reason)
        return SpoofVerdict(suspicious=False)
