"""The secure-world GPS driver (paper §IV-C2, §V-B).

Runs in the kernel space of the OP-TEE core.  It owns the mapping to the
GPS receiver's UART (here: the simulated receiver peripheral), reads the
latest ``$GPRMC`` sentence, parses it, and exposes ``GetGPS()`` returning
the parsed ``(lat, lon, timestamp)`` tuple to secure-world callers — our
Libnmea-in-the-kernel analogue.

Because the driver reads the receiver *inside* the TEE, the normal world
never sits between the GPS hardware and the signature: that is the whole
trust argument.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import NoFixError
from repro.gps.nmea import GpsFix, parse_gprmc
from repro.gps.receiver import SimulatedGpsReceiver
from repro.tee.worlds import WorldState


class SecureGpsDriver:
    """Kernel-space GPS driver bound to a receiver peripheral.

    Args:
        receiver: the (simulated) GPS receiver peripheral.
        state: world flag; every read asserts secure-world execution.
        now: callback supplying current simulation time — the hardware
            register the driver reads is "whatever the receiver last
            latched at this instant".
    """

    SERVICE_NAME = "gps-driver"

    def __init__(self, receiver: SimulatedGpsReceiver, state: WorldState,
                 now: Callable[[], float]):
        self._receiver = receiver
        self._state = state
        self._now = now
        self.reads = 0
        self.parse_failures = 0

    def get_gps(self) -> GpsFix:
        """``GetGPS()``: the latest parsed GPS measurement.

        Raises:
            NoFixError: the receiver has produced no update yet.
        """
        self._state.require_secure("GPS driver register read")
        self.reads += 1
        # Read path mirrors the prototype: raw NMEA from the mapped UART
        # buffer, then parse.  The round-trip through the sentence encoding
        # also quantizes exactly like real hardware output would.
        sentence = self._receiver.sentence_at(self._now())
        try:
            return parse_gprmc(sentence)
        except Exception:
            self.parse_failures += 1
            raise

    def has_fix(self) -> bool:
        """Whether at least one update has been latched."""
        self._state.require_secure("GPS driver register read")
        try:
            self._receiver.require_fix_at(self._now())
        except NoFixError:
            return False
        return True
