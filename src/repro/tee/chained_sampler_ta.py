"""A hash-chain GPS Sampler TA: amortized flight authentication (§VII-A1).

The per-sample :class:`~repro.tee.gps_sampler_ta.GpsSamplerTA` pays one
RSA signature per GPS fix — the dominant cost of the whole drone-side
protocol on pure-Python RSA.  This TA implements the TBRD-shaped
alternative (``hash-chain`` scheme): at flight start it draws a fresh
chain key, commits to its anchor with one RSA signature, then
authenticates every subsequent fix with a chained HMAC keyed off the
previous link.  ``FinalizeFlight`` closes the chain with a second RSA
signature over ``(anchor, final link, count)`` and discloses the chain
key so the Auditor can replay the links.

Security shape: the chain key lives only in the secure world until the
flight is finalized, so links cannot be forged mid-flight; after
disclosure, forging still requires re-signing the commitment or the
closure under ``T-``.  Truncation, splice, and reorder all break the
replayed chain structurally.
"""

from __future__ import annotations

import random
import uuid as uuid_module
from typing import Any

from repro.core.samples import GpsSample
from repro.crypto.schemes import SCHEME_CHAIN, ChainSigner
from repro.errors import TrustedAppError
from repro.obs.trace import get_tracer
from repro.tee.gps_sampler_ta import GpsSamplerTA

#: Command: begin a flight — draw the chain key, sign the commitment.
CMD_START_FLIGHT = "StartFlight"
#: Command: close the chain and return the flight finalizer blob.
CMD_FINALIZE_FLIGHT = "FinalizeFlight"

CHAINED_SAMPLER_UUID = uuid_module.UUID("41c8c2c0-3f51-4a9e-b1d4-7c03e5a92f10")


class ChainedGpsSamplerTA(GpsSamplerTA):
    """``GetGPSAuth`` with chained-HMAC blobs instead of RSA signatures.

    Session parameters accept an optional ``chain_seed`` (int) that makes
    the chain key deterministic — test/benchmark plumbing only; a real
    device always draws from the secure RNG.
    """

    UUID = CHAINED_SAMPLER_UUID

    def __init__(self) -> None:
        super().__init__()
        self._chain_rng: random.Random | None = None
        self._signer: ChainSigner | None = None

    def open_session(self, params: dict[str, Any]) -> None:
        super().open_session(params)
        seed = params.get("chain_seed")
        self._chain_rng = None if seed is None else random.Random(seed)
        self._signer = None

    def close_session(self) -> None:
        self._signer = None
        self._chain_rng = None
        super().close_session()

    def invoke_command(self, command: str, params: dict[str, Any]) -> Any:
        if self._sign_key is None:
            raise TrustedAppError("GPS Sampler session not opened")
        if command == CMD_START_FLIGHT:
            return self._start_flight()
        if command == CMD_FINALIZE_FLIGHT:
            return self._finalize_flight()
        return super().invoke_command(command, params)

    def _start_flight(self) -> dict[str, bytes]:
        key = self._sign_key.reveal()
        tracer = get_tracer()
        with tracer.span("tee.chained_sampler_ta.commit", key_bits=key.bits,
                         hash=self._hash_name):
            self._signer = ChainSigner(key, self._hash_name, self._chain_rng)
        self.core.op_counters[f"rsa_sign_{key.bits}"] += 1
        self.core.op_counters["chain_commitments"] += 1
        return {"anchor": self._signer.anchor,
                "commitment_signature": self._signer.commitment_signature}

    def _get_gps_auth(self) -> dict[str, Any]:
        if self._signer is None:
            raise TrustedAppError(
                "chained sampler: no flight started (StartFlight first)")
        tracer = get_tracer()
        with tracer.span("gps.receiver.get_fix"):
            fix = self._driver().get_gps()
        self._consult_spoof_detector(fix)
        sample = GpsSample(lat=fix.lat, lon=fix.lon, t=fix.time,
                           alt=fix.altitude_m)
        payload = sample.to_signed_payload()
        with tracer.span("tee.chained_sampler_ta.link", t=sample.t):
            link = self._signer.sign_sample(payload)
        self.samples_signed += 1
        self.core.op_counters["chain_links"] += 1
        self.core.op_counters["gps_auth_samples"] += 1
        return {"payload": payload, "signature": link,
                "scheme": SCHEME_CHAIN}

    def _finalize_flight(self) -> dict[str, bytes]:
        if self._signer is None:
            raise TrustedAppError(
                "chained sampler: no flight started (StartFlight first)")
        key = self._sign_key.reveal()
        tracer = get_tracer()
        with tracer.span("tee.chained_sampler_ta.close", key_bits=key.bits):
            finalizer = self._signer.finalize_flight()
        self._signer = None  # one finalizer per flight; chain key retired
        self.core.op_counters[f"rsa_sign_{key.bits}"] += 1
        self.core.op_counters["chain_finalizations"] += 1
        return {"finalizer": finalizer, "scheme": SCHEME_CHAIN}
