"""Manufacture-time provisioning of a TrustZone device (paper §III-B, §IV-B).

The threat model requires that the TEE sign keypair ``T = (T+, T-)`` is
generated at manufacturing time, with ``T-`` born inside the secure world
and ``T+`` handed to the device owner for registration with the Auditor.
:func:`provision_device` performs exactly that sequence: boot the core,
mint a device root key, generate ``T`` under a secure-boot call, seal
``T-``, and install the vendor-signed GPS Sampler TA.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

import hashlib

from repro.crypto.keys import private_key_to_bytes, public_key_to_bytes
from repro.crypto.pkcs1 import sign_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.errors import TeeError
from repro.gps.receiver import SimulatedGpsReceiver
from repro.tee.gps_driver import SecureGpsDriver
from repro.tee.gps_sampler_ta import SIGN_KEY_ENTRY, GpsSamplerTA
from repro.tee.monitor import SecureMonitor
from repro.tee.optee import OpTeeCore, TeeClient, sign_trusted_app
from repro.tee.secure_storage import SealedStorage
from repro.tee.worlds import SecureKeyHandle


@dataclass(frozen=True, slots=True)
class DeviceQuote:
    """A manufacturer-signed binding of device identity to its keys.

    The paper assumes the Auditor simply receives ``T+`` at registration;
    a real deployment needs evidence that ``T+`` belongs to a genuine TEE
    rather than to software an attacker controls.  The quote — signed by
    the manufacturer at provisioning time — binds the device serial, the
    TEE verification key, and the measurement (code digest) of the GPS
    Sampler TA image shipped on the device.
    """

    device_id: str
    tee_public_key: RsaPublicKey
    ta_measurement: bytes
    signature: bytes

    @staticmethod
    def _payload(device_id: str, tee_public_key: RsaPublicKey,
                 ta_measurement: bytes) -> bytes:
        return (b"ADQ1|" + device_id.encode() + b"|"
                + public_key_to_bytes(tee_public_key) + b"|" + ta_measurement)

    @classmethod
    def issue(cls, device_id: str, tee_public_key: RsaPublicKey,
              ta_measurement: bytes,
              manufacturer_key: RsaPrivateKey) -> "DeviceQuote":
        """Sign a quote (manufacturer provisioning step)."""
        payload = cls._payload(device_id, tee_public_key, ta_measurement)
        return cls(device_id=device_id, tee_public_key=tee_public_key,
                   ta_measurement=ta_measurement,
                   signature=sign_pkcs1_v15(manufacturer_key, payload,
                                            "sha256"))

    def verify(self, manufacturer_public_key: RsaPublicKey) -> bool:
        """Whether the quote was signed by this manufacturer."""
        payload = self._payload(self.device_id, self.tee_public_key,
                                self.ta_measurement)
        return verify_pkcs1_v15(manufacturer_public_key, payload,
                                self.signature, "sha256")


@dataclass
class TrustZoneDevice:
    """A provisioned TrustZone platform, ready to run the AliDrone client.

    Attributes:
        device_id: manufacturer serial (not the protocol's ``id_drone``).
        core: the OP-TEE core (secure world).
        monitor: the secure monitor between the worlds.
        client: the normal world's TEE Client API.
        sealed_storage: the device's sealed store.
        tee_public_key: ``T+``, exported at manufacture for registration.
    """

    device_id: str
    core: OpTeeCore
    monitor: SecureMonitor
    client: TeeClient
    sealed_storage: SealedStorage
    tee_public_key: RsaPublicKey
    quote: "DeviceQuote | None" = None
    _gps_attached: bool = field(default=False, repr=False)

    def attach_gps(self, receiver: SimulatedGpsReceiver,
                   now: Callable[[], float],
                   spoof_detection: bool = False) -> None:
        """Wire a GPS receiver peripheral into the secure world.

        Registers the receiver in the device tree and the secure GPS
        driver as a kernel service.  Must happen before the GPS Sampler TA
        is used.

        Args:
            spoof_detection: also provision the §VII-A2 spoofing detector;
                the GPS Sampler then refuses to sign while the fix stream
                looks implausible.
        """
        if self._gps_attached:
            raise TeeError("a GPS receiver is already attached")
        self.core.register_device("gps-uart", receiver)
        driver = SecureGpsDriver(receiver, self.monitor.state, now)
        self.core.register_kernel_service(SecureGpsDriver.SERVICE_NAME, driver)
        if spoof_detection:
            from repro.tee.spoof_detector import GpsSpoofingDetector

            detector = GpsSpoofingDetector(self.monitor.state)
            self.core.register_kernel_service(
                GpsSpoofingDetector.SERVICE_NAME, detector)
        self._gps_attached = True

    @property
    def gps_driver(self) -> SecureGpsDriver:
        """The secure GPS driver (for instrumentation in tests/benchmarks)."""
        return self.core._kernel_services[SecureGpsDriver.SERVICE_NAME]


def provision_device(device_id: str, *, key_bits: int = 1024,
                     rng: random.Random | None = None,
                     vendor_key: RsaPrivateKey | None = None,
                     hash_name: str = "sha1") -> TrustZoneDevice:
    """Manufacture a TrustZone device with a fresh TEE keypair.

    Args:
        device_id: manufacturer serial number.
        key_bits: TEE sign key size (the paper benchmarks 1024 and 2048).
        rng: randomness source; seed it for reproducible devices.
        vendor_key: TA-signing vendor key; generated if omitted.
        hash_name: kept for symmetry with the client (unused here).

    Returns:
        A fully provisioned :class:`TrustZoneDevice` whose private key
        exists only sealed inside the device.
    """
    del hash_name  # sessions choose their hash at open time
    rng = rng or random.SystemRandom()
    if vendor_key is None:
        # The vendor key only authenticates TA images; a small-but-valid
        # key keeps provisioning cheap without touching the measured path.
        vendor_key = generate_rsa_keypair(max(512, min(key_bits, 1024)), rng=rng)

    core = OpTeeCore(ta_verification_key=vendor_key.public_key)
    monitor = SecureMonitor(core)

    # Device root key: burned into fuses at manufacture, secure world only.
    root_material = bytes(rng.randrange(256) for _ in range(32))
    root_handle = SecureKeyHandle(root_material, monitor.state,
                                  f"device root key ({device_id})")
    storage = SealedStorage(root_handle, monitor.state)
    core.sealed_storage = storage

    # Generate T inside the secure world and seal T-; only T+ escapes.
    def _mint_tee_keypair() -> RsaPublicKey:
        keypair = generate_rsa_keypair(key_bits, rng=rng)
        storage.seal(SIGN_KEY_ENTRY, private_key_to_bytes(keypair))
        return keypair.public_key

    tee_public_key = monitor.secure_boot_call(_mint_tee_keypair)

    # Build, sign, and install the GPS Sampler TA image, plus the
    # amortized-authentication variants so a provisioned device can fly
    # under any registered scheme.  (The batch TA lives in extensions,
    # whose package imports this module — import it lazily.)
    from repro.tee.chained_sampler_ta import ChainedGpsSamplerTA
    from repro.tee.merkle_sampler_ta import MerkleGpsSamplerTA

    image = sign_trusted_app(GpsSamplerTA, GpsSamplerTA.UUID, vendor_key)
    core.ta_store.install(image)
    core.ta_store.install(sign_trusted_app(
        ChainedGpsSamplerTA, ChainedGpsSamplerTA.UUID, vendor_key))
    core.ta_store.install(sign_trusted_app(
        MerkleGpsSamplerTA, MerkleGpsSamplerTA.UUID, vendor_key))
    from repro.extensions.batch_signing import BatchGpsSamplerTA

    core.ta_store.install(sign_trusted_app(
        BatchGpsSamplerTA, BatchGpsSamplerTA.UUID, vendor_key))

    # Issue the attestation quote: manufacturer-signed binding of the
    # device serial, T+, and the shipped TA image measurement.
    from repro.tee.optee import _ta_code_bytes

    measurement = hashlib.sha256(
        _ta_code_bytes(GpsSamplerTA, GpsSamplerTA.UUID)).digest()
    quote = DeviceQuote.issue(device_id, tee_public_key, measurement,
                              vendor_key)

    return TrustZoneDevice(device_id=device_id, core=core, monitor=monitor,
                           client=TeeClient(monitor), sealed_storage=storage,
                           tee_public_key=tee_public_key, quote=quote)
