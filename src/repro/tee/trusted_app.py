"""Trusted Application base classes (paper §II-C).

OP-TEE distinguishes two TA flavours:

* normal **TAs** run in non-privileged secure mode, are signed by a vendor
  key, live in *untrusted* storage, and are dynamically loaded by UUID via
  the tee-supplicant.  They cannot map peripherals.
* **Pseudo TAs (PTAs)** are statically linked into the OP-TEE core, run
  privileged, and may map peripherals by physical address.

The GPS Sampler is a normal TA; the GPS driver it reads from is a kernel
service of the core (reachable only from secure-world code).
"""

from __future__ import annotations

import uuid as uuid_module
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import TrustedAppError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.tee.optee import OpTeeCore


class TrustedApplication:
    """Base class for dynamically loaded, non-privileged TAs.

    Subclasses set :attr:`UUID` and implement :meth:`invoke_command`.
    Instances only ever execute inside the secure world (the core
    instantiates them during an SMC dispatch).
    """

    #: GlobalPlatform-style TA identity; subclasses must override.
    UUID: uuid_module.UUID = uuid_module.UUID(int=0)

    def __init__(self) -> None:
        self._core: "OpTeeCore | None" = None

    @property
    def core(self) -> "OpTeeCore":
        """The hosting OP-TEE core (set when the TA is loaded)."""
        if self._core is None:
            raise TrustedAppError("TA is not loaded into a core")
        return self._core

    def on_load(self, core: "OpTeeCore") -> None:
        """Called once when the core instantiates the TA."""
        self._core = core

    def open_session(self, params: dict[str, Any]) -> None:
        """Per-session initialization hook (GlobalPlatform OpenSession)."""

    def close_session(self) -> None:
        """Per-session teardown hook (GlobalPlatform CloseSession)."""

    def invoke_command(self, command: str, params: dict[str, Any]) -> Any:
        """Handle one command; must be overridden."""
        raise TrustedAppError(f"TA {type(self).__name__} handles no commands")

    def map_device(self, name: str) -> Any:
        """Normal TAs cannot map peripherals (paper §II-C)."""
        raise TrustedAppError(
            f"non-privileged TA {type(self).__name__} cannot map device {name!r}")

    def kernel_service(self, name: str) -> Any:
        """Access a secure-kernel service (e.g. the GPS driver)."""
        return self.core.kernel_service(name)


class PseudoTrustedApplication(TrustedApplication):
    """A privileged, statically built-in TA with peripheral access."""

    def map_device(self, name: str) -> Any:
        """Map a peripheral from the device tree (privileged)."""
        return self.core.device(name)


@dataclass
class TaSession:
    """An open session between a normal-world client and a TA instance."""

    session_id: int
    ta: TrustedApplication

    def close(self) -> None:
        """Run the TA's session teardown."""
        self.ta.close_session()
