"""Operator-side selective disclosure: reveal exactly what the alibi needs.

Given a full Merkle-committed flight, :func:`disclose` chooses the subset
of samples a verifier needs to re-establish the alibi conditions and
packages it as a :class:`DisclosedAlibi` — revealed payloads, one
membership proof per payload, and the flight's signed root finalizer.

Selection runs in two phases:

1. **Mandatory set** — both flight endpoints (the disclosure stage
   requires proven leaves ``0`` and ``count - 1``); every fix within the
   zone-proximity cutoff of some zone boundary (looked up through
   :class:`~repro.geo.proximity.ZoneProximityIndex` for large zone
   sets); both members of any ``v_max``-infeasible consecutive pair
   (evidence of infeasibility is never redacted, so a full-trace
   SPEED_INFEASIBLE verdict survives disclosure); and the adjacent fix
   on each side of every disclosed run, so each revealed excursion is
   bracketed by its committed neighbours.
2. **Gap repair** — any gap between adjacent revealed fixes that the
   verifier's conservative gap rule would reject is bisected (the middle
   committed sample is added) until every gap is provably clear or the
   gap has collapsed to adjacency.  Because the repair loop applies the
   *same* predicate as the verification pipeline's disclosure stage, an
   honest flight that verifies ACCEPTED in full always yields a
   disclosure that verifies ACCEPTED too — the loop only ever stops
   hiding samples, and a fully-revealed trace is the full flight again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.crypto.schemes import SCHEME_MERKLE, MerkleFinalizer
from repro.errors import ConfigurationError, SchemeError
from repro.geo.circle import Circle
from repro.geo.ellipse import (
    _EPS,
    TravelRangeEllipse,
    ellipse_disk_disjoint_conservative,
)
from repro.geo.geodesy import LocalFrame
from repro.geo.proximity import ZoneProximityIndex
from repro.privacy.merkle import MerkleTree
from repro.units import FAA_MAX_SPEED_MPS

#: Below this zone count a brute-force scan beats building an index —
#: the same crossover the verification pipeline uses.
_INDEX_MIN_ZONES = 8


@dataclass(frozen=True)
class DisclosedAlibi:
    """A bandwidth-bounded alibi: revealed subset + proofs + root sig.

    ``poa`` is a well-formed ``merkle-disclosure`` PoA whose entries
    carry membership proofs in their auth blobs; it submits through the
    exact same envelope/encryption path as a full trace.
    """

    poa: ProofOfAlibi
    revealed_indices: tuple[int, ...]
    total_samples: int

    @property
    def revealed_count(self) -> int:
        return len(self.revealed_indices)

    @property
    def redaction_ratio(self) -> float:
        """Fraction of the committed trace kept private."""
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.revealed_count / self.total_samples

    def wire_bytes(self) -> int:
        """Payload + proof + finalizer bytes this alibi puts on the wire."""
        return sum(len(entry.payload) + len(entry.signature)
                   for entry in self.poa) + len(self.poa.finalizer)


def _full_trace_parts(poa: ProofOfAlibi,
                      ) -> tuple[MerkleFinalizer, list[bytes]]:
    """Validate and unpack a full-trace Merkle PoA; raise on anything else."""
    if poa.scheme != SCHEME_MERKLE:
        raise ConfigurationError(
            f"disclosure needs a {SCHEME_MERKLE!r} flight, got {poa.scheme!r}")
    try:
        fin = MerkleFinalizer.from_bytes(poa.finalizer)
    except SchemeError as exc:
        raise ConfigurationError(f"unsealed or malformed finalizer: {exc}")
    payloads = [entry.payload for entry in poa]
    if any(entry.signature for entry in poa) or len(payloads) != fin.count:
        raise ConfigurationError(
            "disclosure starts from the full committed trace")
    if not payloads:
        raise ConfigurationError("nothing to disclose: empty flight")
    return fin, payloads


def _pair_clears(a: tuple[float, float], b: tuple[float, float],
                 focal_sum: float, circles: Sequence[Circle],
                 index: ZoneProximityIndex | None) -> bool:
    """The verifier's conservative gap rule for one revealed pair."""
    threshold = focal_sum + _EPS
    if index is not None:
        minimum = index.min_pair_distance(a, b, cutoff_m=threshold)
        return minimum is None or minimum > threshold
    ellipse = TravelRangeEllipse(f1=a, f2=b, focal_sum=focal_sum)
    return all(ellipse_disk_disjoint_conservative(ellipse, circle)
               for circle in circles)


def _near_zone(position: tuple[float, float], cutoff_m: float,
               circles: Sequence[Circle],
               index: ZoneProximityIndex | None) -> bool:
    """Whether a fix sits within ``cutoff_m`` of some zone boundary."""
    if index is not None:
        return bool(index.candidates_within(position, cutoff_m))
    return any(circle.distance_to_boundary(position) <= cutoff_m
               for circle in circles)


def mandatory_indices(samples: Sequence[GpsSample],
                      positions: Sequence[tuple[float, float]],
                      circles: Sequence[Circle],
                      index: ZoneProximityIndex | None,
                      vmax_mps: float, cutoff_m: float) -> set[int]:
    """Phase 1: the indices no honest disclosure may hide."""
    n = len(samples)
    chosen = {0, n - 1}
    for i, position in enumerate(positions):
        if _near_zone(position, cutoff_m, circles, index):
            chosen.add(i)
    for i in range(n - 1):
        dt = samples[i + 1].t - samples[i].t
        ax, ay = positions[i]
        bx, by = positions[i + 1]
        distance = ((bx - ax) ** 2 + (by - ay) ** 2) ** 0.5
        # Unslackened bound: flag (and therefore reveal) at least every
        # pair the verifier's feasibility stage would.
        if distance > vmax_mps * max(dt, 0.0) + 1e-9:
            chosen.update((i, i + 1))
    # Bracket every disclosed run with its committed neighbours.
    for i in sorted(chosen):
        if i - 1 >= 0:
            chosen.add(i - 1)
        if i + 1 < n:
            chosen.add(i + 1)
    return chosen


def disclose(poa: ProofOfAlibi, zones: Sequence[NoFlyZone],
             frame: LocalFrame, *, vmax_mps: float = FAA_MAX_SPEED_MPS,
             cutoff_m: float | None = None) -> DisclosedAlibi:
    """Select, prove, and package the verifier-sufficient subset.

    Args:
        poa: the full Merkle-committed flight (empty auth blobs, sealed
            finalizer), as produced by a ``merkle-disclosure`` flight.
        cutoff_m: zone-proximity cutoff for the mandatory set.  Defaults
            to ``v_max`` times the flight's longest sampling interval —
            generous enough that anything the gap rule could care about
            is already revealed, which keeps the repair loop short; the
            repair loop, not this heuristic, carries soundness.
    """
    fin, payloads = _full_trace_parts(poa)
    del fin
    samples = [entry.sample for entry in poa]
    positions = [sample.local_position(frame) for sample in samples]
    n = len(samples)

    circles = [zone.to_circle(frame) for zone in zones]
    index = (ZoneProximityIndex.from_circles(circles)
             if len(circles) >= _INDEX_MIN_ZONES else None)
    if cutoff_m is None:
        longest_dt = max((samples[i + 1].t - samples[i].t
                          for i in range(n - 1)), default=0.0)
        cutoff_m = vmax_mps * max(longest_dt, 0.0)

    chosen = mandatory_indices(samples, positions, circles, index,
                               vmax_mps, cutoff_m)

    # Phase 2: bisect every gap the verifier's conservative rule would
    # reject, until it clears or collapses to adjacency.
    stack = []
    ordered = sorted(chosen)
    stack.extend((a, b) for a, b in zip(ordered, ordered[1:]) if b - a > 1)
    while stack:
        a, b = stack.pop()
        focal_sum = vmax_mps * (samples[b].t - samples[a].t)
        if circles and not _pair_clears(positions[a], positions[b],
                                        focal_sum, circles, index):
            middle = (a + b) // 2
            chosen.add(middle)
            if middle - a > 1:
                stack.append((a, middle))
            if b - middle > 1:
                stack.append((middle, b))

    revealed = tuple(sorted(chosen))
    tree = MerkleTree(payloads)
    entries = [SignedSample(payload=payloads[i],
                            signature=tree.membership_proof(i).to_bytes(),
                            scheme=SCHEME_MERKLE)
               for i in revealed]
    disclosed = poa.replace_entries(entries)
    return DisclosedAlibi(poa=disclosed, revealed_indices=revealed,
                          total_samples=n)
