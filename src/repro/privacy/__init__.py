"""Privacy-preserving selective-disclosure alibi (docs/PROTOCOL.md §8).

AliDrone's baseline protocol reveals the entire signed GPS trace to the
Auditor, leaking the full flight path even though only boundary-near
behaviour matters for the alibi conditions.  This package keeps the
trust chain while bounding what leaves the operator:

* :mod:`repro.privacy.merkle` — deterministic Merkle commitments over
  framed sample payloads, with index-addressed membership proofs.
* :mod:`repro.privacy.disclosure` — the operator-side policy choosing
  which committed samples a verifier actually needs, packaged as a
  :class:`~repro.privacy.disclosure.DisclosedAlibi`.
* :mod:`repro.privacy.differential` — the decision-equivalence sweep
  showing disclosure never changes an honest verdict and never converts
  a full-trace REJECT into an ACCEPT.

Only the Merkle core is re-exported here: the disclosure and
differential modules depend on the PoA container and the scheme
registry, which themselves import this package's Merkle primitives, so
they must be imported as submodules to keep the import graph acyclic.
"""

from repro.privacy.merkle import (
    EMPTY_ROOT,
    HASH_LENGTH,
    MembershipProof,
    MerkleTree,
    leaf_hash,
    merkle_root,
    node_hash,
    verify_membership,
)

__all__ = [
    "EMPTY_ROOT",
    "HASH_LENGTH",
    "MembershipProof",
    "MerkleTree",
    "leaf_hash",
    "merkle_root",
    "node_hash",
    "verify_membership",
]
