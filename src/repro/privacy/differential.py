"""Decision-equivalence sweep for the selective-disclosure layer.

:func:`run_disclosure_differential` generates randomized Merkle-committed
flights — honest walks plus deliberately non-compliant ones — and checks
the two standing invariants of the disclosure design:

* **Honest decision identity** — an honest flight verifies ACCEPTED
  under the honest disclosure policy exactly when its full trace does.
  (The policy's gap-repair loop applies the verifier's own conservative
  gap rule, so this is expected to hold with equality, not just
  approximately.)
* **Zero false accepts** — no disclosure, honest or adversarial, ever
  converts a full-trace REJECT into an ACCEPT.  Four adversarial
  disclosure policies are exercised per trial: hiding every
  boundary-near sample behind valid membership proofs (hidden
  incursion), revealing only the endpoints (over-redaction), splicing
  proofs from a different flight under this flight's root signature,
  and forging sibling hashes outright.  The structural attacks (splice,
  forged siblings) must reject *unconditionally* — their content is
  tampered regardless of what the underlying flight did.

The non-compliant flights cover the three rejection families disclosure
could plausibly launder: a walk straight through a zone (insufficient
pairs), an authenticated teleport (speed infeasibility), and a
boundary-hugging walk sampled too sparsely (insufficient coverage).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.conformance.harness import random_zones
from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier
from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.crypto.schemes import SCHEME_MERKLE, authenticate_payloads
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.privacy.disclosure import disclose
from repro.privacy.merkle import MembershipProof, MerkleTree
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import FAA_MAX_SPEED_MPS

_ORIGIN = GeoPoint(40.2000, -88.3000)

#: Non-compliant flight kinds, cycled across the sweep's bad trials.
BAD_KINDS = ("violation_walk", "teleport", "sparse_near_zone")

#: Adversarial disclosure policies exercised on every trial.
ADVERSARIAL_POLICIES = ("hide_near_zone", "endpoints_only",
                       "cross_flight_splice", "forged_sibling")

#: Structural policies whose content is tampered: any ACCEPT is a failure.
_STRUCTURAL = frozenset({"cross_flight_splice", "forged_sibling"})


def _merkle_poa(payloads: list[bytes], key: RsaPrivateKey,
                rng: random.Random) -> ProofOfAlibi:
    blobs, finalizer = authenticate_payloads(key, payloads, SCHEME_MERKLE,
                                             rng=rng)
    return ProofOfAlibi(
        (SignedSample(payload=payload, signature=blob, scheme=SCHEME_MERKLE)
         for payload, blob in zip(payloads, blobs)),
        scheme=SCHEME_MERKLE, finalizer=finalizer)


def _honest_walk(rng: random.Random, frame: LocalFrame,
                 key: RsaPrivateKey, area_m: float = 2_000.0,
                 vmax_mps: float = FAA_MAX_SPEED_MPS) -> ProofOfAlibi:
    """A feasible random walk with enough samples to make redaction real."""
    n = rng.randint(2, 40)
    x = rng.uniform(0.0, area_m)
    y = rng.uniform(0.0, area_m)
    t = DEFAULT_EPOCH + rng.uniform(0.0, 3_600.0)
    payloads = []
    for _ in range(n):
        point = frame.to_geo(x, y)
        payloads.append(GpsSample(point.lat, point.lon, t)
                        .to_signed_payload())
        dt = rng.uniform(0.5, 4.0)
        heading = rng.uniform(0.0, 2.0 * math.pi)
        step = rng.uniform(0.0, 0.8 * vmax_mps) * dt
        x += math.cos(heading) * step
        y += math.sin(heading) * step
        t += dt
    return _merkle_poa(payloads, key, rng)


def _bad_flight(kind: str, rng: random.Random, frame: LocalFrame,
                zones: list[NoFlyZone], key: RsaPrivateKey,
                vmax_mps: float = FAA_MAX_SPEED_MPS) -> ProofOfAlibi:
    """A flight whose *full* trace must not verify ACCEPTED."""
    zone = zones[0]
    cx, cy = frame.to_local(zone.center)
    if kind == "violation_walk":
        # Straight through the zone at an honest cruise speed.
        speed = 0.5 * vmax_mps
        start = (cx - zone.radius_m - 400.0, cy)
        end = (cx + zone.radius_m + 400.0, cy)
        length = math.dist(start, end)
        steps = max(8, int(length / (2.0 * speed)))
        t = DEFAULT_EPOCH + rng.uniform(0.0, 3_600.0)
        payloads = []
        for i in range(steps + 1):
            s = i / steps
            point = frame.to_geo(start[0] + s * (end[0] - start[0]),
                                 start[1] + s * (end[1] - start[1]))
            payloads.append(GpsSample(point.lat, point.lon, t)
                            .to_signed_payload())
            t += length / steps / speed
        return _merkle_poa(payloads, key, rng)
    if kind == "teleport":
        honest = _honest_walk(rng, frame, key, vmax_mps=vmax_mps)
        last = honest.entries[-1].sample
        moved = GpsSample(last.lat + 0.5, last.lon, last.t + 1.0)
        payloads = [entry.payload for entry in honest] \
            + [moved.to_signed_payload()]
        return _merkle_poa(payloads, key, rng)
    if kind == "sparse_near_zone":
        # Hug the boundary with gaps too long to rule out an entrance.
        t = DEFAULT_EPOCH + rng.uniform(0.0, 3_600.0)
        offset = zone.radius_m + 40.0
        payloads = []
        for i in range(4):
            point = frame.to_geo(cx - offset + i * 10.0, cy + offset)
            payloads.append(GpsSample(point.lat, point.lon, t)
                            .to_signed_payload())
            t += 120.0
        return _merkle_poa(payloads, key, rng)
    raise ValueError(f"unknown bad flight kind: {kind}")  # pragma: no cover


def _subset_poa(poa: ProofOfAlibi, indices: list[int]) -> ProofOfAlibi:
    """A disclosure of ``indices`` with *valid* membership proofs."""
    payloads = [entry.payload for entry in poa]
    tree = MerkleTree(payloads)
    entries = [SignedSample(payload=payloads[i],
                            signature=tree.membership_proof(i).to_bytes(),
                            scheme=SCHEME_MERKLE)
               for i in indices]
    return poa.replace_entries(entries)


def _adversarial_disclosure(policy: str, poa: ProofOfAlibi,
                            previous: ProofOfAlibi | None,
                            zones: list[NoFlyZone], frame: LocalFrame,
                            rng: random.Random) -> ProofOfAlibi | None:
    """One adversarially redacted/tampered submission, or None if n/a."""
    n = len(poa)
    if policy == "hide_near_zone":
        # Hidden incursion: suppress everything near a boundary, keep
        # the proofs valid so only the gap rule can object.
        circles = [zone.to_circle(frame) for zone in zones]
        keep = {0, n - 1}
        for i, entry in enumerate(poa):
            position = entry.sample.local_position(frame)
            if all(circle.distance_to_boundary(position) > 50.0
                   for circle in circles):
                keep.add(i)
        return _subset_poa(poa, sorted(keep))
    if policy == "endpoints_only":
        return _subset_poa(poa, sorted({0, n - 1}))
    if policy == "cross_flight_splice":
        if previous is None or len(previous) < 2 or n < 2:
            return None
        # First half of this flight, tail from another flight's tree,
        # all under *this* flight's root signature.
        own = _subset_poa(poa, [0])
        other_payloads = [entry.payload for entry in previous]
        other_tree = MerkleTree(other_payloads)
        foreign_index = len(previous) - 1
        if foreign_index == 0:
            return None
        foreign = SignedSample(
            payload=other_payloads[foreign_index],
            signature=other_tree.membership_proof(
                foreign_index).to_bytes(),
            scheme=SCHEME_MERKLE)
        return poa.replace_entries(list(own.entries) + [foreign])
    if policy == "forged_sibling":
        honest = disclose(poa, zones, frame)
        entries = list(honest.poa.entries)
        target = rng.randrange(len(entries))
        proof = MembershipProof.from_bytes(entries[target].signature)
        doctored = bytearray(entries[target].payload)
        doctored[rng.randrange(len(doctored))] ^= 1 << rng.randrange(8)
        forged = MembershipProof(
            leaf_index=proof.leaf_index,
            siblings=tuple(bytes(rng.randrange(256) for _ in range(32))
                           for _sibling in proof.siblings))
        entries[target] = SignedSample(payload=bytes(doctored),
                                       signature=forged.to_bytes(),
                                       scheme=SCHEME_MERKLE)
        return honest.poa.replace_entries(entries)
    raise ValueError(f"unknown policy: {policy}")  # pragma: no cover


@dataclass
class DisclosureReport:
    """Aggregate verdict of one disclosure differential run."""

    trajectories: int = 0
    scheme: str = SCHEME_MERKLE
    honest_trials: int = 0
    honest_decision_matches: int = 0
    honest_accepts: int = 0
    bad_trials: int = 0
    bad_rejects_preserved: int = 0
    adversarial_trials: int = 0
    adversarial_false_accepts: int = 0
    adversarial_outcomes: dict = field(default_factory=dict)
    full_wire_bytes: int = 0
    disclosed_wire_bytes: int = 0
    revealed_samples: int = 0
    total_samples: int = 0
    disagreements: list[dict] = field(default_factory=list)

    @property
    def bandwidth_reduction(self) -> float:
        """Full rsa-v15 wire bytes over disclosed wire bytes."""
        if self.disclosed_wire_bytes == 0:
            return 0.0
        return self.full_wire_bytes / self.disclosed_wire_bytes

    @property
    def ok(self) -> bool:
        return (not self.disagreements
                and self.honest_decision_matches == self.honest_trials
                and self.bad_rejects_preserved == self.bad_trials
                and self.adversarial_false_accepts == 0)

    def to_dict(self) -> dict:
        return {
            "trajectories": self.trajectories,
            "scheme": self.scheme,
            "honest_trials": self.honest_trials,
            "honest_decision_matches": self.honest_decision_matches,
            "honest_accepts": self.honest_accepts,
            "bad_trials": self.bad_trials,
            "bad_rejects_preserved": self.bad_rejects_preserved,
            "adversarial_trials": self.adversarial_trials,
            "adversarial_false_accepts": self.adversarial_false_accepts,
            "adversarial_outcomes": self.adversarial_outcomes,
            "full_wire_bytes": self.full_wire_bytes,
            "disclosed_wire_bytes": self.disclosed_wire_bytes,
            "bandwidth_reduction": round(self.bandwidth_reduction, 3),
            "revealed_samples": self.revealed_samples,
            "total_samples": self.total_samples,
            "disagreements": self.disagreements,
            "ok": self.ok,
        }


def run_disclosure_differential(trajectories: int = 200, seed: int = 0,
                                key_bits: int = 512, max_zones: int = 12,
                                ) -> DisclosureReport:
    """Sweep honest + non-compliant flights through every disclosure policy.

    Roughly one trial in three is a non-compliant flight (cycled through
    :data:`BAD_KINDS`); every trial additionally runs all four
    adversarial disclosure policies.  Wire accounting compares the
    honest disclosure against full rsa-v15 disclosure of the same trace
    (one signature per sample), the baseline the paper's prototype
    ships.
    """
    rng = random.Random(seed)
    key = generate_rsa_keypair(key_bits, rng=rng)
    signature_bytes = (key.n.bit_length() + 7) // 8
    frame = LocalFrame(_ORIGIN)
    verifier = PoaVerifier(frame)
    report = DisclosureReport(trajectories=trajectories)
    outcomes = {policy: {"trials": 0, "accepts": 0, "false_accepts": 0}
                for policy in ADVERSARIAL_POLICIES}
    previous: ProofOfAlibi | None = None

    for trial in range(trajectories):
        bad = trial % 3 == 2
        kind = BAD_KINDS[(trial // 3) % len(BAD_KINDS)] if bad else None
        n_zones = rng.randint(1 if bad else 0, max_zones)
        zones = random_zones(rng, frame, n_zones)
        if bad:
            poa = _bad_flight(kind, rng, frame, zones, key)
        else:
            poa = _honest_walk(rng, frame, key)

        full = verifier.verify(poa, key.public_key, zones)
        alibi = disclose(poa, zones, frame)
        disclosed = verifier.verify(alibi.poa, key.public_key, zones)

        if bad:
            report.bad_trials += 1
            preserved = not (full.compliant is False and disclosed.compliant)
            report.bad_rejects_preserved += preserved
            if not preserved:
                report.disagreements.append({
                    "trial": trial, "kind": kind, "zones": n_zones,
                    "full": full.status.value,
                    "disclosed": disclosed.status.value,
                })
        else:
            report.honest_trials += 1
            match = full.compliant == disclosed.compliant
            report.honest_decision_matches += match
            report.honest_accepts += full.compliant
            if not match:
                report.disagreements.append({
                    "trial": trial, "kind": "honest", "zones": n_zones,
                    "full": full.status.value,
                    "disclosed": disclosed.status.value,
                })
            report.full_wire_bytes += sum(
                len(entry.payload) + signature_bytes for entry in poa)
            report.disclosed_wire_bytes += alibi.wire_bytes()
            report.revealed_samples += alibi.revealed_count
            report.total_samples += alibi.total_samples

        for policy in ADVERSARIAL_POLICIES:
            adversarial = _adversarial_disclosure(policy, poa, previous,
                                                  zones, frame, rng)
            if adversarial is None:
                continue
            verdict = verifier.verify(adversarial, key.public_key, zones)
            entry = outcomes[policy]
            entry["trials"] += 1
            report.adversarial_trials += 1
            entry["accepts"] += verdict.compliant
            false_accept = verdict.compliant and (
                policy in _STRUCTURAL or not full.compliant)
            if false_accept:
                entry["false_accepts"] += 1
                report.adversarial_false_accepts += 1
                report.disagreements.append({
                    "trial": trial, "kind": policy, "zones": n_zones,
                    "full": full.status.value,
                    "disclosed": verdict.status.value,
                })
        previous = poa

    report.adversarial_outcomes = outcomes
    return report
