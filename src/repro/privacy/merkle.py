"""Deterministic Merkle commitments over framed GPS sample payloads.

The selective-disclosure alibi (docs/PROTOCOL.md §8) replaces "reveal the
whole signed trace" with "reveal a committed subset": at FinalizeFlight
the TEE signs one Merkle root over every sample payload of the flight,
and the operator later discloses only the samples a verifier needs, each
carried with a membership proof against that root.

Three properties the verifier leans on are decided *here*, by
construction:

* **Framing + domain separation** — a leaf hashes ``0x00 || len ||
  payload`` and an interior node hashes ``0x01 || left || right``, so a
  64-byte payload can never be confused with a node preimage and payload
  concatenation cannot collide across boundaries (same framing discipline
  as :func:`repro.crypto.digest.framed_sha256`).
* **No duplicate-leaf ambiguity** — an odd node at any level is
  *promoted* unchanged rather than paired with a copy of itself, so the
  CVE-2012-2459 construction (appending a duplicate of the last leaf
  yields the same root) is structurally impossible: trees over ``n`` and
  ``n+1`` leaves never share a root shape, and the signed leaf count
  pins ``n`` anyway.
* **Index-addressed proofs** — a membership proof carries the leaf index
  and the sibling chain only; which side each sibling hashes on is fully
  determined by the index and the level widths derived from the signed
  leaf count.  Proving membership therefore *also* proves position, which
  is what gives the disclosure layer its ordering and adjacency
  guarantees (two revealed samples are adjacent in the committed trace
  iff their proven indices differ by one).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, SchemeError

#: SHA-256 everywhere: leaves, nodes, and the committed root.
HASH_LENGTH = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Root of the zero-leaf tree.  An empty flight still produces a
#: well-formed finalizer (count 0, this root); the verification pipeline
#: rejects empty PoAs downstream as ``EMPTY_POA``.
EMPTY_ROOT = hashlib.sha256(b"ADMK-EMPTY").digest()

#: Wire prefix of a membership proof: leaf index (u32) + sibling count (u16).
_PROOF_HEADER = struct.Struct(">IH")


def leaf_hash(payload: bytes) -> bytes:
    """``SHA-256(0x00 || len(payload) || payload)`` — framed leaf digest."""
    return hashlib.sha256(
        _LEAF_PREFIX + len(payload).to_bytes(4, "big") + payload).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """``SHA-256(0x01 || left || right)`` — interior node digest."""
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True, slots=True)
class MembershipProof:
    """One revealed sample's path to the committed root.

    ``siblings`` runs leaf-to-root; each sibling's side is derived from
    ``leaf_index`` and the level widths of a tree with the signed leaf
    count, so the encoding carries no direction bits to tamper with.
    """

    leaf_index: int
    siblings: tuple[bytes, ...]

    def to_bytes(self) -> bytes:
        return b"".join([
            _PROOF_HEADER.pack(self.leaf_index, len(self.siblings)),
            *self.siblings,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "MembershipProof":
        """Decode a proof blob; raises :class:`SchemeError` when malformed."""
        if len(data) < _PROOF_HEADER.size:
            raise SchemeError("truncated Merkle membership proof")
        leaf_index, n_siblings = _PROOF_HEADER.unpack_from(data, 0)
        if len(data) != _PROOF_HEADER.size + n_siblings * HASH_LENGTH:
            raise SchemeError("malformed Merkle membership proof")
        siblings = tuple(
            data[_PROOF_HEADER.size + i * HASH_LENGTH:
                 _PROOF_HEADER.size + (i + 1) * HASH_LENGTH]
            for i in range(n_siblings))
        return cls(leaf_index=leaf_index, siblings=siblings)


class MerkleTree:
    """The full tree, built once per flight from every sample payload."""

    def __init__(self, payloads: Sequence[bytes]):
        level = [leaf_hash(payload) for payload in payloads]
        self._levels = [level]
        while len(level) > 1:
            parents = [node_hash(level[i], level[i + 1])
                       for i in range(0, len(level) - 1, 2)]
            if len(level) % 2 == 1:
                # Promote the odd node unchanged; never duplicate it.
                parents.append(level[-1])
            self._levels.append(parents)
            level = parents

    @property
    def count(self) -> int:
        """Leaf count (the quantity the TEE signs alongside the root)."""
        return len(self._levels[0])

    @property
    def root(self) -> bytes:
        if not self._levels[0]:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def membership_proof(self, index: int) -> MembershipProof:
        """The sibling path proving leaf ``index`` is under :attr:`root`."""
        if not 0 <= index < self.count:
            raise ConfigurationError(
                f"leaf index {index} outside tree of {self.count} leaves")
        siblings = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 1:
                siblings.append(level[position - 1])
            elif position + 1 < len(level):
                siblings.append(level[position + 1])
            # A promoted odd node contributes no sibling at this level.
            position //= 2
        return MembershipProof(leaf_index=index, siblings=tuple(siblings))


def merkle_root(payloads: Sequence[bytes]) -> bytes:
    """The committed root over a whole flight's payloads."""
    return MerkleTree(payloads).root


def verify_membership(root: bytes, count: int, index: int, payload: bytes,
                      siblings: Sequence[bytes]) -> bool:
    """Whether ``payload`` is leaf ``index`` of the ``count``-leaf tree.

    Replays the path using the level widths a ``count``-leaf tree must
    have, so the proof cannot claim a different side, skip a level, or
    smuggle extra siblings: exactly the right number must be consumed and
    the result must equal ``root``.
    """
    if count <= 0 or not 0 <= index < count:
        return False
    node = leaf_hash(payload)
    position, width, used = index, count, 0
    while width > 1:
        if position % 2 == 1:
            if used >= len(siblings):
                return False
            node = node_hash(siblings[used], node)
            used += 1
        elif position + 1 < width:
            if used >= len(siblings):
                return False
            node = node_hash(node, siblings[used])
            used += 1
        # else: this level promoted the node; no sibling to absorb.
        position //= 2
        width = (width + 1) // 2
    return used == len(siblings) and node == root
