"""An independent, naive re-implementation of the Auditor's verdict.

This is the reference arm of the differential harness.  It re-derives the
paper's checks (§IV-C2) from first principles as one straight-line
function: no pipeline stages, no batch caches, no memoized projections,
no spatial index — just per-entry signature checks, a decode loop, an
ordering scan, per-pair speed arithmetic, and the conservative sufficiency
inequality written out with :func:`math.hypot`.  Because it shares no
execution path with :class:`repro.core.verification.VerificationPipeline`
beyond the crypto primitives and the projection formula, agreement between
the two is strong evidence that neither has drifted from the spec.

Reports are field-for-field comparable (``==``) with the pipeline's,
including messages, rejection reasons, and failure indices.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi
from repro.core.verification import (
    RejectionReason,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.rsa import RsaPublicKey
from repro.errors import EncodingError
from repro.geo.geodesy import LocalFrame
from repro.units import FAA_MAX_SPEED_MPS

#: Mirrors the geometry module's comparison epsilon (kept as a literal on
#: purpose: the reference must not import the implementation under test).
_EPS = 1e-9


def reference_verify(poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
                     zones: Sequence[NoFlyZone], frame: LocalFrame,
                     vmax_mps: float = FAA_MAX_SPEED_MPS,
                     hash_name: str = "sha1",
                     feasibility_slack: float = 1.02) -> VerificationReport:
    """The specification's verdict on one PoA, computed the slow way.

    Only the paper's ``"conservative"`` sufficiency predicate is
    implemented; the exact-geometry variant belongs to the ablation
    benchmark, not the conformance baseline.
    """
    if len(poa) == 0:
        return VerificationReport(status=VerificationStatus.REJECTED_EMPTY,
                                  message="PoA contains no samples",
                                  reason=RejectionReason.EMPTY_POA)

    # 1. Authenticity: every signature verifies under T+.
    bad = [i for i, entry in enumerate(poa)
           if not entry.verify(tee_public_key, hash_name)]
    if bad:
        return VerificationReport(
            status=VerificationStatus.REJECTED_BAD_SIGNATURE,
            bad_signature_indices=bad,
            sample_count=len(poa),
            message=f"{len(bad)} of {len(poa)} signatures failed",
            reason=RejectionReason.BAD_SIGNATURE)

    # 2a. Well-formedness: payloads decode.
    samples = []
    try:
        for entry in poa:
            samples.append(entry.sample)
    except EncodingError as exc:
        return VerificationReport(
            status=VerificationStatus.REJECTED_MALFORMED,
            sample_count=len(poa), message=str(exc),
            reason=RejectionReason.MALFORMED_PAYLOAD)

    # 2b. Well-formedness: timestamps are non-decreasing.
    for a, b in zip(samples, samples[1:]):
        if b.t < a.t:
            return VerificationReport(
                status=VerificationStatus.REJECTED_MALFORMED,
                sample_count=len(poa),
                message="sample timestamps are not non-decreasing",
                reason=RejectionReason.OUT_OF_ORDER)

    positions = [frame.to_local(s.point) for s in samples]

    # 3. Physical feasibility: no pair exceeds the slackened speed bound.
    infeasible = []
    limit = vmax_mps * feasibility_slack
    for i in range(len(samples) - 1):
        dt = samples[i + 1].t - samples[i].t
        distance = math.dist(positions[i], positions[i + 1])
        if dt <= 0.0:
            if distance > 0.0:
                infeasible.append(i)
        elif distance > limit * dt + _EPS:
            infeasible.append(i)
    if infeasible:
        return VerificationReport(
            status=VerificationStatus.REJECTED_INFEASIBLE,
            infeasible_pair_indices=infeasible,
            sample_count=len(poa),
            message=f"{len(infeasible)} pairs exceed v_max",
            reason=RejectionReason.SPEED_INFEASIBLE)

    # 4. Sufficiency: paper eq. (1), conservative form — the pair clears a
    # zone when the focus-to-boundary distances satisfy D1 + D2 > vmax*dt.
    centers = [(frame.to_local(z.center), z.radius_m) for z in zones]
    if len(samples) < 2:
        insufficient = [0] if zones else []
    else:
        insufficient = []
        for i in range(len(samples) - 1):
            focal_sum = vmax_mps * (samples[i + 1].t - samples[i].t)
            ax, ay = positions[i]
            bx, by = positions[i + 1]
            for (cx, cy), r in centers:
                d1 = math.hypot(ax - cx, ay - cy) - r
                d2 = math.hypot(bx - cx, by - cy) - r
                if d1 + d2 <= focal_sum + _EPS:
                    insufficient.append(i)
                    break
    if insufficient:
        return VerificationReport(
            status=VerificationStatus.INSUFFICIENT,
            insufficient_pair_indices=insufficient,
            sample_count=len(poa),
            message=(f"{len(insufficient)} pairs cannot rule out NFZ "
                     "entrance"),
            reason=RejectionReason.INSUFFICIENT_COVERAGE)

    return VerificationReport(status=VerificationStatus.ACCEPTED,
                              sample_count=len(poa))
