"""An independent, naive re-implementation of the Auditor's verdict.

This is the reference arm of the differential harness.  It re-derives the
paper's checks (§IV-C2) from first principles as one straight-line
function: no pipeline stages, no batch caches, no memoized projections,
no spatial index — just per-entry signature checks, a decode loop, an
ordering scan, per-pair speed arithmetic, an independent Merkle
replay with its disclosure gap scan, and the conservative sufficiency
inequality written out with :func:`math.hypot`.  Because it shares no
execution path with :class:`repro.core.verification.VerificationPipeline`
beyond the crypto primitives and the projection formula, agreement between
the two is strong evidence that neither has drifted from the spec.

Reports are field-for-field comparable (``==``) with the pipeline's,
including messages, rejection reasons, and failure indices.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import math
import struct
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi
from repro.core.verification import (
    RejectionReason,
    VerificationReport,
    VerificationStatus,
)
from repro.crypto.pkcs1 import verify_pkcs1_v15
from repro.crypto.rsa import RsaPublicKey
from repro.errors import EncodingError
from repro.geo.geodesy import LocalFrame
from repro.units import FAA_MAX_SPEED_MPS

#: Mirrors the geometry module's comparison epsilon (kept as a literal on
#: purpose: the reference must not import the implementation under test).
_EPS = 1e-9


def _ref_framed_sha256(chunks) -> bytes:
    """Length-framed SHA-256, re-derived here rather than imported: the
    reference arm must not share framing code with the scheme under test."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(struct.pack(">I", len(chunk)))
        h.update(chunk)
    return h.digest()


def _ref_chain_link(chain_key: bytes, previous: bytes,
                    payload: bytes) -> bytes:
    mac = hmac_module.new(chain_key, digestmod=hashlib.sha256)
    for chunk in (previous, payload):
        mac.update(struct.pack(">I", len(chunk)))
        mac.update(chunk)
    return mac.digest()


def _ref_chain_bad_indices(poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
                           hash_name: str) -> list[int]:
    """Independent hash-chain replay (wire constants duplicated on purpose)."""
    all_bad = list(range(len(poa)))
    data = poa.finalizer
    # Finalizer layout: "ADC1" | count:u32 | anchor:32 | key:32
    #                   | len:u16 commit_sig | len:u16 close_sig
    if len(data) < 4 + 4 + 32 + 32 + 2 or data[:4] != b"ADC1":
        return all_bad
    (count,) = struct.unpack_from(">I", data, 4)
    anchor = data[8:40]
    chain_key = data[40:72]
    offset = 72
    sigs = []
    for _ in range(2):
        if offset + 2 > len(data):
            return all_bad
        (length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        if offset + length > len(data):
            return all_bad
        sigs.append(data[offset:offset + length])
        offset += length
    if offset != len(data):
        return all_bad
    commit_sig, close_sig = sigs
    if hashlib.sha256(b"ADCH-KEY\x00" + chain_key).digest() != anchor:
        return all_bad
    if not verify_pkcs1_v15(tee_public_key, b"ADCH-COMMIT\x00" + anchor,
                            commit_sig, hash_name):
        return all_bad
    if count != len(poa):
        return all_bad
    bad = []
    previous = anchor
    for i, entry in enumerate(poa):
        if entry.signature != _ref_chain_link(chain_key, previous,
                                              entry.payload):
            bad.append(i)
        previous = entry.signature
    close_payload = (b"ADCH-CLOSE\x00" + anchor + previous
                     + struct.pack(">I", count))
    if not verify_pkcs1_v15(tee_public_key, close_payload, close_sig,
                            hash_name):
        return all_bad
    return bad


def _ref_leaf_hash(payload: bytes) -> bytes:
    return hashlib.sha256(b"\x00" + struct.pack(">I", len(payload))
                          + payload).digest()


def _ref_node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01" + left + right).digest()


def _ref_merkle_root(payloads: Sequence[bytes]) -> bytes:
    """Independent tree build: odd nodes promoted, never duplicated."""
    level = [_ref_leaf_hash(payload) for payload in payloads]
    if not level:
        return hashlib.sha256(b"ADMK-EMPTY").digest()
    while len(level) > 1:
        parents = [_ref_node_hash(level[i], level[i + 1])
                   for i in range(0, len(level) - 1, 2)]
        if len(level) % 2 == 1:
            parents.append(level[-1])
        level = parents
    return level[0]


def _ref_verify_membership(root: bytes, count: int, index: int,
                           payload: bytes,
                           siblings: Sequence[bytes]) -> bool:
    """Independent membership replay against the signed leaf count."""
    if count <= 0 or not 0 <= index < count:
        return False
    node = _ref_leaf_hash(payload)
    position, width, used = index, count, 0
    while width > 1:
        if position % 2 == 1:
            if used >= len(siblings):
                return False
            node = _ref_node_hash(siblings[used], node)
            used += 1
        elif position + 1 < width:
            if used >= len(siblings):
                return False
            node = _ref_node_hash(node, siblings[used])
            used += 1
        position //= 2
        width = (width + 1) // 2
    return used == len(siblings) and node == root


def _ref_merkle_finalizer(poa: ProofOfAlibi,
                          ) -> tuple[int, float, bytes, bytes] | None:
    """``(count, epoch, root, signature)`` or None when malformed.

    Finalizer layout: "ADM1" | count:u32 | epoch:f64 | root:32
                      | len:u16 root_sig
    """
    data = poa.finalizer
    if len(data) < 4 + 4 + 8 + 32 + 2 or data[:4] != b"ADM1":
        return None
    (count,) = struct.unpack_from(">I", data, 4)
    (epoch,) = struct.unpack_from(">d", data, 8)
    root = data[16:48]
    (sig_len,) = struct.unpack_from(">H", data, 48)
    if 50 + sig_len != len(data):
        return None
    return count, epoch, root, data[50:]


def _ref_merkle_leaves(poa: ProofOfAlibi, count: int) -> list[int] | None:
    """Proven leaf indices of a disclosure, or None when structurally bad.

    Proof layout: leaf_index:u32 | n:u16 | n * 32-byte siblings.
    """
    blobs = [entry.signature for entry in poa]
    if all(not blob for blob in blobs):
        if len(blobs) != count or count == 0:
            return None
        return list(range(count))
    leaves = []
    for blob in blobs:
        if len(blob) < 6:
            return None
        (index, n_siblings) = struct.unpack_from(">IH", blob, 0)
        if len(blob) != 6 + 32 * n_siblings:
            return None
        leaves.append(index)
    if any(b <= a for a, b in zip(leaves, leaves[1:])):
        return None
    if leaves[-1] >= count:
        return None
    return leaves


def _ref_merkle_bad_indices(poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
                            hash_name: str) -> list[int]:
    """Independent Merkle verification (wire constants duplicated on purpose)."""
    all_bad = list(range(len(poa)))
    parts = _ref_merkle_finalizer(poa)
    if parts is None:
        return all_bad
    count, epoch, root, signature = parts
    signed = (b"ADMK-ROOT\x00" + root + struct.pack(">d", epoch)
              + struct.pack(">I", count))
    if not verify_pkcs1_v15(tee_public_key, signed, signature, hash_name):
        return all_bad
    blobs = [entry.signature for entry in poa]
    if all(not blob for blob in blobs):
        # Full-trace mode: recompute the root from the payloads.
        if len(poa) != count:
            return all_bad
        if _ref_merkle_root([entry.payload for entry in poa]) != root:
            return all_bad
        return []
    proofs = []
    for blob in blobs:
        if len(blob) < 6:
            return all_bad
        (index, n_siblings) = struct.unpack_from(">IH", blob, 0)
        if len(blob) != 6 + 32 * n_siblings:
            return all_bad
        proofs.append((index, [blob[6 + 32 * i:6 + 32 * (i + 1)]
                               for i in range(n_siblings)]))
    indices = [index for index, _siblings in proofs]
    if any(b <= a for a, b in zip(indices, indices[1:])):
        return all_bad
    if any(index >= count for index in indices):
        return all_bad
    return [i for i, (entry, (index, siblings)) in
            enumerate(zip(poa, proofs))
            if not _ref_verify_membership(root, count, index, entry.payload,
                                          siblings)]


def _ref_bad_auth_indices(poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
                          hash_name: str) -> list[int]:
    """Per-scheme flight authentication, re-derived from the wire spec."""
    scheme = poa.scheme
    if scheme == "rsa-v15":
        if poa.finalizer:
            return list(range(len(poa)))
        return [i for i, entry in enumerate(poa)
                if not verify_pkcs1_v15(tee_public_key, entry.payload,
                                        entry.signature, hash_name)]
    if scheme == "rsa-batch":
        digest = _ref_framed_sha256(entry.payload for entry in poa)
        if not verify_pkcs1_v15(tee_public_key, digest, poa.finalizer,
                                hash_name):
            return list(range(len(poa)))
        return [i for i, entry in enumerate(poa) if entry.signature]
    if scheme == "hash-chain":
        return _ref_chain_bad_indices(poa, tee_public_key, hash_name)
    if scheme == "merkle-disclosure":
        return _ref_merkle_bad_indices(poa, tee_public_key, hash_name)
    # Unknown scheme: nothing can be attributed to T+.
    return list(range(len(poa)))


def reference_verify(poa: ProofOfAlibi, tee_public_key: RsaPublicKey,
                     zones: Sequence[NoFlyZone], frame: LocalFrame,
                     vmax_mps: float = FAA_MAX_SPEED_MPS,
                     hash_name: str = "sha1",
                     feasibility_slack: float = 1.02) -> VerificationReport:
    """The specification's verdict on one PoA, computed the slow way.

    Only the paper's ``"conservative"`` sufficiency predicate is
    implemented; the exact-geometry variant belongs to the ablation
    benchmark, not the conformance baseline.
    """
    if len(poa) == 0:
        return VerificationReport(status=VerificationStatus.REJECTED_EMPTY,
                                  message="PoA contains no samples",
                                  reason=RejectionReason.EMPTY_POA)

    # 1. Authenticity: the flight authenticates under T+ per its scheme.
    bad = _ref_bad_auth_indices(poa, tee_public_key, hash_name)
    if bad:
        return VerificationReport(
            status=VerificationStatus.REJECTED_BAD_SIGNATURE,
            bad_signature_indices=bad,
            sample_count=len(poa),
            message=f"{len(bad)} of {len(poa)} signatures failed",
            reason=RejectionReason.BAD_SIGNATURE)

    # 2a. Well-formedness: payloads decode.
    samples = []
    try:
        for entry in poa:
            samples.append(entry.sample)
    except EncodingError as exc:
        return VerificationReport(
            status=VerificationStatus.REJECTED_MALFORMED,
            sample_count=len(poa), message=str(exc),
            reason=RejectionReason.MALFORMED_PAYLOAD)

    # 2b. Well-formedness: timestamps are non-decreasing.
    for a, b in zip(samples, samples[1:]):
        if b.t < a.t:
            return VerificationReport(
                status=VerificationStatus.REJECTED_MALFORMED,
                sample_count=len(poa),
                message="sample timestamps are not non-decreasing",
                reason=RejectionReason.OUT_OF_ORDER)

    positions = [frame.to_local(s.point) for s in samples]

    # 3. Physical feasibility: no pair exceeds the slackened speed bound.
    infeasible = []
    limit = vmax_mps * feasibility_slack
    for i in range(len(samples) - 1):
        dt = samples[i + 1].t - samples[i].t
        distance = math.dist(positions[i], positions[i + 1])
        if dt <= 0.0:
            if distance > 0.0:
                infeasible.append(i)
        elif distance > limit * dt + _EPS:
            infeasible.append(i)
    if infeasible:
        return VerificationReport(
            status=VerificationStatus.REJECTED_INFEASIBLE,
            infeasible_pair_indices=infeasible,
            sample_count=len(poa),
            message=f"{len(infeasible)} pairs exceed v_max",
            reason=RejectionReason.SPEED_INFEASIBLE)

    # 3b. Disclosure (merkle-disclosure only): endpoints pinned, epoch
    # matched, every undisclosed gap conservatively clear of every zone.
    if poa.scheme == "merkle-disclosure":
        parts = _ref_merkle_finalizer(poa)
        leaves = (None if parts is None
                  else _ref_merkle_leaves(poa, parts[0]))
        if parts is not None and leaves is not None:
            count, epoch, _root, _sig = parts
            if leaves[0] != 0 or leaves[-1] != count - 1:
                return VerificationReport(
                    status=VerificationStatus.INSUFFICIENT,
                    sample_count=len(poa),
                    message="disclosure does not pin the flight endpoints",
                    reason=RejectionReason.INSUFFICIENT_DISCLOSURE)
            if epoch != samples[0].t:
                return VerificationReport(
                    status=VerificationStatus.INSUFFICIENT,
                    sample_count=len(poa),
                    message=("disclosure epoch does not match the first "
                             "revealed sample"),
                    reason=RejectionReason.INSUFFICIENT_DISCLOSURE)
            gap_bad = []
            for i in range(len(leaves) - 1):
                if leaves[i + 1] - leaves[i] <= 1:
                    continue
                focal_sum = vmax_mps * (samples[i + 1].t - samples[i].t)
                ax, ay = positions[i]
                bx, by = positions[i + 1]
                for zone in zones:
                    cx, cy = frame.to_local(zone.center)
                    d1 = math.hypot(ax - cx, ay - cy) - zone.radius_m
                    d2 = math.hypot(bx - cx, by - cy) - zone.radius_m
                    if d1 + d2 <= focal_sum + _EPS:
                        gap_bad.append(i)
                        break
            if gap_bad:
                return VerificationReport(
                    status=VerificationStatus.INSUFFICIENT,
                    insufficient_pair_indices=gap_bad,
                    sample_count=len(poa),
                    message=(f"{len(gap_bad)} undisclosed gaps cannot rule "
                             "out NFZ entrance"),
                    reason=RejectionReason.INSUFFICIENT_DISCLOSURE)

    # 4. Sufficiency: paper eq. (1), conservative form — the pair clears a
    # zone when the focus-to-boundary distances satisfy D1 + D2 > vmax*dt.
    centers = [(frame.to_local(z.center), z.radius_m) for z in zones]
    if len(samples) < 2:
        insufficient = [0] if zones else []
    else:
        insufficient = []
        for i in range(len(samples) - 1):
            focal_sum = vmax_mps * (samples[i + 1].t - samples[i].t)
            ax, ay = positions[i]
            bx, by = positions[i + 1]
            for (cx, cy), r in centers:
                d1 = math.hypot(ax - cx, ay - cy) - r
                d2 = math.hypot(bx - cx, by - cy) - r
                if d1 + d2 <= focal_sum + _EPS:
                    insufficient.append(i)
                    break
    if insufficient:
        return VerificationReport(
            status=VerificationStatus.INSUFFICIENT,
            insufficient_pair_indices=insufficient,
            sample_count=len(poa),
            message=(f"{len(insufficient)} pairs cannot rule out NFZ "
                     "entrance"),
            reason=RejectionReason.INSUFFICIENT_COVERAGE)

    return VerificationReport(status=VerificationStatus.ACCEPTED,
                              sample_count=len(poa))
