"""Differential conformance harness for the verification pipeline.

An independent, deliberately naive reference verifier
(:mod:`repro.conformance.reference`) re-implements the Auditor's
specification straight from the paper — no stages, no caches, no spatial
index — and the harness (:mod:`repro.conformance.harness`) runs randomized
trajectories (honest and mutated) through both implementations, asserting
report-for-report agreement.  A disagreement means one of the two strayed
from the specification; the staged pipeline never gets to drift silently.
"""

from repro.conformance.harness import (
    ConformanceReport,
    run_differential,
    run_sampler_equivalence,
)
from repro.conformance.reference import reference_verify

__all__ = [
    "ConformanceReport",
    "reference_verify",
    "run_differential",
    "run_sampler_equivalence",
]
