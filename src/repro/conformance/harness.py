"""Randomized differential testing of pipeline vs. reference verifier.

:func:`run_differential` generates randomized trajectories — honest walks
and deliberately broken mutations of them — and verifies each through the
staged pipeline *and* :func:`repro.conformance.reference.reference_verify`,
demanding field-for-field identical reports.  Trials with zones also run
the index/exhaustive decision-equivalence arm: the same context verified
with a pre-built :class:`ZoneProximityIndex` and with the index disabled
must produce the same report.  :func:`run_sampler_equivalence` closes the
loop on the sampler side: an adaptive-policy flight with the zone index on
must take exactly the same samples (and sign exactly the same bytes) as
one with the index off.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field

from repro.conformance.reference import reference_verify
from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi, SignedSample
from repro.core.samples import GpsSample
from repro.core.verification import PoaVerifier, VerificationReport
from repro.crypto.rsa import RsaPrivateKey, generate_rsa_keypair
from repro.crypto.schemes import SCHEME_RSA, authenticate_payloads
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.geo.proximity import ZoneProximityIndex
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import FAA_MAX_SPEED_MPS
from repro.workloads.runner import run_policy
from repro.workloads.synthetic import build_random_scenario

_ORIGIN = GeoPoint(40.2000, -88.3000)


def random_zones(rng: random.Random, frame: LocalFrame, n: int,
                 area_m: float = 2_000.0,
                 radius_range: tuple[float, float] = (20.0, 120.0),
                 ) -> list[NoFlyZone]:
    """``n`` zones scattered uniformly over the square area."""
    zones = []
    for _ in range(n):
        x = rng.uniform(0.0, area_m)
        y = rng.uniform(0.0, area_m)
        center = frame.to_geo(x, y)
        zones.append(NoFlyZone(center.lat, center.lon,
                               rng.uniform(*radius_range)))
    return zones


def _authenticated_poa(payloads: list[bytes], signing_key: RsaPrivateKey,
                       scheme: str, rng: random.Random,
                       hash_name: str = "sha1") -> ProofOfAlibi:
    """Authenticate ``payloads`` under ``scheme`` like an honest TEE would."""
    blobs, finalizer = authenticate_payloads(signing_key, payloads, scheme,
                                             hash_name=hash_name, rng=rng)
    return ProofOfAlibi(
        (SignedSample(payload=payload, signature=blob, scheme=scheme)
         for payload, blob in zip(payloads, blobs)),
        scheme=scheme, finalizer=finalizer)


def random_honest_poa(rng: random.Random, frame: LocalFrame,
                      signing_key: RsaPrivateKey,
                      max_samples: int = 10,
                      area_m: float = 2_000.0,
                      vmax_mps: float = FAA_MAX_SPEED_MPS,
                      hash_name: str = "sha1",
                      scheme: str = SCHEME_RSA) -> ProofOfAlibi:
    """A feasible random walk, authenticated like an honest TEE would.

    Consecutive legs move at most 80% of ``vmax``, leaving headroom under
    the verifier's slackened bound for payload quantization; timestamps
    strictly increase so every mutation that reverses the order is
    guaranteed malformed.
    """
    n = rng.randint(2, max_samples)
    x = rng.uniform(0.0, area_m)
    y = rng.uniform(0.0, area_m)
    t = DEFAULT_EPOCH + rng.uniform(0.0, 3_600.0)
    payloads = []
    for _ in range(n):
        point = frame.to_geo(x, y)
        payloads.append(GpsSample(point.lat, point.lon, t)
                        .to_signed_payload())
        dt = rng.uniform(0.5, 20.0)
        heading = rng.uniform(0.0, 2.0 * math.pi)
        step = rng.uniform(0.0, 0.8 * vmax_mps) * dt
        x += math.cos(heading) * step
        y += math.sin(heading) * step
        t += dt
    return _authenticated_poa(payloads, signing_key, scheme, rng, hash_name)


def _mutate(name: str, poa: ProofOfAlibi, rng: random.Random,
            signing_key: RsaPrivateKey,
            scheme: str = SCHEME_RSA) -> ProofOfAlibi:
    """Break an honest PoA in one specific, always-rejectable way."""
    entries = list(poa.entries)
    if name == "bitflip_payload":
        i = rng.randrange(len(entries))
        payload = bytearray(entries[i].payload)
        payload[rng.randrange(len(payload))] ^= 1 << rng.randrange(8)
        entries[i] = SignedSample(payload=bytes(payload),
                                  signature=entries[i].signature,
                                  scheme=scheme)
        return poa.replace_entries(entries)
    if name == "bitflip_signature":
        i = rng.randrange(len(entries))
        sig = bytearray(entries[i].signature)
        if sig:
            sig[rng.randrange(len(sig))] ^= 1 << rng.randrange(8)
            entries[i] = SignedSample(payload=entries[i].payload,
                                      signature=bytes(sig), scheme=scheme)
            return poa.replace_entries(entries)
        # Schemes with empty per-sample blobs carry their only signature
        # in the finalizer: flip a byte there instead.
        finalizer = bytearray(poa.finalizer)
        finalizer[rng.randrange(len(finalizer))] ^= 1 << rng.randrange(8)
        mutated = poa.replace_entries(entries)
        mutated.seal(bytes(finalizer))
        return mutated
    if name == "reorder":
        entries.reverse()
        return poa.replace_entries(entries)
    if name == "teleport":
        # A properly authenticated but physically impossible hop: the
        # operator controls the key here, so only feasibility can catch
        # it — the whole mutated flight is re-authenticated under the
        # scheme so the authenticity stage passes.
        last = entries[-1].sample
        moved = GpsSample(last.lat + 0.5, last.lon, last.t + 1.0)
        payloads = [e.payload for e in entries] + [moved.to_signed_payload()]
        return _authenticated_poa(payloads, signing_key, scheme, rng)
    if name == "single_sample":
        return _authenticated_poa([entries[0].payload], signing_key,
                                  scheme, rng)
    if name == "empty":
        return ProofOfAlibi((), scheme=scheme)
    raise ValueError(f"unknown mutation: {name}")  # pragma: no cover


#: Mutations guaranteed non-accepted whenever at least one zone exists.
MUTATIONS = ("bitflip_payload", "bitflip_signature", "reorder",
             "teleport", "single_sample", "empty")


def _report_dict(report: VerificationReport) -> dict:
    return {
        "status": report.status.value,
        "reason": report.reason.value if report.reason else None,
        "message": report.message,
        "bad_signature_indices": list(report.bad_signature_indices),
        "infeasible_pair_indices": list(report.infeasible_pair_indices),
        "insufficient_pair_indices": list(report.insufficient_pair_indices),
        "sample_count": report.sample_count,
    }


@dataclass
class ConformanceReport:
    """Aggregate verdict of one differential run."""

    trajectories: int = 0
    scheme: str = SCHEME_RSA
    honest_trials: int = 0
    honest_agreements: int = 0
    honest_accepts: int = 0
    mutated_trials: int = 0
    mutated_agreements: int = 0
    mutated_false_accepts: int = 0
    index_trials: int = 0
    index_agreements: int = 0
    disagreements: list[dict] = field(default_factory=list)
    sampler: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every arm agreed and no broken PoA was ever accepted."""
        return (not self.disagreements
                and self.mutated_false_accepts == 0
                and self.honest_agreements == self.honest_trials
                and self.mutated_agreements == self.mutated_trials
                and self.index_agreements == self.index_trials
                and all(self.sampler.get(k, True)
                        for k in ("sample_times_equal", "poa_digest_equal")))

    def to_dict(self) -> dict:
        return {
            "trajectories": self.trajectories,
            "scheme": self.scheme,
            "honest_trials": self.honest_trials,
            "honest_agreements": self.honest_agreements,
            "honest_accepts": self.honest_accepts,
            "mutated_trials": self.mutated_trials,
            "mutated_agreements": self.mutated_agreements,
            "mutated_false_accepts": self.mutated_false_accepts,
            "index_trials": self.index_trials,
            "index_agreements": self.index_agreements,
            "disagreements": self.disagreements,
            "sampler": self.sampler,
            "ok": self.ok,
        }


def run_differential(trajectories: int = 200, seed: int = 0,
                     key_bits: int = 512, max_zones: int = 12,
                     include_sampler: bool = True,
                     scheme: str = SCHEME_RSA) -> ConformanceReport:
    """Verify ``trajectories`` random PoAs through both implementations.

    Roughly one trial in three gets a mutation from :data:`MUTATIONS`
    (cycled deterministically); the rest stay honest.  Mutated trials
    always get at least one zone so "too little evidence" outcomes stay
    distinguishable from acceptance.  Every trial authenticates its flight
    under ``scheme``, so each sweep exercises one backend end to end.
    """
    rng = random.Random(seed)
    signing_key = generate_rsa_keypair(key_bits, rng=rng)
    frame = LocalFrame(_ORIGIN)
    verifier = PoaVerifier(frame)
    report = ConformanceReport(trajectories=trajectories, scheme=scheme)

    for trial in range(trajectories):
        mutated = trial % 3 == 2
        mutation = MUTATIONS[(trial // 3) % len(MUTATIONS)] if mutated \
            else None
        n_zones = rng.randint(1 if mutated else 0, max_zones)
        zones = random_zones(rng, frame, n_zones)
        poa = random_honest_poa(rng, frame, signing_key, scheme=scheme)
        if mutation is not None:
            poa = _mutate(mutation, poa, rng, signing_key, scheme)

        got = verifier.verify(poa, signing_key.public_key, zones)
        want = reference_verify(poa, signing_key.public_key, zones, frame)
        agree = got == want
        if mutated:
            report.mutated_trials += 1
            report.mutated_agreements += agree
            report.mutated_false_accepts += got.compliant
        else:
            report.honest_trials += 1
            report.honest_agreements += agree
            report.honest_accepts += got.compliant
        if not agree:
            report.disagreements.append({
                "trial": trial,
                "kind": mutation or "honest",
                "zones": n_zones,
                "pipeline": _report_dict(got),
                "reference": _report_dict(want),
            })

        if n_zones and len(poa):
            # Decision equivalence: forced index vs. forced exhaustive
            # scan over the same context (signature verdicts reused).
            circles = [z.to_circle(frame) for z in zones]
            indexed = verifier.pipeline().run(verifier.context(
                poa, signing_key.public_key, zones,
                zone_index=ZoneProximityIndex.from_circles(circles),
                bad_signature_indices=list(got.bad_signature_indices)))
            flat = verifier.pipeline().run(verifier.context(
                poa, signing_key.public_key, zones,
                use_zone_index=False,
                bad_signature_indices=list(got.bad_signature_indices)))
            report.index_trials += 1
            report.index_agreements += indexed == flat == got
            if not indexed == flat == got:
                report.disagreements.append({
                    "trial": trial,
                    "kind": "index-equivalence",
                    "zones": n_zones,
                    "pipeline": _report_dict(indexed),
                    "reference": _report_dict(flat),
                })

    if include_sampler:
        report.sampler = run_sampler_equivalence(seed=seed,
                                                 key_bits=key_bits,
                                                 scheme=scheme)
    return report


def _poa_digest(poa: ProofOfAlibi) -> str:
    digest = hashlib.sha256()
    for entry in poa:
        digest.update(entry.payload)
        digest.update(entry.signature)
    digest.update(poa.finalizer)
    return digest.hexdigest()


def run_sampler_equivalence(seed: int = 0, key_bits: int = 512,
                            n_zones: int = 12,
                            scheme: str = SCHEME_RSA) -> dict:
    """Adaptive sampling with vs. without the zone index, same flight.

    Both runs provision identically-seeded devices over the same random
    scenario; decision equivalence means identical sample instants and a
    bit-identical authenticated PoA.
    """
    scenario = build_random_scenario(seed=seed, n_zones=n_zones)
    with_index = run_policy(scenario, "adaptive", key_bits=key_bits,
                            seed=seed, use_index=True, scheme=scheme)
    without = run_policy(scenario, "adaptive", key_bits=key_bits,
                         seed=seed, use_index=False, scheme=scheme)
    return {
        "scenario": scenario.name,
        "samples_with_index": with_index.sample_count,
        "samples_without_index": without.sample_count,
        "sample_times_equal":
            with_index.sample_times == without.sample_times,
        "poa_digest_equal":
            _poa_digest(with_index.result.poa)
            == _poa_digest(without.result.poa),
    }
