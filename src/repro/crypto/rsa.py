"""Textbook RSA key material and raw modular operations.

Padding, hashing, and message formats live in :mod:`repro.crypto.pkcs1`;
this module only knows about integers.  The private operation uses the
standard CRT speedup, which matters for the pure-Python benchmark numbers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.crypto.primes import generate_prime
from repro.errors import CryptoError, KeyGenerationError

#: The fourth Fermat prime, the conventional RSA public exponent.
DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True, slots=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes (``k`` in PKCS#1 terms)."""
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, m: int) -> int:
        """RSAEP: ``m^e mod n``."""
        if not 0 <= m < self.n:
            raise CryptoError("message representative out of range")
        return pow(m, self.e, self.n)

    raw_verify = raw_encrypt  # RSAVP1 is the same modular operation.


@dataclass(frozen=True, slots=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    # CRT parameters cached on the key itself so they are garbage-collected
    # with it; a module-global memo keyed on (d, p, q) would pin secret key
    # material alive long after the key object is discarded.  The cache is
    # tagged with the modulus it was derived from: a copied instance whose
    # factors were then rewritten (``copy`` + ``object.__setattr__`` is the
    # only way to "mutate" a frozen key) must not decrypt with another
    # key's exponents.
    _crt: tuple[int, int, int, int] | None = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.p * self.q != self.n:
            raise CryptoError("inconsistent RSA private key: p*q != n")

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    @property
    def public_key(self) -> RsaPublicKey:
        """The matching public key."""
        return RsaPublicKey(self.n, self.e)

    def _crt_params(self) -> tuple[int, int, int]:
        """CRT exponents and inverse ``(d mod p-1, d mod q-1, q^-1)``.

        Computed once per key: a long-lived Auditor key decrypts thousands
        of records per batch, and the modular inverse is the costly part.
        The cached tuple is keyed on this instance *and* its modulus, so
        a cache planted by a different key (or carried across a factor
        rewrite) is recomputed instead of silently reused.
        """
        if self._crt is None or self._crt[0] != self.n:
            object.__setattr__(
                self, "_crt",
                (self.n, self.d % (self.p - 1), self.d % (self.q - 1),
                 pow(self.q, -1, self.p)))
        return self._crt[1:]

    def raw_decrypt(self, c: int) -> int:
        """RSADP via the Chinese Remainder Theorem."""
        if not 0 <= c < self.n:
            raise CryptoError("ciphertext representative out of range")
        dp, dq, q_inv = self._crt_params()
        m1 = pow(c, dp, self.p)
        m2 = pow(c, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    raw_sign = raw_decrypt  # RSASP1 is the same modular operation.


def generate_rsa_keypair(bits: int = 1024,
                         e: int = DEFAULT_PUBLIC_EXPONENT,
                         rng: random.Random | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair with an exact ``bits``-bit modulus.

    Args:
        bits: modulus size; the paper benchmarks 1024 and 2048.
        e: public exponent, must be odd and > 2.
        rng: source of randomness; pass a seeded ``random.Random`` for
            reproducible test keys, defaults to ``SystemRandom``.
    """
    if bits < 128:
        raise KeyGenerationError(f"modulus too small for PKCS#1 framing: {bits} bits")
    if e < 3 or e % 2 == 0:
        raise KeyGenerationError(f"invalid public exponent: {e}")
    rng = rng or random.SystemRandom()

    half = bits // 2
    for _ in range(1000):
        p = generate_prime(bits - half, rng=rng)
        q = generate_prime(half, rng=rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = math.lcm(p - 1, q - 1)
        if math.gcd(e, lam) != 1:
            continue
        d = pow(e, -1, lam)
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
    raise KeyGenerationError("failed to generate an RSA keypair")
