"""Cryptographic substrate, implemented from scratch on the stdlib.

The paper's prototype uses OP-TEE's ``TEE_ALG_RSASSA_PKCS1_V1_5_SHA1`` for
signing GPS samples and ``RSAES_PKCS1_v1_5`` for encrypting the PoA to the
Auditor.  This package provides interoperable implementations of both, plus
the symmetric and one-time-key schemes sketched in the paper's discussion
section (§VII-A1, §VII-B3).

Nothing here should be used to protect real data: the RSA implementation is
not constant-time and PKCS#1 v1.5 encryption is obsolete.  It exists to
reproduce the paper's protocol and cost profile faithfully.
"""

from repro.crypto.primes import is_probable_prime, generate_prime
from repro.crypto.rsa import RsaPublicKey, RsaPrivateKey, generate_rsa_keypair
from repro.crypto.pkcs1 import (
    sign_pkcs1_v15,
    verify_pkcs1_v15,
    encrypt_pkcs1_v15,
    decrypt_pkcs1_v15,
)
from repro.crypto.keys import (
    public_key_to_bytes,
    public_key_from_bytes,
    private_key_to_bytes,
    private_key_from_bytes,
    key_fingerprint,
)
from repro.crypto.hmac_sign import hmac_sign, hmac_verify, generate_hmac_key
from repro.crypto.digest import framed_sha256, framed_hmac_sha256
from repro.crypto.schemes import (
    SCHEME_RSA,
    SCHEME_BATCH,
    SCHEME_CHAIN,
    AuthScheme,
    SampleSigner,
    ChainFinalizer,
    authenticate_payloads,
    get_scheme,
    scheme_ids,
)
from repro.crypto.onetime import OneTimeKey, onetime_encrypt, onetime_decrypt
from repro.crypto.keyexchange import DiffieHellman, derive_session_key

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "RsaPublicKey",
    "RsaPrivateKey",
    "generate_rsa_keypair",
    "sign_pkcs1_v15",
    "verify_pkcs1_v15",
    "encrypt_pkcs1_v15",
    "decrypt_pkcs1_v15",
    "public_key_to_bytes",
    "public_key_from_bytes",
    "private_key_to_bytes",
    "private_key_from_bytes",
    "key_fingerprint",
    "hmac_sign",
    "hmac_verify",
    "generate_hmac_key",
    "framed_sha256",
    "framed_hmac_sha256",
    "SCHEME_RSA",
    "SCHEME_BATCH",
    "SCHEME_CHAIN",
    "AuthScheme",
    "SampleSigner",
    "ChainFinalizer",
    "authenticate_payloads",
    "get_scheme",
    "scheme_ids",
    "OneTimeKey",
    "onetime_encrypt",
    "onetime_decrypt",
    "DiffieHellman",
    "derive_session_key",
]
