"""Finite-field Diffie-Hellman for ephemeral flight keys (§VII-A1(a)).

The symmetric-signing extension needs a key agreed between the drone's TEE
and the Auditor *before each flight*, with the key never visible to the
Drone Operator.  Classic DH over the RFC 3526 2048-bit MODP group plus an
HKDF-style derivation gives exactly that: the TEE holds its exponent in the
secure world, the operator only relays public values.
"""

from __future__ import annotations

import hashlib
import hmac
import random

from repro.errors import CryptoError

# RFC 3526 group 14: 2048-bit MODP prime, generator 2.
RFC3526_GROUP14_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
RFC3526_GROUP14_GENERATOR = 2


class DiffieHellman:
    """One party of a finite-field DH exchange.

    Example:
        >>> alice = DiffieHellman(rng=random.Random(1))
        >>> bob = DiffieHellman(rng=random.Random(2))
        >>> alice.shared_secret(bob.public_value) == bob.shared_secret(alice.public_value)
        True
    """

    def __init__(self, prime: int = RFC3526_GROUP14_PRIME,
                 generator: int = RFC3526_GROUP14_GENERATOR,
                 rng: random.Random | None = None):
        if prime < 5 or generator < 2:
            raise CryptoError("invalid DH group parameters")
        self.prime = prime
        self.generator = generator
        rng = rng or random.SystemRandom()
        # 256-bit exponents are sufficient against generic discrete-log
        # attacks on a 2048-bit group.
        self._exponent = rng.getrandbits(256) | (1 << 255)
        self.public_value = pow(generator, self._exponent, prime)

    def shared_secret(self, peer_public_value: int) -> bytes:
        """The raw shared secret as big-endian bytes.

        Rejects degenerate peer values (0, 1, p-1) that would force the
        secret into a tiny subgroup.
        """
        if not 2 <= peer_public_value <= self.prime - 2:
            raise CryptoError("degenerate DH peer public value")
        secret = pow(peer_public_value, self._exponent, self.prime)
        length = (self.prime.bit_length() + 7) // 8
        return secret.to_bytes(length, "big")


def derive_session_key(shared_secret: bytes, context: bytes,
                       length: int = 32) -> bytes:
    """HKDF-style extract-and-expand (HMAC-SHA256) of a DH shared secret.

    Args:
        context: domain-separation info, e.g. ``b"alidrone-flight:" + flight_id``.
        length: output key length in bytes (at most 255 * 32).
    """
    if not 1 <= length <= 255 * 32:
        raise CryptoError("invalid derived key length")
    prk = hmac.new(b"alidrone-hkdf-salt", shared_secret, hashlib.sha256).digest()
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(prk, previous + context + bytes([counter]), hashlib.sha256).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]
