"""Length-framed digest helpers shared by the flight-level auth schemes.

Both the batch-signing digest (one signature over a whole trace) and the
hash-chain links (one HMAC per sample, keyed off the previous link) hash a
concatenation of variable-length byte strings.  Plain concatenation is
splice-ambiguous — ``(b"ab", b"c")`` and ``(b"a", b"bc")`` would collide —
so every chunk is prefixed with its 4-byte big-endian length.  Keeping the
framing in one place means the two schemes cannot drift apart.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable


def framed_sha256(chunks: Iterable[bytes]) -> bytes:
    """SHA-256 over the length-framed concatenation of ``chunks``."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(len(chunk).to_bytes(4, "big"))
        h.update(chunk)
    return h.digest()


def framed_hmac_sha256(key: bytes, chunks: Iterable[bytes]) -> bytes:
    """HMAC-SHA256 over the length-framed concatenation of ``chunks``."""
    mac = hmac.new(key, digestmod=hashlib.sha256)
    for chunk in chunks:
        mac.update(len(chunk).to_bytes(4, "big"))
        mac.update(chunk)
    return mac.digest()
