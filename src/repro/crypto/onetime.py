"""Per-sample one-time encryption for privacy-preserving audits (§VII-B3).

Each GPS sample in the PoA is encrypted under its own random key before
upload, so an honest-but-curious Auditor learns nothing about the
trajectory.  When a Zone Owner reports an incident, the operator reveals
only the keys for the two samples bracketing the incident time; the Auditor
decrypts exactly that pair and checks sufficiency against the accusing
zone.

The cipher is a SHA-256 counter-mode keystream with an encrypt-then-MAC
HMAC tag — authenticated, and committing: a revealed key opens one ciphertext
to exactly one plaintext.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from dataclasses import dataclass

from repro.errors import EncryptionError

_KEY_LENGTH = 32
_TAG_LENGTH = 32


@dataclass(frozen=True, slots=True)
class OneTimeKey:
    """A single-use symmetric key; never reuse across samples."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != _KEY_LENGTH:
            raise EncryptionError(f"one-time keys must be {_KEY_LENGTH} bytes")

    @classmethod
    def generate(cls, rng: random.Random | None = None) -> "OneTimeKey":
        """A fresh random key."""
        rng = rng or random.SystemRandom()
        return cls(bytes(rng.randrange(256) for _ in range(_KEY_LENGTH)))


def _keystream(key: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(key + b"|stream|" + counter.to_bytes(8, "big")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def _mac_key(key: bytes) -> bytes:
    return hashlib.sha256(key + b"|mac|").digest()


def onetime_encrypt(key: OneTimeKey, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC under a one-time key.

    Output layout: ``ciphertext || tag`` with a 32-byte HMAC-SHA256 tag.
    """
    stream = _keystream(key.material, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(_mac_key(key.material), ciphertext, hashlib.sha256).digest()
    return ciphertext + tag


def onetime_decrypt(key: OneTimeKey, blob: bytes) -> bytes:
    """Verify the tag and decrypt; raises :class:`EncryptionError` on tamper."""
    if len(blob) < _TAG_LENGTH:
        raise EncryptionError("one-time ciphertext too short to contain a tag")
    ciphertext, tag = blob[:-_TAG_LENGTH], blob[-_TAG_LENGTH:]
    expected = hmac.new(_mac_key(key.material), ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(tag, expected):
        raise EncryptionError("one-time ciphertext failed authentication")
    stream = _keystream(key.material, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))
