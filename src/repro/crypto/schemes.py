"""Pluggable sample-authentication schemes for Proof-of-Alibi flights.

The paper's prototype authenticates every GPS sample with one RSA
signature (``TEE_ALG_RSASSA_PKCS1_V1_5_SHA1``).  Its discussion section —
and the TBRD line of work on TESLA-authenticated Remote ID broadcasts —
sketch cheaper shapes: sign the whole trace once, or anchor a symmetric
hash chain with a single asymmetric commitment.  This module makes the
choice explicit: an :class:`AuthScheme` turns payloads into per-sample
auth blobs plus an optional flight-level *finalizer*, and verifies a whole
flight's entries in one call.  Everything downstream (the PoA container,
the verification pipeline, the batch audit engine, the conformance
reference) dispatches on a scheme id string instead of hardwiring RSA.

Four schemes ship:

* ``rsa-v15`` — the paper's default: one RSASSA-PKCS1-v1_5 signature per
  sample, no finalizer.  Supports Bellare–Garay–Rabin batch screening.
* ``rsa-batch`` — §VII-A1(b): samples carry empty blobs; the finalizer is
  one RSA signature over the length-framed SHA-256 of all payloads.
* ``hash-chain`` — TBRD-style amortized authentication: at flight start
  the TA commits to a hash-chain anchor with one RSA signature; each
  sample's blob is a chained HMAC keyed off the previous link; the
  finalizer discloses the chain key and closes the chain with a second
  RSA signature over ``(anchor, final link, count)``.  The verifier
  replays the chain, so truncation, splice, and reorder are rejected
  structurally with exactly two RSA operations per flight.
* ``merkle-disclosure`` — the selective-disclosure commitment
  (:mod:`repro.privacy`): one RSA signature per flight over the Merkle
  root, epoch, and leaf count of the whole trace.  A submission either
  carries the full trace (empty blobs, recomputed root) or a *subset*
  of samples whose blobs are index-addressed membership proofs; either
  way the signature pins every revealed sample to its position in the
  committed flight.  Whether the revealed subset is *enough* is a
  verification-pipeline question (the disclosure stage), not an
  authenticity one.

Verification never raises on malformed adversarial input: structural
failures (bad finalizer, count mismatch, broken commitment) condemn every
index, which the pipeline reports as ``REJECTED_BAD_SIGNATURE``.
"""

from __future__ import annotations

import abc
import hashlib
import random
import struct
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.digest import framed_hmac_sha256, framed_sha256
from repro.crypto.pkcs1 import screen_pkcs1_v15, sign_pkcs1_v15, verify_pkcs1_v15
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import SchemeError

#: Scheme ids are a wire/report format (they ride in submissions and
#: serialized PoAs): never rename them.
SCHEME_RSA = "rsa-v15"
SCHEME_BATCH = "rsa-batch"
SCHEME_CHAIN = "hash-chain"
SCHEME_MERKLE = "merkle-disclosure"

#: Hash-chain geometry: SHA-256 links and a 256-bit chain key.
CHAIN_LINK_LENGTH = 32
CHAIN_KEY_LENGTH = 32

_CHAIN_MAGIC = b"ADC1"
_CHAIN_KEY_TAG = b"ADCH-KEY\x00"
_CHAIN_COMMIT_TAG = b"ADCH-COMMIT\x00"
_CHAIN_CLOSE_TAG = b"ADCH-CLOSE\x00"


# --- hash-chain construction (shared by the TA signer and the verifier) ----

def chain_anchor(chain_key: bytes) -> bytes:
    """The chain anchor ``A = SHA-256(tag || K)`` committed at flight start."""
    return hashlib.sha256(_CHAIN_KEY_TAG + chain_key).digest()


def chain_link(chain_key: bytes, previous_link: bytes, payload: bytes) -> bytes:
    """One chain link: HMAC over the framed previous link and payload."""
    return framed_hmac_sha256(chain_key, (previous_link, payload))


def chain_commit_payload(anchor: bytes) -> bytes:
    """What the flight-start RSA commitment signs."""
    return _CHAIN_COMMIT_TAG + anchor


def chain_close_payload(anchor: bytes, final_link: bytes, count: int) -> bytes:
    """What the flight-end RSA closure signs: anchor, last link, count."""
    return _CHAIN_CLOSE_TAG + anchor + final_link + struct.pack(">I", count)


@dataclass(frozen=True, slots=True)
class ChainFinalizer:
    """The decoded hash-chain finalizer blob.

    Disclosing ``chain_key`` at flight end is what lets the Auditor replay
    the HMAC links; unforgeability then rests on the two RSA signatures,
    which an attacker holding the disclosed key still cannot produce.
    """

    count: int
    anchor: bytes
    chain_key: bytes
    commitment_signature: bytes
    close_signature: bytes

    def to_bytes(self) -> bytes:
        return b"".join([
            _CHAIN_MAGIC,
            struct.pack(">I", self.count),
            self.anchor,
            self.chain_key,
            struct.pack(">H", len(self.commitment_signature)),
            self.commitment_signature,
            struct.pack(">H", len(self.close_signature)),
            self.close_signature,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "ChainFinalizer":
        """Decode a finalizer blob; raises :class:`SchemeError` when malformed."""
        fixed = len(_CHAIN_MAGIC) + 4 + CHAIN_LINK_LENGTH + CHAIN_KEY_LENGTH
        if len(data) < fixed or data[:4] != _CHAIN_MAGIC:
            raise SchemeError("malformed hash-chain finalizer header")
        (count,) = struct.unpack_from(">I", data, 4)
        offset = 8
        anchor = data[offset:offset + CHAIN_LINK_LENGTH]
        offset += CHAIN_LINK_LENGTH
        chain_key = data[offset:offset + CHAIN_KEY_LENGTH]
        offset += CHAIN_KEY_LENGTH
        sigs = []
        for _ in range(2):
            if offset + 2 > len(data):
                raise SchemeError("truncated hash-chain finalizer signature")
            (length,) = struct.unpack_from(">H", data, offset)
            offset += 2
            if offset + length > len(data):
                raise SchemeError("truncated hash-chain finalizer signature")
            sigs.append(data[offset:offset + length])
            offset += length
        if offset != len(data):
            raise SchemeError("trailing bytes after hash-chain finalizer")
        return cls(count=count, anchor=anchor, chain_key=chain_key,
                   commitment_signature=sigs[0], close_signature=sigs[1])


# --- the scheme interface ---------------------------------------------------

class SampleSigner(abc.ABC):
    """Flight-scoped signing state: one per flight, inside the TEE."""

    @abc.abstractmethod
    def sign_sample(self, payload: bytes) -> bytes:
        """The auth blob for the next sample of the flight."""

    @abc.abstractmethod
    def finalize_flight(self) -> bytes:
        """The flight-level finalizer blob (empty for per-sample schemes)."""


class AuthScheme(abc.ABC):
    """One way of authenticating a flight's worth of GPS samples.

    ``verify`` is the authoritative flight-level check: given the
    ``(payload, auth_blob)`` entries in submission order plus the
    finalizer, it returns the sorted indices that fail authentication —
    empty means the flight authenticates.  It never raises on malformed
    input; a flight-level structural failure condemns every index.
    """

    id: str = "scheme"

    @abc.abstractmethod
    def new_signer(self, key: RsaPrivateKey, hash_name: str = "sha1",
                   rng: random.Random | None = None) -> SampleSigner:
        """Fresh flight-scoped signing state under ``T-``."""

    @abc.abstractmethod
    def verify(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> list[int]:
        """Sorted indices of entries that fail authentication."""

    def verify_sample(self, key: RsaPublicKey, payload: bytes, auth: bytes,
                      hash_name: str = "sha1") -> bool:
        """Whether one sample stands alone; flight-level schemes say no."""
        del key, payload, auth, hash_name
        return False

    def screen(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> bool | None:
        """Optional batch-screening fast path.

        ``True`` means the whole flight screens authentic (skip
        :meth:`verify`); ``None`` means no fast path exists and the caller
        must verify; ``False`` means screening found a failure and the
        caller must verify to learn the indices.
        """
        del key, entries, finalizer, hash_name
        return None

    def wire_bytes(self, entries: Sequence[tuple[bytes, bytes]],
                   finalizer: bytes = b"") -> int:
        """Authenticator bytes this flight puts on the wire."""
        return sum(len(auth) for _payload, auth in entries) + len(finalizer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.id!r}>"


# --- rsa-v15: the paper's default ------------------------------------------

class _RsaPerSampleSigner(SampleSigner):
    def __init__(self, key: RsaPrivateKey, hash_name: str):
        self._key = key
        self._hash_name = hash_name

    def sign_sample(self, payload: bytes) -> bytes:
        return sign_pkcs1_v15(self._key, payload, self._hash_name)

    def finalize_flight(self) -> bytes:
        return b""


class RsaPerSampleScheme(AuthScheme):
    """One RSASSA-PKCS1-v1_5 signature per sample (paper §IV-C2)."""

    id = SCHEME_RSA

    def new_signer(self, key: RsaPrivateKey, hash_name: str = "sha1",
                   rng: random.Random | None = None) -> SampleSigner:
        del rng  # deterministic scheme
        return _RsaPerSampleSigner(key, hash_name)

    def verify(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> list[int]:
        if finalizer:
            # A per-sample scheme has no finalizer; one smuggled in is a
            # malformed submission, not evidence.
            return list(range(len(entries)))
        return [i for i, (payload, auth) in enumerate(entries)
                if not verify_pkcs1_v15(key, payload, auth, hash_name)]

    def verify_sample(self, key: RsaPublicKey, payload: bytes, auth: bytes,
                      hash_name: str = "sha1") -> bool:
        return verify_pkcs1_v15(key, payload, auth, hash_name)

    def screen(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> bool | None:
        if finalizer:
            return None
        return screen_pkcs1_v15(key, entries, hash_name)


# --- rsa-batch: one signature over the framed trace digest ------------------

class _BatchSigner(SampleSigner):
    def __init__(self, key: RsaPrivateKey, hash_name: str):
        self._key = key
        self._hash_name = hash_name
        self._payloads: list[bytes] = []

    def sign_sample(self, payload: bytes) -> bytes:
        self._payloads.append(payload)
        return b""

    def finalize_flight(self) -> bytes:
        return sign_pkcs1_v15(self._key, framed_sha256(self._payloads),
                              self._hash_name)


class BatchDigestScheme(AuthScheme):
    """Sign the whole trace once at flight end (paper §VII-A1(b))."""

    id = SCHEME_BATCH

    def new_signer(self, key: RsaPrivateKey, hash_name: str = "sha1",
                   rng: random.Random | None = None) -> SampleSigner:
        del rng
        return _BatchSigner(key, hash_name)

    def verify(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> list[int]:
        digest = framed_sha256(payload for payload, _auth in entries)
        if not verify_pkcs1_v15(key, digest, finalizer, hash_name):
            return list(range(len(entries)))
        # The digest covers payloads only; a non-empty per-sample blob is
        # foreign material this scheme never produced.
        return [i for i, (_payload, auth) in enumerate(entries) if auth]


# --- hash-chain: TBRD-style amortized authentication ------------------------

class ChainSigner(SampleSigner):
    def __init__(self, key: RsaPrivateKey, hash_name: str,
                 rng: random.Random | None):
        rng = rng or random.SystemRandom()
        self._key = key
        self._hash_name = hash_name
        self._chain_key = bytes(rng.randrange(256)
                                for _ in range(CHAIN_KEY_LENGTH))
        self._anchor = chain_anchor(self._chain_key)
        self._commitment = sign_pkcs1_v15(
            key, chain_commit_payload(self._anchor), hash_name)
        self._previous = self._anchor
        self._count = 0

    @property
    def anchor(self) -> bytes:
        return self._anchor

    @property
    def commitment_signature(self) -> bytes:
        return self._commitment

    def sign_sample(self, payload: bytes) -> bytes:
        link = chain_link(self._chain_key, self._previous, payload)
        self._previous = link
        self._count += 1
        return link

    def finalize_flight(self) -> bytes:
        close = sign_pkcs1_v15(
            self._key,
            chain_close_payload(self._anchor, self._previous, self._count),
            self._hash_name)
        return ChainFinalizer(
            count=self._count, anchor=self._anchor,
            chain_key=self._chain_key,
            commitment_signature=self._commitment,
            close_signature=close).to_bytes()


class ChainedHmacScheme(AuthScheme):
    """Hash-chain links anchored by one RSA commitment per flight.

    Two RSA operations per flight regardless of sample count; everything
    else is SHA-256/HMAC.  The replayed chain pins each payload to its
    position, so truncation (count mismatch), splice (link mismatch at the
    seam), and reorder (links out of sequence) all fail structurally even
    though the chain key is public after flight-end disclosure.
    """

    id = SCHEME_CHAIN

    def new_signer(self, key: RsaPrivateKey, hash_name: str = "sha1",
                   rng: random.Random | None = None) -> SampleSigner:
        return ChainSigner(key, hash_name, rng)

    def verify(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> list[int]:
        all_bad = list(range(len(entries)))
        try:
            fin = ChainFinalizer.from_bytes(finalizer)
        except SchemeError:
            return all_bad
        if chain_anchor(fin.chain_key) != fin.anchor:
            return all_bad
        if not verify_pkcs1_v15(key, chain_commit_payload(fin.anchor),
                                fin.commitment_signature, hash_name):
            return all_bad
        if fin.count != len(entries):
            # Truncated or padded flight: the closure signed a different
            # sample count, so no entry can be attributed.
            return all_bad
        bad = []
        previous = fin.anchor
        for i, (payload, auth) in enumerate(entries):
            if auth != chain_link(fin.chain_key, previous, payload):
                bad.append(i)
            # Replay continues from the *stored* link so one broken link
            # condemns exactly the tampered positions, not the whole tail.
            previous = auth
        if not verify_pkcs1_v15(
                key, chain_close_payload(fin.anchor, previous, fin.count),
                fin.close_signature, hash_name):
            return all_bad
        return bad


# --- merkle-disclosure: one root signature, reveal-what-you-must ------------

#: Merkle finalizer geometry: a SHA-256 root.
MERKLE_ROOT_LENGTH = 32

_MERKLE_MAGIC = b"ADM1"
_MERKLE_ROOT_TAG = b"ADMK-ROOT\x00"


def merkle_root_payload(root: bytes, epoch: float, count: int) -> bytes:
    """What the FinalizeFlight RSA signature signs: root ‖ epoch ‖ count."""
    return (_MERKLE_ROOT_TAG + root + struct.pack(">d", epoch)
            + struct.pack(">I", count))


@dataclass(frozen=True, slots=True)
class MerkleFinalizer:
    """The decoded Merkle-disclosure finalizer blob.

    ``epoch`` is the flight's first sample timestamp; signing it (and the
    leaf count) alongside the root pins the committed trace to a concrete
    flight, so prefix truncation and cross-flight splices cannot be
    papered over by re-using a root signature.
    """

    count: int
    epoch: float
    root: bytes
    root_signature: bytes

    def to_bytes(self) -> bytes:
        return b"".join([
            _MERKLE_MAGIC,
            struct.pack(">I", self.count),
            struct.pack(">d", self.epoch),
            self.root,
            struct.pack(">H", len(self.root_signature)),
            self.root_signature,
        ])

    @classmethod
    def from_bytes(cls, data: bytes) -> "MerkleFinalizer":
        """Decode a finalizer blob; raises :class:`SchemeError` when malformed."""
        fixed = len(_MERKLE_MAGIC) + 4 + 8 + MERKLE_ROOT_LENGTH + 2
        if len(data) < fixed or data[:4] != _MERKLE_MAGIC:
            raise SchemeError("malformed merkle finalizer header")
        (count,) = struct.unpack_from(">I", data, 4)
        (epoch,) = struct.unpack_from(">d", data, 8)
        offset = 16
        root = data[offset:offset + MERKLE_ROOT_LENGTH]
        offset += MERKLE_ROOT_LENGTH
        (length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        if offset + length != len(data):
            raise SchemeError("malformed merkle finalizer signature")
        return cls(count=count, epoch=epoch, root=root,
                   root_signature=data[offset:])


class MerkleSigner(SampleSigner):
    """Accumulates the flight's payloads; one RSA operation at flight end."""

    def __init__(self, key: RsaPrivateKey, hash_name: str):
        self._key = key
        self._hash_name = hash_name
        self._payloads: list[bytes] = []

    def sign_sample(self, payload: bytes) -> bytes:
        self._payloads.append(payload)
        return b""

    def _epoch(self) -> float:
        """First sample timestamp, signed into the root commitment."""
        if not self._payloads:
            return 0.0
        from repro.core.samples import GpsSample
        from repro.errors import EncodingError
        try:
            return GpsSample.from_signed_payload(self._payloads[0]).t
        except EncodingError:
            return 0.0

    def finalize_flight(self) -> bytes:
        from repro.privacy.merkle import MerkleTree

        tree = MerkleTree(self._payloads)
        epoch = self._epoch()
        signature = sign_pkcs1_v15(
            self._key, merkle_root_payload(tree.root, epoch, tree.count),
            self._hash_name)
        return MerkleFinalizer(count=tree.count, epoch=epoch, root=tree.root,
                               root_signature=signature).to_bytes()


class MerkleDisclosureScheme(AuthScheme):
    """Merkle-committed trace with selective disclosure (one RSA op/flight).

    Two submission shapes verify against the same finalizer:

    * **full trace** — every blob empty and the entry count equals the
      signed leaf count; the root is recomputed from the payloads.  This
      is what the drone uploads when it has nothing to redact, and what
      flight harnesses produce directly.
    * **disclosed subset** — every blob is a membership proof; proven
      leaf indices must be strictly increasing (submission order *is*
      committed order) and in range of the signed count.

    Authenticity here means "these payloads sit at these positions of
    the signed flight"; gap sufficiency is the verification pipeline's
    disclosure stage, kept out of the crypto layer deliberately.
    """

    id = SCHEME_MERKLE

    def new_signer(self, key: RsaPrivateKey, hash_name: str = "sha1",
                   rng: random.Random | None = None) -> SampleSigner:
        del rng  # deterministic scheme
        return MerkleSigner(key, hash_name)

    def verify(self, key: RsaPublicKey,
               entries: Sequence[tuple[bytes, bytes]],
               finalizer: bytes = b"", hash_name: str = "sha1") -> list[int]:
        from repro.privacy.merkle import (
            MembershipProof, merkle_root, verify_membership)

        all_bad = list(range(len(entries)))
        try:
            fin = MerkleFinalizer.from_bytes(finalizer)
        except SchemeError:
            return all_bad
        if len(fin.root) != MERKLE_ROOT_LENGTH:
            return all_bad
        if not verify_pkcs1_v15(
                key, merkle_root_payload(fin.root, fin.epoch, fin.count),
                fin.root_signature, hash_name):
            return all_bad
        if all(not auth for _payload, auth in entries):
            # Full-trace mode: the payloads must *be* the committed flight.
            if len(entries) != fin.count:
                return all_bad
            if merkle_root([payload for payload, _auth in entries]) != fin.root:
                return all_bad
            return []
        proofs = []
        for _payload, auth in entries:
            try:
                proofs.append(MembershipProof.from_bytes(auth))
            except SchemeError:
                return all_bad
        indices = [proof.leaf_index for proof in proofs]
        if any(b <= a for a, b in zip(indices, indices[1:])):
            # Reordered or duplicated disclosure: positions are committed,
            # so the subset must arrive in committed order.
            return all_bad
        if any(index >= fin.count for index in indices):
            return all_bad
        return [i for i, ((payload, _auth), proof) in
                enumerate(zip(entries, proofs))
                if not verify_membership(fin.root, fin.count,
                                         proof.leaf_index, payload,
                                         proof.siblings)]


# --- registry ---------------------------------------------------------------

_SCHEMES: dict[str, AuthScheme] = {
    scheme.id: scheme
    for scheme in (RsaPerSampleScheme(), BatchDigestScheme(),
                   ChainedHmacScheme(), MerkleDisclosureScheme())
}


def get_scheme(scheme_id: str) -> AuthScheme:
    """The registered scheme for an id; raises :class:`SchemeError`."""
    scheme = _SCHEMES.get(scheme_id)
    if scheme is None:
        raise SchemeError(f"unknown authentication scheme {scheme_id!r}")
    return scheme


def scheme_ids() -> tuple[str, ...]:
    """All registered scheme ids, default first."""
    return tuple(_SCHEMES)


def authenticate_payloads(key: RsaPrivateKey, payloads: Sequence[bytes],
                          scheme_id: str = SCHEME_RSA,
                          hash_name: str = "sha1",
                          rng: random.Random | None = None,
                          ) -> tuple[list[bytes], bytes]:
    """Authenticate a whole flight at once: ``(auth_blobs, finalizer)``.

    Convenience for harnesses and benchmarks; the real flight path streams
    payloads through a :class:`SampleSigner` inside the TEE.
    """
    signer = get_scheme(scheme_id).new_signer(key, hash_name=hash_name,
                                              rng=rng)
    blobs = [signer.sign_sample(payload) for payload in payloads]
    return blobs, signer.finalize_flight()
