"""Primality testing and prime generation for RSA key material.

Miller-Rabin with deterministic witness sets for small inputs and random
witnesses above; prime generation accepts an explicit ``random.Random`` so
test suites can generate keys reproducibly.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import KeyGenerationError

# Trial-division wheel of small primes: rejects ~77% of random candidates
# before the expensive Miller-Rabin rounds.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
)

# Deterministic witnesses proving primality for all n < 3.3 * 10^24
# (Sorenson & Webster, 2015).
_DETERMINISTIC_WITNESSES: tuple[int, ...] = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_round(n: int, d: int, r: int, witness: int) -> bool:
    """One Miller-Rabin round; True when ``n`` passes for this witness."""
    x = pow(witness, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40,
                      rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (an actual proof) for ``n`` below ~3.3e24; otherwise uses
    ``rounds`` random witnesses for an error bound of 4^-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    witnesses: Sequence[int]
    if n < _DETERMINISTIC_BOUND:
        witnesses = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.SystemRandom()
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return all(_miller_rabin_round(n, d, r, w % n or 2) for w in witnesses)


def generate_prime(bits: int, rng: random.Random | None = None,
                   max_attempts: int = 100_000) -> int:
    """A random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, as RSA keygen requires.
    """
    if bits < 8:
        raise KeyGenerationError(f"prime size too small: {bits} bits")
    rng = rng or random.SystemRandom()
    for _ in range(max_attempts):
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise KeyGenerationError(f"no {bits}-bit prime found in {max_attempts} attempts")
