"""PKCS#1 v1.5 signature and encryption schemes (RFC 8017).

Implements the two algorithms the paper's prototype calls through the
GlobalPlatform TEE API:

* ``RSASSA-PKCS1-v1_5`` with SHA-1 (the prototype's
  ``TEE_ALG_RSASSA_PKCS1_V1_5_SHA1``) or SHA-256 — used by the GPS Sampler
  TA to sign samples.
* ``RSAES-PKCS1-v1_5`` — used by the Adapter to encrypt the PoA under the
  Auditor's public key.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from typing import Sequence

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import CryptoError, EncryptionError, SignatureError

# DER-encoded DigestInfo prefixes (RFC 8017 §9.2 note 1).
_DIGEST_INFO_PREFIX: dict[str, bytes] = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
    "sha384": bytes.fromhex("3041300d060960864801650304020205000430"),
    "sha512": bytes.fromhex("3051300d060960864801650304020305000440"),
}


def i2osp(x: int, length: int) -> bytes:
    """Integer-to-octet-string primitive (big endian, fixed length)."""
    if x < 0 or x >= 256 ** length:
        raise CryptoError("integer too large for I2OSP output length")
    return x.to_bytes(length, "big")


def os2ip(octets: bytes) -> int:
    """Octet-string-to-integer primitive."""
    return int.from_bytes(octets, "big")


def _digest_info(message: bytes, hash_name: str) -> bytes:
    prefix = _DIGEST_INFO_PREFIX.get(hash_name)
    if prefix is None:
        raise CryptoError(f"unsupported hash for PKCS#1 v1.5: {hash_name!r}")
    digest = hashlib.new(hash_name, message).digest()
    return prefix + digest


def _emsa_pkcs1_v15_encode(message: bytes, em_len: int, hash_name: str) -> bytes:
    """EMSA-PKCS1-v1_5 encoding: ``00 01 FF..FF 00 || DigestInfo``."""
    t = _digest_info(message, hash_name)
    if em_len < len(t) + 11:
        raise SignatureError("intended encoded message length too short")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def sign_pkcs1_v15(key: RsaPrivateKey, message: bytes,
                   hash_name: str = "sha1") -> bytes:
    """RSASSA-PKCS1-v1_5 signature generation.

    Defaults to SHA-1 to match the prototype's OP-TEE algorithm id; SHA-256
    is also supported (and is what a modern deployment should use).
    """
    k = key.byte_length
    em = _emsa_pkcs1_v15_encode(message, k, hash_name)
    return i2osp(key.raw_sign(os2ip(em)), k)


def verify_pkcs1_v15(key: RsaPublicKey, message: bytes, signature: bytes,
                     hash_name: str = "sha1") -> bool:
    """RSASSA-PKCS1-v1_5 signature verification.

    Returns False on any mismatch instead of raising, so callers can treat
    a bad signature as a protocol outcome rather than an exception.
    """
    k = key.byte_length
    if len(signature) != k:
        return False
    try:
        em = i2osp(key.raw_verify(os2ip(signature)), k)
        expected = _emsa_pkcs1_v15_encode(message, k, hash_name)
    except CryptoError:
        return False
    return _hmac.compare_digest(em, expected)


def screen_pkcs1_v15(key: RsaPublicKey,
                     items: "Sequence[tuple[bytes, bytes]]",
                     hash_name: str = "sha1") -> bool | None:
    """Batch *screening* of same-key RSASSA-PKCS1-v1_5 signatures.

    Bellare–Garay–Rabin screening: for signatures ``s_i`` over messages
    ``m_i`` under one key ``(n, e)``, check

        ``(prod s_i)^e  ==  prod EMSA(m_i)   (mod n)``

    which costs a single public-key exponentiation plus two modular
    multiplications per signature, instead of one exponentiation per
    signature.  Returns:

    * ``True``  — the batch screens valid.  For *distinct* messages this
      implies (under the RSA assumption) that every message was signed by
      the key holder at some point; it does **not** pin each individual
      ``s_i`` to ``m_i`` (an adversary holding valid signatures can permute
      multiplicative factors between them).  Callers that need per-index
      attribution of failures must fall back to :func:`verify_pkcs1_v15`.
    * ``False`` — at least one signature is invalid (fall back to find out
      which).
    * ``None``  — the batch is not screenable (duplicate messages, bad
      signature length, out-of-range value, unsupported hash): the caller
      must verify individually.
    """
    if not items:
        return True
    k = key.byte_length
    seen: set[bytes] = set()
    sig_product = 1
    em_product = 1
    for message, signature in items:
        if len(signature) != k:
            return None
        if message in seen:
            return None  # screening soundness needs distinct messages
        seen.add(message)
        s = os2ip(signature)
        if not 0 <= s < key.n:
            return None
        try:
            em = _emsa_pkcs1_v15_encode(message, k, hash_name)
        except CryptoError:
            return None
        sig_product = (sig_product * s) % key.n
        em_product = (em_product * os2ip(em)) % key.n
    return pow(sig_product, key.e, key.n) == em_product


def encrypt_pkcs1_v15(key: RsaPublicKey, message: bytes,
                      rng: random.Random | None = None) -> bytes:
    """RSAES-PKCS1-v1_5 encryption: ``00 02 PS 00 M`` with random nonzero PS."""
    k = key.byte_length
    if len(message) > k - 11:
        raise EncryptionError(f"message too long for RSAES-PKCS1-v1_5: {len(message)} > {k - 11}")
    rng = rng or random.SystemRandom()
    ps = bytes(rng.randrange(1, 256) for _ in range(k - len(message) - 3))
    em = b"\x00\x02" + ps + b"\x00" + message
    return i2osp(key.raw_encrypt(os2ip(em)), k)


def decrypt_pkcs1_v15(key: RsaPrivateKey, ciphertext: bytes) -> bytes:
    """RSAES-PKCS1-v1_5 decryption.

    Raises:
        EncryptionError: on malformed padding.  (A networked deployment
            would need to make this failure indistinguishable from success
            to resist Bleichenbacher oracles; the PoA protocol only decrypts
            operator-submitted blobs offline at the Auditor.)
    """
    k = key.byte_length
    if len(ciphertext) != k or k < 11:
        raise EncryptionError("ciphertext length does not match key size")
    try:
        em = i2osp(key.raw_decrypt(os2ip(ciphertext)), k)
    except CryptoError as exc:
        # A right-length ciphertext can still exceed the modulus (e.g. a
        # flipped high bit); RFC 8017 folds RSADP's out-of-range case
        # into the uniform "decryption error".
        raise EncryptionError(str(exc)) from None
    if em[0] != 0x00 or em[1] != 0x02:
        raise EncryptionError("invalid RSAES-PKCS1-v1_5 padding header")
    try:
        separator = em.index(b"\x00", 2)
    except ValueError:
        raise EncryptionError("missing RSAES-PKCS1-v1_5 padding separator") from None
    if separator < 10:
        raise EncryptionError("RSAES-PKCS1-v1_5 padding string too short")
    return em[separator + 1:]
