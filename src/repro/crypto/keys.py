"""Key serialization and fingerprints.

Keys cross trust boundaries in the protocol (drone registration ships the
TEE verification key and the operator verification key to the Auditor), so
they need a canonical wire form.  We use a minimal length-prefixed binary
encoding rather than full ASN.1: the protocol only ever exchanges keys
produced by this package.
"""

from __future__ import annotations

import hashlib
import struct

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import EncodingError

_PUBLIC_MAGIC = b"ADPK"   # AliDrone Public Key
_PRIVATE_MAGIC = b"ADSK"  # AliDrone Secret Key


def _encode_int(value: int) -> bytes:
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return struct.pack(">I", len(raw)) + raw


def _decode_int(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(data):
        raise EncodingError("truncated key encoding (length prefix)")
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if offset + length > len(data):
        raise EncodingError("truncated key encoding (integer body)")
    return int.from_bytes(data[offset:offset + length], "big"), offset + length


def public_key_to_bytes(key: RsaPublicKey) -> bytes:
    """Canonical wire encoding of a public key."""
    return _PUBLIC_MAGIC + _encode_int(key.n) + _encode_int(key.e)


def public_key_from_bytes(data: bytes) -> RsaPublicKey:
    """Parse a public key; raises :class:`EncodingError` on malformed input."""
    if data[:4] != _PUBLIC_MAGIC:
        raise EncodingError("not an AliDrone public key encoding")
    n, offset = _decode_int(data, 4)
    e, offset = _decode_int(data, offset)
    if offset != len(data):
        raise EncodingError("trailing bytes after public key encoding")
    return RsaPublicKey(n=n, e=e)


def private_key_to_bytes(key: RsaPrivateKey) -> bytes:
    """Canonical wire encoding of a private key (sealed-storage form)."""
    return (_PRIVATE_MAGIC + _encode_int(key.n) + _encode_int(key.e)
            + _encode_int(key.d) + _encode_int(key.p) + _encode_int(key.q))


def private_key_from_bytes(data: bytes) -> RsaPrivateKey:
    """Parse a private key; raises :class:`EncodingError` on malformed input."""
    if data[:4] != _PRIVATE_MAGIC:
        raise EncodingError("not an AliDrone private key encoding")
    offset = 4
    values = []
    for _ in range(5):
        value, offset = _decode_int(data, offset)
        values.append(value)
    if offset != len(data):
        raise EncodingError("trailing bytes after private key encoding")
    n, e, d, p, q = values
    return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)


def key_fingerprint(key: RsaPublicKey) -> str:
    """SHA-256 fingerprint of the canonical public key encoding (hex)."""
    return hashlib.sha256(public_key_to_bytes(key)).hexdigest()
