"""Symmetric (HMAC) sample authentication — paper §VII-A1(a).

The discussion section proposes replacing per-sample RSA signatures with a
flight-scoped symmetric key negotiated between the drone TEE and the
Auditor, because asymmetric signing dominates the CPU cost on the Pi.  The
HMAC mode here backs the signing-scheme ablation benchmark and the
``symmetric`` PoA extension.
"""

from __future__ import annotations

import hmac
import hashlib
import random

from repro.errors import ConfigurationError

#: HMAC-SHA256 output length in bytes.
HMAC_TAG_LENGTH = 32


def generate_hmac_key(rng: random.Random | None = None, length: int = 32) -> bytes:
    """A fresh random HMAC key of ``length`` bytes (default 256-bit)."""
    if length < 16:
        raise ConfigurationError("HMAC keys shorter than 128 bits are not allowed")
    rng = rng or random.SystemRandom()
    return bytes(rng.randrange(256) for _ in range(length))


def hmac_sign(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 tag over ``message``."""
    return hmac.new(key, message, hashlib.sha256).digest()


def hmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time verification of an HMAC-SHA256 tag."""
    return hmac.compare_digest(hmac_sign(key, message), tag)
