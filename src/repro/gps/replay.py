"""Trajectory sources: timestamped waypoint interpolation and fix replay.

The paper's field methodology records a full 5 Hz GPS trace from a vehicle
and *replays* it into the GPS Sampler (§VI-A1).  :class:`ReplaySource`
mirrors that; :class:`WaypointSource` is the synthetic-generator analogue
used by the workload builders.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.nmea import GpsFix


class WaypointSource:
    """Piecewise-linear trajectory through timestamped local-frame points.

    Positions before the first waypoint clamp to it, and positions after
    the last clamp to the last (the vehicle is parked before departure and
    after arrival).
    """

    def __init__(self, waypoints: Sequence[tuple[float, float, float]]):
        """Args:
            waypoints: ``(t, x, y)`` triples with strictly increasing ``t``.
        """
        points = [(float(t), float(x), float(y)) for t, x, y in waypoints]
        if not points:
            raise ConfigurationError("WaypointSource needs at least one waypoint")
        for earlier, later in zip(points, points[1:]):
            if later[0] <= earlier[0]:
                raise ConfigurationError("waypoint times must be strictly increasing")
        self._times = [p[0] for p in points]
        self._points = points

    @property
    def start_time(self) -> float:
        """Time of the first waypoint."""
        return self._times[0]

    @property
    def end_time(self) -> float:
        """Time of the last waypoint."""
        return self._times[-1]

    @property
    def duration(self) -> float:
        """Trace duration in seconds."""
        return self.end_time - self.start_time

    def position_at(self, t: float) -> tuple[float, float]:
        """Interpolated ``(x, y)`` at ``t``, clamped to the trace span."""
        if t <= self._times[0]:
            return (self._points[0][1], self._points[0][2])
        if t >= self._times[-1]:
            return (self._points[-1][1], self._points[-1][2])
        hi = bisect.bisect_right(self._times, t)
        t0, x0, y0 = self._points[hi - 1]
        t1, x1, y1 = self._points[hi]
        alpha = (t - t0) / (t1 - t0)
        return (x0 + alpha * (x1 - x0), y0 + alpha * (y1 - y0))


class ReplaySource(WaypointSource):
    """A :class:`WaypointSource` built from previously recorded GPS fixes."""

    @classmethod
    def from_fixes(cls, fixes: Iterable[GpsFix], frame: LocalFrame) -> "ReplaySource":
        """Build a replayable trajectory from recorded fixes.

        Fixes are projected into ``frame``; duplicate timestamps collapse to
        the last fix seen.
        """
        waypoints: list[tuple[float, float, float]] = []
        for fix in sorted(fixes, key=lambda f: f.time):
            x, y = frame.to_local(GeoPoint(fix.lat, fix.lon))
            if waypoints and abs(waypoints[-1][0] - fix.time) < 1e-9:
                waypoints[-1] = (fix.time, x, y)
            else:
                waypoints.append((fix.time, x, y))
        return cls(waypoints)
