"""NMEA 0183 sentence formatting and parsing.

The prototype's secure-world GPS driver reads raw ``$GPRMC`` sentences from
the receiver's UART and parses them into ``(lat, lon, timestamp)`` tuples
(paper §V-B, using Libnmea).  This module is our Libnmea equivalent: it
formats and parses ``$GPRMC`` (recommended minimum) and ``$GPGGA`` (fix
data, carries altitude for the 3-D extension), with checksum enforcement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime, timezone

from repro.errors import NmeaError
from repro.units import mps_to_knots, knots_to_mps


@dataclass(frozen=True, slots=True)
class GpsFix:
    """A parsed GPS measurement.

    Attributes:
        lat: latitude, decimal degrees.
        lon: longitude, decimal degrees.
        time: UNIX timestamp, seconds (sub-second precision preserved).
        speed_mps: speed over ground, m/s.
        course_deg: course over ground, degrees true.
        altitude_m: altitude above mean sea level (None for $GPRMC fixes).
        valid: receiver fix status (``A`` = valid, ``V`` = void).
    """

    lat: float
    lon: float
    time: float
    speed_mps: float = 0.0
    course_deg: float = 0.0
    altitude_m: float | None = None
    valid: bool = True


def nmea_checksum(body: str) -> str:
    """Two-hex-digit XOR checksum over the sentence body (between $ and *)."""
    value = 0
    for char in body:
        value ^= ord(char)
    return f"{value:02X}"


def _frame(body: str) -> str:
    return f"${body}*{nmea_checksum(body)}"


def _format_latitude(lat: float) -> tuple[str, str]:
    hemisphere = "N" if lat >= 0 else "S"
    lat = abs(lat)
    degrees = int(lat)
    minutes = (lat - degrees) * 60.0
    return f"{degrees:02d}{minutes:07.4f}", hemisphere


def _format_longitude(lon: float) -> tuple[str, str]:
    hemisphere = "E" if lon >= 0 else "W"
    lon = abs(lon)
    degrees = int(lon)
    minutes = (lon - degrees) * 60.0
    return f"{degrees:03d}{minutes:07.4f}", hemisphere


def _format_time(unix_time: float) -> str:
    dt = datetime.fromtimestamp(unix_time, tz=timezone.utc)
    centis = round(dt.microsecond / 10_000)
    if centis == 100:  # rounding rolled over the second
        centis = 0
    return f"{dt:%H%M%S}.{centis:02d}"


def _format_date(unix_time: float) -> str:
    return f"{datetime.fromtimestamp(unix_time, tz=timezone.utc):%d%m%y}"


def format_gprmc(fix: GpsFix) -> str:
    """Render a fix as a ``$GPRMC`` sentence with checksum."""
    lat_str, ns = _format_latitude(fix.lat)
    lon_str, ew = _format_longitude(fix.lon)
    status = "A" if fix.valid else "V"
    body = (f"GPRMC,{_format_time(fix.time)},{status},{lat_str},{ns},{lon_str},{ew},"
            f"{mps_to_knots(fix.speed_mps):.2f},{fix.course_deg:.2f},"
            f"{_format_date(fix.time)},,,A")
    return _frame(body)


def format_gpgga(fix: GpsFix, num_satellites: int = 8, hdop: float = 1.0) -> str:
    """Render a fix as a ``$GPGGA`` sentence (carries altitude)."""
    lat_str, ns = _format_latitude(fix.lat)
    lon_str, ew = _format_longitude(fix.lon)
    quality = 1 if fix.valid else 0
    altitude = fix.altitude_m if fix.altitude_m is not None else 0.0
    body = (f"GPGGA,{_format_time(fix.time)},{lat_str},{ns},{lon_str},{ew},"
            f"{quality},{num_satellites:02d},{hdop:.1f},{altitude:.1f},M,0.0,M,,")
    return _frame(body)


def _split_checked(sentence: str) -> list[str]:
    sentence = sentence.strip()
    if not sentence.startswith("$"):
        raise NmeaError("NMEA sentence must start with '$'")
    if "*" not in sentence:
        raise NmeaError("NMEA sentence missing checksum delimiter '*'")
    body, _, checksum = sentence[1:].rpartition("*")
    if nmea_checksum(body) != checksum.upper():
        raise NmeaError(f"NMEA checksum mismatch: expected {nmea_checksum(body)}, got {checksum}")
    return body.split(",")


def _parse_angle(value: str, hemisphere: str, degree_digits: int) -> float:
    if len(value) <= degree_digits:
        raise NmeaError(f"malformed NMEA coordinate: {value!r}")
    try:
        degrees = int(value[:degree_digits])
        minutes = float(value[degree_digits:])
    except ValueError as exc:
        raise NmeaError(f"malformed NMEA coordinate: {value!r}") from exc
    angle = degrees + minutes / 60.0
    if hemisphere in ("S", "W"):
        angle = -angle
    elif hemisphere not in ("N", "E"):
        raise NmeaError(f"invalid hemisphere indicator: {hemisphere!r}")
    return angle


def _parse_time(time_field: str, date_field: str | None) -> float:
    try:
        hours = int(time_field[0:2])
        minutes = int(time_field[2:4])
        seconds = float(time_field[4:])
    except (ValueError, IndexError) as exc:
        raise NmeaError(f"malformed NMEA time: {time_field!r}") from exc
    if date_field:
        try:
            day = int(date_field[0:2])
            month = int(date_field[2:4])
            year = 2000 + int(date_field[4:6])
        except (ValueError, IndexError) as exc:
            raise NmeaError(f"malformed NMEA date: {date_field!r}") from exc
    else:
        day, month, year = 1, 1, 1970
    base = datetime(year, month, day, hours, minutes, 0, tzinfo=timezone.utc)
    return base.timestamp() + seconds


def parse_gprmc(sentence: str) -> GpsFix:
    """Parse a ``$GPRMC`` sentence, enforcing the checksum."""
    fields = _split_checked(sentence)
    if fields[0] not in ("GPRMC", "GNRMC"):
        raise NmeaError(f"not an RMC sentence: {fields[0]!r}")
    if len(fields) < 10:
        raise NmeaError("RMC sentence has too few fields")
    valid = fields[2] == "A"
    lat = _parse_angle(fields[3], fields[4], 2)
    lon = _parse_angle(fields[5], fields[6], 3)
    speed = knots_to_mps(float(fields[7])) if fields[7] else 0.0
    course = float(fields[8]) if fields[8] else 0.0
    time = _parse_time(fields[1], fields[9])
    return GpsFix(lat=lat, lon=lon, time=time, speed_mps=speed,
                  course_deg=course, valid=valid)


def parse_gpgga(sentence: str) -> GpsFix:
    """Parse a ``$GPGGA`` sentence, enforcing the checksum."""
    fields = _split_checked(sentence)
    if fields[0] not in ("GPGGA", "GNGGA"):
        raise NmeaError(f"not a GGA sentence: {fields[0]!r}")
    if len(fields) < 10:
        raise NmeaError("GGA sentence has too few fields")
    lat = _parse_angle(fields[2], fields[3], 2)
    lon = _parse_angle(fields[4], fields[5], 3)
    valid = fields[6] not in ("", "0")
    altitude = float(fields[9]) if fields[9] else None
    time = _parse_time(fields[1], None)
    return GpsFix(lat=lat, lon=lon, time=time, altitude_m=altitude, valid=valid)


def parse_sentence(sentence: str) -> GpsFix:
    """Parse any supported NMEA sentence by its talker/type field."""
    fields = _split_checked(sentence)
    kind = fields[0]
    if kind.endswith("RMC"):
        return parse_gprmc(sentence)
    if kind.endswith("GGA"):
        return parse_gpgga(sentence)
    raise NmeaError(f"unsupported NMEA sentence type: {kind!r}")


def fix_is_finite(fix: GpsFix) -> bool:
    """Whether all numeric fields of a fix are finite (defensive check)."""
    values = [fix.lat, fix.lon, fix.time, fix.speed_mps, fix.course_deg]
    if fix.altitude_m is not None:
        values.append(fix.altitude_m)
    return all(math.isfinite(v) for v in values)
