"""A simulated GPS receiver with a realistic update discipline.

The hardware receiver in the paper updates its measurement register at a
configured rate (1-5 Hz), independent of when software reads it; readers
always see the *latest completed* update.  Occasionally the hardware skips
an update — the cause of the paper's one insufficient PoA at 5 Hz in the
residential study (§VI-A3).  This class reproduces that discipline over a
continuous position source:

* updates occur at ``start_time + k / rate`` plus optional phase jitter;
* each update may be missed with probability ``miss_probability`` or by
  explicit index (``forced_miss_indices``) for scripted scenarios;
* positions carry optional zero-mean Gaussian noise;
* reads return the most recent surviving update at or before the query
  time, never the instantaneous truth.
"""

from __future__ import annotations

import math
import random
from typing import Protocol

from repro.errors import ConfigurationError, NoFixError
from repro.geo.geodesy import LocalFrame
from repro.gps.nmea import GpsFix, format_gprmc


class PositionSource(Protocol):
    """A continuous ground-truth trajectory in local-frame metres."""

    def position_at(self, t: float) -> tuple[float, float]:
        """Ground-truth ``(x, y)`` at time ``t`` (clamped to the trace)."""
        ...  # pragma: no cover - protocol


class SimulatedGpsReceiver:
    """Simulated NMEA GPS receiver over a :class:`PositionSource`.

    Args:
        source: ground-truth trajectory.
        frame: local frame used to express fixes as lat/lon.
        update_rate_hz: measurement update rate, 1-5 Hz for the paper's
            hardware (values outside that range are allowed for ablations).
        start_time: UNIX time of update 0.
        noise_std_m: per-axis Gaussian position noise.
        miss_probability: independent probability that an update is skipped.
        jitter_std_s: Gaussian jitter on each update instant (clipped to
            +-40% of the update period so updates stay ordered).
        forced_miss_indices: update indices that are always skipped.
        seed: RNG seed; the receiver is fully deterministic given it.
        rng: explicit randomness source; overrides ``seed`` so chaos runs
            can thread one seeded ``random.Random`` end to end.
        injector: optional :class:`~repro.faults.injector.FaultInjector`
            consulted once per hardware update at point
            ``"<fault_point>.update"`` — dropout bursts suppress the
            update, degradation rules add position error drawn from the
            injector's own RNG streams (the receiver's noise stream is
            untouched, so a no-fault run is bit-identical).
        fault_point: injection-point prefix this receiver reports as.
    """

    def __init__(self, source: PositionSource, frame: LocalFrame,
                 update_rate_hz: float = 5.0, start_time: float = 0.0,
                 noise_std_m: float = 0.0, miss_probability: float = 0.0,
                 jitter_std_s: float = 0.0,
                 forced_miss_indices: frozenset[int] | set[int] = frozenset(),
                 seed: int = 0, rng: random.Random | None = None,
                 injector=None, fault_point: str = "gps"):
        if update_rate_hz <= 0:
            raise ConfigurationError("update_rate_hz must be positive")
        if not 0.0 <= miss_probability < 1.0:
            raise ConfigurationError("miss_probability must be in [0, 1)")
        if noise_std_m < 0 or jitter_std_s < 0:
            raise ConfigurationError("noise/jitter std must be non-negative")
        self.source = source
        self.frame = frame
        self.update_rate_hz = float(update_rate_hz)
        self.period = 1.0 / float(update_rate_hz)
        self.start_time = float(start_time)
        self.noise_std_m = float(noise_std_m)
        self.miss_probability = float(miss_probability)
        self.jitter_std_s = float(jitter_std_s)
        self.forced_miss_indices = frozenset(forced_miss_indices)
        self._rng = rng if rng is not None else random.Random(seed)
        self._injector = injector
        self._update_point = f"{fault_point}.update"
        # Chronological list of (update_time, fix_or_None); None = missed.
        self._schedule: list[tuple[float, GpsFix | None]] = []
        self._next_index = 0
        self.updates_generated = 0
        self.updates_missed = 0
        #: Updates suppressed by an injected dropout (subset of missed).
        self.updates_fault_suppressed = 0

    # --- schedule construction ------------------------------------------

    def _nominal_time(self, index: int) -> float:
        return self.start_time + index * self.period

    def _extend_schedule(self, until: float) -> None:
        """Generate updates up to time ``until`` (inclusive of jitter slack)."""
        while self._nominal_time(self._next_index) <= until + self.period:
            index = self._next_index
            self._next_index += 1
            t = self._nominal_time(index)
            if self.jitter_std_s > 0:
                jitter = self._rng.gauss(0.0, self.jitter_std_s)
                limit = 0.4 * self.period
                t += max(-limit, min(limit, jitter))
            missed = (index in self.forced_miss_indices
                      or (self.miss_probability > 0
                          and self._rng.random() < self.miss_probability))
            fault_dx = fault_dy = 0.0
            if (self._injector is not None
                    and self._injector.active(self._update_point)):
                suppressed, fault_dx, fault_dy = self._injector.gps_update(
                    self._update_point, t)
                if suppressed and not missed:
                    self.updates_fault_suppressed += 1
                    missed = True
            if missed:
                self.updates_missed += 1
                self._schedule.append((t, None))
                continue
            self.updates_generated += 1
            self._schedule.append(
                (t, self._measure(t, fault_dx, fault_dy)))

    def _measure(self, t: float, fault_dx: float = 0.0,
                 fault_dy: float = 0.0) -> GpsFix:
        x, y = self.source.position_at(t)
        if self.noise_std_m > 0:
            x += self._rng.gauss(0.0, self.noise_std_m)
            y += self._rng.gauss(0.0, self.noise_std_m)
        x += fault_dx
        y += fault_dy
        point = self.frame.to_geo(x, y)
        speed, course = self._velocity_at(t)
        return GpsFix(lat=point.lat, lon=point.lon, time=t,
                      speed_mps=speed, course_deg=course, valid=True)

    def _velocity_at(self, t: float) -> tuple[float, float]:
        """Finite-difference speed (m/s) and course (deg true) at ``t``."""
        h = self.period / 2.0
        x0, y0 = self.source.position_at(t - h)
        x1, y1 = self.source.position_at(t + h)
        vx, vy = (x1 - x0) / (2.0 * h), (y1 - y0) / (2.0 * h)
        speed = math.hypot(vx, vy)
        course = math.degrees(math.atan2(vx, vy)) % 360.0 if speed > 1e-9 else 0.0
        return speed, course

    # --- read interface ---------------------------------------------------

    def fix_at(self, t: float) -> GpsFix | None:
        """The most recent surviving update at or before ``t`` (or None)."""
        self._extend_schedule(t)
        latest: GpsFix | None = None
        for update_time, fix in self._schedule:
            if update_time > t:
                break
            if fix is not None:
                latest = fix
        return latest

    def require_fix_at(self, t: float) -> GpsFix:
        """Like :meth:`fix_at` but raises :class:`NoFixError` when empty."""
        fix = self.fix_at(t)
        if fix is None:
            raise NoFixError(f"no GPS fix available at t={t}")
        return fix

    def sentence_at(self, t: float) -> str:
        """The latest fix rendered as a ``$GPRMC`` sentence."""
        return format_gprmc(self.require_fix_at(t))

    def next_update_after(self, t: float) -> float:
        """The time of the first update (missed or not) strictly after ``t``.

        Fix-rate samplers use this to "wait until the first measurement
        update after waking" (paper §VI-A1).
        """
        self._extend_schedule(t + 2.0 * self.period)
        for update_time, _ in self._schedule:
            if update_time > t:
                return update_time
        # Schedule extension guarantees at least one future update.
        raise AssertionError("schedule extension failed")  # pragma: no cover

    def next_fix_after(self, t: float) -> GpsFix:
        """The first *surviving* fix strictly after ``t`` (skips misses)."""
        horizon = t
        for _ in range(10_000):
            horizon += self.period
            self._extend_schedule(horizon)
            for update_time, fix in self._schedule:
                if update_time > t and fix is not None:
                    return fix
        raise NoFixError(f"no surviving GPS update after t={t}")

    def updates_between(self, t0: float, t1: float) -> list[GpsFix]:
        """All surviving fixes with update time in ``(t0, t1]``."""
        self._extend_schedule(t1)
        return [fix for update_time, fix in self._schedule
                if t0 < update_time <= t1 and fix is not None]
