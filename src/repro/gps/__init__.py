"""GPS substrate: NMEA 0183 sentences, a simulated receiver, trace replay.

Replaces the paper's Adafruit Ultimate GPS breakout.  The simulated receiver
produces $GPRMC/$GPGGA sentences at a configurable update rate (1-5 Hz) with
phase jitter, coordinate noise, and missed updates — the imperfection that
causes the paper's single insufficient PoA in the 5 Hz residential run.
"""

from repro.gps.nmea import (
    GpsFix,
    nmea_checksum,
    format_gprmc,
    format_gpgga,
    parse_sentence,
    parse_gprmc,
)
from repro.gps.receiver import SimulatedGpsReceiver, PositionSource
from repro.gps.replay import ReplaySource, WaypointSource

__all__ = [
    "GpsFix",
    "nmea_checksum",
    "format_gprmc",
    "format_gpgga",
    "parse_sentence",
    "parse_gprmc",
    "SimulatedGpsReceiver",
    "PositionSource",
    "ReplaySource",
    "WaypointSource",
]
