"""AliDrone: trustworthy Proof-of-Alibi for commercial drone compliance.

A full reproduction of the ICDCS 2018 paper, built on simulated equivalents
of the hardware substrate (ARM TrustZone / OP-TEE, NMEA GPS receiver,
Raspberry Pi cost model).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro._version import __version__
from repro.core import (
    AdaptiveSampler,
    FixRateSampler,
    GpsSample,
    NoFlyZone,
    PoaVerifier,
    ProofOfAlibi,
    SignedSample,
    Trace,
    VerificationReport,
    VerificationStatus,
    alibi_is_sufficient,
    count_insufficient_pairs,
    pair_is_sufficient,
)
from repro.drone import AliDroneClient, FlightPlan, FlightRecord
from repro.geo import GeoPoint, LocalFrame
from repro.server import AliDroneServer
from repro.sim import SimClock
from repro.tee import TrustZoneDevice, provision_device
from repro.units import FAA_MAX_SPEED_MPS

__all__ = [
    "__version__",
    "AdaptiveSampler",
    "FixRateSampler",
    "GpsSample",
    "NoFlyZone",
    "PoaVerifier",
    "ProofOfAlibi",
    "SignedSample",
    "Trace",
    "VerificationReport",
    "VerificationStatus",
    "alibi_is_sufficient",
    "count_insufficient_pairs",
    "pair_is_sufficient",
    "AliDroneClient",
    "FlightPlan",
    "FlightRecord",
    "GeoPoint",
    "LocalFrame",
    "AliDroneServer",
    "SimClock",
    "TrustZoneDevice",
    "provision_device",
    "FAA_MAX_SPEED_MPS",
]
