"""Randomized scenario generation for stress tests and property tests.

Generates a random field of NFZs and a drone flight that legally crosses
it (planned with the visibility-graph router), so tests can assert the
whole pipeline on arbitrary geometry, not just the two field studies.
"""

from __future__ import annotations

import math
import random

from repro.core.nfz import NoFlyZone
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.drone.routing import RouteError, plan_route
from repro.errors import ConfigurationError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.scenario import Scenario


def build_random_scenario(seed: int = 0, n_zones: int = 12,
                          area_m: float = 2_000.0,
                          zone_radius_range: tuple[float, float] = (15.0, 80.0),
                          clearance_m: float = 40.0,
                          origin: GeoPoint = GeoPoint(40.2000, -88.3000),
                          max_attempts: int = 50) -> Scenario:
    """A random NFZ field plus a compliant drone flight across it.

    The start/goal sit on opposite edges of the square area; zones are
    rejected if they swallow an endpoint.  Raises
    :class:`ConfigurationError` if no routable layout is found within
    ``max_attempts`` re-rolls (dense layouts with large zones can wall the
    area off).
    """
    rng = random.Random(seed)
    frame = LocalFrame(origin)
    start = (0.0, area_m / 2.0)
    goal = (area_m, area_m / 2.0)

    for _ in range(max_attempts):
        zones: list[NoFlyZone] = []
        while len(zones) < n_zones:
            r = rng.uniform(*zone_radius_range)
            x = rng.uniform(0.15 * area_m, 0.85 * area_m)
            y = rng.uniform(0.1 * area_m, 0.9 * area_m)
            if (math.dist((x, y), start) < r + clearance_m + 10.0
                    or math.dist((x, y), goal) < r + clearance_m + 10.0):
                continue
            center = frame.to_geo(x, y)
            zones.append(NoFlyZone(center.lat, center.lon, r))
        try:
            route = plan_route(start, goal, zones, frame,
                               clearance_m=clearance_m)
        except RouteError:
            continue
        t0 = DEFAULT_EPOCH
        source = simulate_waypoint_flight(route, t0,
                                          kinematics=DroneKinematics())
        return Scenario(
            name=f"random-{seed}",
            description=(f"{n_zones} random NFZs in a {area_m:.0f} m square "
                         f"with a planned compliant crossing"),
            frame=frame,
            zones=zones,
            source=source,
            t_start=t0,
            t_end=t0 + source.duration,
            gps_noise_std_m=1.0,
        )
    raise ConfigurationError(
        f"no routable random scenario found in {max_attempts} attempts")


def build_violation_scenario(seed: int = 0, area_m: float = 2_000.0,
                             zone_radius_m: float = 120.0,
                             origin: GeoPoint = GeoPoint(40.2000, -88.3000),
                             ) -> Scenario:
    """A *non-compliant* flight: straight through the middle of an NFZ.

    The drone crosses the area on a straight line that passes directly
    over a zone centred on the midpoint, so a correct Auditor must never
    accept this flight's PoA.  Used by the chaos harness to assert the
    zero-false-accept invariant under every fault plan.
    """
    frame = LocalFrame(origin)
    mid = (area_m / 2.0, area_m / 2.0)
    start = (0.0, area_m / 2.0)
    goal = (area_m, area_m / 2.0)
    center = frame.to_geo(*mid)
    zones = [NoFlyZone(center.lat, center.lon, zone_radius_m)]
    t0 = DEFAULT_EPOCH
    source = simulate_waypoint_flight([start, mid, goal], t0,
                                      kinematics=DroneKinematics())
    return Scenario(
        name=f"violation-{seed}",
        description=(f"straight crossing through a {zone_radius_m:.0f} m NFZ "
                     f"at the centre of a {area_m:.0f} m square"),
        frame=frame,
        zones=zones,
        source=source,
        t_start=t0,
        t_end=t0 + source.duration,
        gps_noise_std_m=1.0,
    )


def build_violation_variants(seed: int = 0, area_m: float = 2_000.0,
                             zone_radius_m: float = 120.0,
                             origin: GeoPoint = GeoPoint(40.2000, -88.3000),
                             t0_offset_s: float = 86_400.0,
                             ) -> list[Scenario]:
    """Three distinct NFZ-incursion geometries for the attack matrix.

    All cross the single zone, but along different paths: straight
    through the centre, diagonally across, and clipping an edge chord.
    The flights start ``t0_offset_s`` after :data:`DEFAULT_EPOCH` so a
    PoA replayed from an earlier (epoch-time) flight cannot share the
    violation's claimed window — the replay must be caught by the
    covering check, exactly as in a real cross-flight replay.
    """
    frame = LocalFrame(origin)
    mid = (area_m / 2.0, area_m / 2.0)
    center = frame.to_geo(*mid)
    zones = [NoFlyZone(center.lat, center.lon, zone_radius_m)]
    t0 = DEFAULT_EPOCH + t0_offset_s
    clip_y = area_m / 2.0 + 0.6 * zone_radius_m
    routes = {
        "straight": [(0.0, area_m / 2.0), mid, (area_m, area_m / 2.0)],
        "diagonal": [(0.0, 0.2 * area_m), mid, (area_m, 0.8 * area_m)],
        "edge-clip": [(0.0, clip_y), (area_m, clip_y)],
    }
    variants = []
    for label, route in routes.items():
        source = simulate_waypoint_flight(route, t0,
                                          kinematics=DroneKinematics())
        variants.append(Scenario(
            name=f"violation-{label}-{seed}",
            description=(f"{label} incursion through a {zone_radius_m:.0f} m "
                         f"NFZ in a {area_m:.0f} m square"),
            frame=frame,
            zones=zones,
            source=source,
            t_start=t0,
            t_end=t0 + source.duration,
            gps_noise_std_m=1.0,
        ))
    return variants
