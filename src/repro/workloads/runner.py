"""Run a sampling policy over a scenario through the full real pipeline.

Every run provisions a TrustZone device (real keys, real TA, real sealed
storage), attaches a fresh receiver, and drives either sampler through the
Adapter.  Nothing on the measured path is stubbed; the only modelled
quantity is per-operation *cost* (see :mod:`repro.perf`), because this
machine is not a Raspberry Pi.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.sampling import AdaptiveSampler, FixRateSampler, SamplingResult
from repro.crypto.schemes import SCHEME_RSA
from repro.drone.adapter import Adapter
from repro.errors import ConfigurationError
from repro.gps.receiver import SimulatedGpsReceiver
from repro.obs.trace import get_tracer
from repro.sim.clock import SimClock
from repro.tee.attestation import TrustZoneDevice, provision_device
from repro.units import FAA_MAX_SPEED_MPS
from repro.workloads.scenario import Scenario


@dataclass
class PolicyRun:
    """One policy execution over a scenario, with its platform objects."""

    scenario: Scenario
    policy_label: str
    key_bits: int
    result: SamplingResult
    device: TrustZoneDevice
    receiver: SimulatedGpsReceiver

    @property
    def sample_count(self) -> int:
        """Authenticated samples taken."""
        return self.result.stats.auth_samples

    @property
    def sample_times(self) -> list[float]:
        """Instants at which authenticated samples were taken."""
        return list(self.result.stats.sample_times)


def provision_run_device(key_bits: int, seed: int) -> TrustZoneDevice:
    """A deterministic TrustZone device for workload runs."""
    return provision_device(f"workload-dev-{key_bits}-{seed}",
                            key_bits=key_bits, rng=random.Random(seed))


def run_policy(scenario: Scenario, policy: str,
               fixed_rate_hz: float | None = None, *,
               update_rate_hz: float = 5.0, key_bits: int = 1024,
               seed: int = 0, hash_name: str = "sha1",
               margin_updates: float = 2.0,
               vmax_mps: float = FAA_MAX_SPEED_MPS,
               device: TrustZoneDevice | None = None,
               use_index: bool = True,
               degraded_mode: bool = False,
               injector=None,
               tee_retry_policy=None,
               scheme: str = SCHEME_RSA) -> PolicyRun:
    """Execute one sampling policy over ``scenario``.

    Args:
        policy: ``"adaptive"`` or ``"fixed"``.
        fixed_rate_hz: sampler wake rate for the fixed policy.
        update_rate_hz: GPS receiver update rate (paper hardware: 1-5 Hz).
        key_bits: TEE sign key size.
        seed: seeds device provisioning and receiver randomness.
        device: reuse an already provisioned device (it must not have a
            GPS attached yet).
        use_index: adaptive policy only — drive the per-update zone scan
            through the spatial index (decisions are identical either way).
        degraded_mode: adaptive policy only — inflate the safety margin
            across GPS dropout gaps (see the sampler docstring).
        injector: optional fault injector wired into the receiver
            (``gps.update``) and the device's secure monitor (``tee.smc``).
        tee_retry_policy: retry transient TEE entry failures inside the
            adapter (required for flights to survive ``tee.smc`` faults).
        scheme: sample-authentication scheme id; the resulting PoA is
            sealed with the flight finalizer for flight-level schemes.
    """
    clock = SimClock(scenario.t_start)
    receiver = scenario.make_receiver(update_rate_hz=update_rate_hz,
                                      seed=seed, injector=injector)
    if device is None:
        device = provision_run_device(key_bits, seed)
    device.attach_gps(receiver, clock)
    if injector is not None:
        device.monitor.attach_injector(injector)
    adapter = Adapter(device, receiver, clock, hash_name=hash_name,
                      retry_policy=tee_retry_policy,
                      retry_rng=random.Random(seed),
                      scheme=scheme, chain_seed=seed)

    if policy == "adaptive":
        sampler = AdaptiveSampler(scenario.zones, scenario.frame,
                                  vmax_mps=vmax_mps,
                                  gps_rate_hz=update_rate_hz,
                                  margin_updates=margin_updates,
                                  use_index=use_index,
                                  degraded_mode=degraded_mode)
        label = "adaptive"
    elif policy == "fixed":
        if fixed_rate_hz is None:
            raise ConfigurationError("fixed policy requires fixed_rate_hz")
        sampler = FixRateSampler(fixed_rate_hz)
        label = f"fixed-{fixed_rate_hz:g}hz"
    else:
        raise ConfigurationError(f"unknown policy {policy!r}")

    with get_tracer().span("flight", policy=label, key_bits=key_bits,
                           scenario=scenario.description) as span:
        adapter.start()
        try:
            result = sampler.run(adapter, scenario.t_end)
            finalizer = adapter.finalize_flight()
        finally:
            adapter.stop()
        if finalizer:
            result.poa.seal(finalizer)
        span.set_attribute("auth_samples", result.stats.auth_samples)
    return PolicyRun(scenario=scenario, policy_label=label,
                     key_bits=key_bits, result=result,
                     device=device, receiver=receiver)
