"""The scenario container shared by all workloads."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.nfz import NoFlyZone
from repro.errors import ConfigurationError
from repro.geo.geodesy import LocalFrame
from repro.gps.receiver import SimulatedGpsReceiver
from repro.gps.replay import WaypointSource


@dataclass
class Scenario:
    """A reproducible workload: trajectory, zones, and receiver settings.

    Attributes:
        name: short identifier (used in benchmark output).
        description: one-line human description.
        frame: the local planar frame the zones/trajectory live in.
        zones: the no-fly-zones in force.
        source: the ground-truth trajectory.
        t_start, t_end: the observation window.
        gps_noise_std_m: receiver position noise.
        gps_miss_probability: random update-miss probability.
        forced_miss_times: instants whose *enclosing update slot* is
            always missed (scripted hardware hiccups — rate-independent).
    """

    name: str
    description: str
    frame: LocalFrame
    zones: list[NoFlyZone]
    source: WaypointSource
    t_start: float
    t_end: float
    gps_noise_std_m: float = 0.0
    gps_miss_probability: float = 0.0
    forced_miss_times: tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ConfigurationError("scenario window must be positive")

    @property
    def duration(self) -> float:
        """Observation window length in seconds."""
        return self.t_end - self.t_start

    def make_receiver(self, update_rate_hz: float = 5.0,
                      seed: int = 0, injector=None) -> SimulatedGpsReceiver:
        """A fresh receiver for one run (receivers are stateful).

        ``injector`` opts the receiver into fault injection at
        ``gps.update`` (dropout bursts, fix degradation); None — the
        default — leaves the receiver fault-free.
        """
        forced = frozenset(
            int(round((t - self.t_start) * update_rate_hz))
            for t in self.forced_miss_times)
        return SimulatedGpsReceiver(
            source=self.source, frame=self.frame,
            update_rate_hz=update_rate_hz, start_time=self.t_start,
            noise_std_m=self.gps_noise_std_m,
            miss_probability=self.gps_miss_probability,
            forced_miss_indices=forced, seed=seed, injector=injector)
