"""GeoJSON export of scenarios and flight traces.

Every scenario (zones + ground-truth track) and every PoA trace can be
dumped as a GeoJSON FeatureCollection for inspection in standard GIS
tooling (geojson.io, QGIS, Leaflet).  Zones are exported both as their
centre points (with a ``radius_m`` property — GeoJSON has no native
circle) and as 64-gon polygon approximations for direct rendering.
"""

from __future__ import annotations

import json
import math
from typing import Sequence

from repro.core.nfz import NoFlyZone
from repro.core.samples import GpsSample
from repro.geo.geodesy import LocalFrame
from repro.workloads.scenario import Scenario


def _zone_polygon(zone: NoFlyZone, frame: LocalFrame,
                  segments: int = 64) -> list[list[float]]:
    cx, cy = frame.to_local(zone.center)
    ring = []
    for k in range(segments + 1):
        angle = 2.0 * math.pi * k / segments
        point = frame.to_geo(cx + zone.radius_m * math.cos(angle),
                             cy + zone.radius_m * math.sin(angle))
        ring.append([round(point.lon, 7), round(point.lat, 7)])
    return ring


def zones_to_features(zones: Sequence[NoFlyZone],
                      frame: LocalFrame) -> list[dict]:
    """One point feature and one polygon feature per zone."""
    features = []
    for index, zone in enumerate(zones):
        features.append({
            "type": "Feature",
            "properties": {"kind": "nfz-center", "index": index,
                           "radius_m": zone.radius_m},
            "geometry": {"type": "Point",
                         "coordinates": [round(zone.lon, 7),
                                         round(zone.lat, 7)]},
        })
        features.append({
            "type": "Feature",
            "properties": {"kind": "nfz-footprint", "index": index},
            "geometry": {"type": "Polygon",
                         "coordinates": [_zone_polygon(zone, frame)]},
        })
    return features


def track_to_feature(scenario: Scenario, step_s: float = 1.0) -> dict:
    """The ground-truth trajectory as a LineString feature."""
    coordinates = []
    t = scenario.t_start
    while t <= scenario.t_end + 1e-9:
        x, y = scenario.source.position_at(t)
        point = scenario.frame.to_geo(x, y)
        coordinates.append([round(point.lon, 7), round(point.lat, 7)])
        t += step_s
    return {
        "type": "Feature",
        "properties": {"kind": "ground-truth-track",
                       "name": scenario.name,
                       "duration_s": scenario.duration},
        "geometry": {"type": "LineString", "coordinates": coordinates},
    }


def samples_to_feature(samples: Sequence[GpsSample],
                       label: str = "poa-samples") -> dict:
    """Authenticated PoA samples as a MultiPoint feature with timestamps."""
    return {
        "type": "Feature",
        "properties": {"kind": label,
                       "timestamps": [round(s.t, 3) for s in samples]},
        "geometry": {"type": "MultiPoint",
                     "coordinates": [[round(s.lon, 7), round(s.lat, 7)]
                                     for s in samples]},
    }


def scenario_to_geojson(scenario: Scenario,
                        poa_samples: Sequence[GpsSample] = (),
                        track_step_s: float = 1.0) -> dict:
    """The full scenario as a GeoJSON FeatureCollection (as a dict)."""
    features = zones_to_features(scenario.zones, scenario.frame)
    features.append(track_to_feature(scenario, step_s=track_step_s))
    if poa_samples:
        features.append(samples_to_feature(list(poa_samples)))
    return {"type": "FeatureCollection",
            "properties": {"name": scenario.name,
                           "description": scenario.description},
            "features": features}


def scenario_to_geojson_str(scenario: Scenario,
                            poa_samples: Sequence[GpsSample] = (),
                            **kwargs) -> str:
    """JSON-serialized form of :func:`scenario_to_geojson`."""
    return json.dumps(scenario_to_geojson(scenario, poa_samples, **kwargs))
