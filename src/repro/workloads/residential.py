"""The residential field study (paper §VI-A3, Fig. 7/8).

A ~1-mile drive through a county neighbourhood in ~160 seconds.  94 houses
along the route are registered as NFZs of 20 ft radius.  The first stretch
is sparser (nearest boundary 50-100 ft); the later stretch is dense
(20-70 ft) with a closest approach of 21 ft.  One scripted GPS-update miss
occurs while passing a house at ~25 ft — the cause of the paper's single
insufficient PoA in the 5 Hz and adaptive runs.
"""

from __future__ import annotations

import math
import random

from repro.core.nfz import NoFlyZone
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import feet_to_meters
from repro.workloads.scenario import Scenario

#: "Every NFZ is represented by a circle ... with a radius of 20 feet."
HOUSE_NFZ_RADIUS_M = feet_to_meters(20.0)
#: "In total, 94 NFZs are identified in this area."
HOUSE_COUNT = 94
#: Fig. 8's time axis runs to ~160 s.
DRIVE_DURATION_S = 160.0

Point = tuple[float, float]

# Route: an east-north-east dogleg through the neighbourhood, ~1 mile.
_ROUTE: tuple[Point, ...] = ((0.0, 0.0), (600.0, 0.0), (600.0, 300.0),
                             (1300.0, 300.0))

# (leg index, sparse?) — leg 0 is the sparser stretch, legs 1-2 are dense.
_LEG_DENSITY = (True, False, False)


def _route_length(route: tuple[Point, ...]) -> float:
    return sum(math.dist(a, b) for a, b in zip(route, route[1:]))


def _point_along(route: tuple[Point, ...], s: float) -> tuple[Point, Point]:
    """Position and unit tangent at arclength ``s`` (clamped)."""
    remaining = max(0.0, s)
    for a, b in zip(route, route[1:]):
        leg = math.dist(a, b)
        if remaining <= leg or (a, b) == (route[-2], route[-1]):
            alpha = min(1.0, remaining / leg)
            tangent = ((b[0] - a[0]) / leg, (b[1] - a[1]) / leg)
            return ((a[0] + alpha * (b[0] - a[0]),
                     a[1] + alpha * (b[1] - a[1])), tangent)
        remaining -= leg
    raise AssertionError("unreachable")  # pragma: no cover


def _corner_arclengths(route: tuple[Point, ...]) -> list[float]:
    lengths = []
    total = 0.0
    for a, b in zip(route, route[1:]):
        total += math.dist(a, b)
        lengths.append(total)
    return lengths[:-1]  # interior corners only


def _speed_at(s: float, corners: list[float], base: float) -> float:
    """Cruise speed with slowdowns within 40 m of each corner."""
    speed = base
    for corner in corners:
        d = abs(s - corner)
        if d < 40.0:
            speed = min(speed, 3.5 + (base - 3.5) * d / 40.0)
    return speed


def _build_trajectory(t0: float, base_speed: float) -> WaypointSource:
    corners = _corner_arclengths(_ROUTE)
    total = _route_length(_ROUTE)
    waypoints = []
    s, t = 0.0, 0.0
    step = 0.25
    while s < total:
        (x, y), _ = _point_along(_ROUTE, s)
        waypoints.append((t0 + t, x, y))
        s += _speed_at(s, corners, base_speed) * step
        t += step
    (x, y), _ = _point_along(_ROUTE, total)
    waypoints.append((t0 + t, x, y))
    return WaypointSource(waypoints)


def _place_houses(rng: random.Random) -> list[Point]:
    """House centres along the route, sparse first then dense."""
    houses: list[Point] = []
    for leg_index, (a, b) in enumerate(zip(_ROUTE, _ROUTE[1:])):
        leg = math.dist(a, b)
        tangent = ((b[0] - a[0]) / leg, (b[1] - a[1]) / leg)
        normal = (-tangent[1], tangent[0])
        sparse = _LEG_DENSITY[leg_index]
        spacing_range = (46.0, 64.0) if sparse else (26.0, 40.0)
        setback_range = (21.0, 32.0) if sparse else (17.0, 26.5)
        s = rng.uniform(*spacing_range) / 2.0
        side = 1.0
        while s < leg - 10.0:
            setback = rng.uniform(*setback_range)
            x = a[0] + s * tangent[0] + side * setback * normal[0]
            y = a[1] + s * tangent[1] + side * setback * normal[1]
            houses.append((x, y))
            side = -side
            s += rng.uniform(*spacing_range) / 2.0
    return houses


def build_residential_scenario(seed: int = 0,
                               origin: GeoPoint = GeoPoint(40.0800, -88.2200),
                               ) -> Scenario:
    """Synthesize the residential scenario with its 94 house NFZs."""
    rng = random.Random(seed)
    frame = LocalFrame(origin)
    t0 = DEFAULT_EPOCH

    total = _route_length(_ROUTE)
    base_speed = total / (DRIVE_DURATION_S - 14.0)  # corners cost ~14 s
    source = _build_trajectory(t0, base_speed)

    houses = _place_houses(rng)
    # A handful of close-in houses in the dense stretch create Fig. 8(a)'s
    # 20-70 ft dips, including the 21 ft closest approach and the ~25 ft
    # house where the scripted GPS miss happens.
    close_setbacks = [
        (820.0, feet_to_meters(21.0) + HOUSE_NFZ_RADIUS_M),   # closest point
        (980.0, feet_to_meters(25.0) + HOUSE_NFZ_RADIUS_M),   # missed update
        (700.0, feet_to_meters(33.0) + HOUSE_NFZ_RADIUS_M),
        (1130.0, feet_to_meters(28.0) + HOUSE_NFZ_RADIUS_M),
        (1480.0, feet_to_meters(30.0) + HOUSE_NFZ_RADIUS_M),
    ]
    for s_pos, distance in close_setbacks:
        (point, tangent) = _point_along(_ROUTE, s_pos)
        normal = (-tangent[1], tangent[0])
        houses.append((point[0] + distance * normal[0],
                       point[1] + distance * normal[1]))

    # Trim or pad to exactly the paper's 94 zones.
    while len(houses) > HOUSE_COUNT:
        houses.pop(rng.randrange(len(houses) - len(close_setbacks)))
    pad_s = 60.0
    while len(houses) < HOUSE_COUNT:
        (point, tangent) = _point_along(_ROUTE, pad_s)
        normal = (-tangent[1], tangent[0])
        setback = rng.uniform(17.0, 26.0)
        houses.append((point[0] - setback * normal[0],
                       point[1] - setback * normal[1]))
        pad_s += 110.0

    zones = []
    for x, y in houses:
        center = frame.to_geo(x, y)
        zones.append(NoFlyZone(center.lat, center.lon, HOUSE_NFZ_RADIUS_M))

    scenario = Scenario(
        name="residential",
        description=("94 house NFZs (r = 20 ft) along a ~1 mile drive in "
                     "~160 s; sparse then dense neighbourhood"),
        frame=frame,
        zones=zones,
        source=source,
        t_start=t0,
        t_end=t0 + DRIVE_DURATION_S,
        gps_noise_std_m=0.8,
    )
    # Script the hardware miss at the closest approach to the ~25 ft house.
    miss_time = _closest_approach_time(scenario, _house_near(scenario, 980.0))
    scenario.forced_miss_times = (miss_time,)
    return scenario


def _house_near(scenario: Scenario, s_pos: float) -> Point:
    """The house centre nearest the route point at arclength ``s_pos``."""
    (point, _) = _point_along(_ROUTE, s_pos)
    best = None
    best_d = math.inf
    for zone in scenario.zones:
        x, y = scenario.frame.to_local(zone.center)
        d = math.dist((x, y), point)
        if d < best_d:
            best, best_d = (x, y), d
    assert best is not None
    return best


def _closest_approach_time(scenario: Scenario, house: Point) -> float:
    """When the trajectory passes closest to ``house``."""
    best_t = scenario.t_start
    best_d = math.inf
    t = scenario.t_start
    while t <= scenario.t_end:
        x, y = scenario.source.position_at(t)
        d = math.dist((x, y), house)
        if d < best_d:
            best_d, best_t = d, t
        t += 0.2
    return best_t
