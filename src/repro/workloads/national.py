"""National-scale NFZ workload: thousands of zones around one corridor.

The field studies carry 1 and 94 zones; the ROADMAP's north star (heavy
traffic, Remote-ID-scale deployments) implies zone databases of 10^3-10^5
entries.  This builder synthesizes that regime: a long straight flight
corridor with a dense field of randomly placed, non-overlapping circular
NFZs packed on both sides of it.  The corridor keeps a guaranteed
clearance, so the straight flight is compliant by construction and every
layer (sampler, verifier, audit engine) can be exercised at scale without
hand-placing geometry.

Placement uses the same :class:`~repro.geo.spatial_index.GridIndex` the
query path uses, so generating a 10k-zone field is itself near-linear
rather than O(n^2) pairwise rejection.
"""

from __future__ import annotations

import math
import random

from repro.core.nfz import NoFlyZone
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.errors import ConfigurationError
from repro.geo.circle import Circle
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.geo.spatial_index import GridIndex
from repro.sim.clock import DEFAULT_EPOCH
from repro.workloads.scenario import Scenario

#: Fraction of the band area the packed zones may occupy.  Random
#: sequential packing stalls well below ~0.55; 0.2 keeps rejection rates
#: low while still producing a visually dense field.
_FILL_FRACTION = 0.2

#: Geographic anchor: middle of the contiguous US, away from both poles
#: so the equirectangular frame stays well-conditioned.
DEFAULT_ORIGIN = GeoPoint(39.5000, -98.3500)


def build_national_zone_field(n_zones: int, frame: LocalFrame, *,
                              seed: int = 0,
                              corridor_length_m: float = 20_000.0,
                              corridor_clearance_m: float = 60.0,
                              zone_radius_range: tuple[float, float]
                              = (20.0, 120.0),
                              gap_m: float = 10.0,
                              max_attempts_per_zone: int = 200,
                              ) -> list[NoFlyZone]:
    """A dense, non-overlapping NFZ field flanking the x-axis corridor.

    Zones are sampled uniformly over a band ``[0, corridor_length_m] x
    [-H, H]`` whose halfwidth ``H`` is auto-scaled so the requested count
    fits at :data:`_FILL_FRACTION` packing density.  A candidate is
    rejected when it comes within ``corridor_clearance_m`` of the corridor
    centerline (the y = 0 flight path stays compliant) or within ``gap_m``
    of an already-placed zone.

    Raises:
        ConfigurationError: the layout could not be packed within
            ``n_zones * max_attempts_per_zone`` draws.
    """
    if n_zones < 0:
        raise ConfigurationError("n_zones must be non-negative")
    r_lo, r_hi = zone_radius_range
    if not 0 < r_lo <= r_hi:
        raise ConfigurationError("zone_radius_range must be 0 < lo <= hi")
    rng = random.Random(seed)
    mean_r = (r_lo + r_hi) / 2.0
    min_halfwidth = corridor_clearance_m + r_hi + gap_m
    packed_halfwidth = (n_zones * math.pi * mean_r * mean_r
                        / (_FILL_FRACTION * 2.0 * corridor_length_m))
    halfwidth = max(min_halfwidth, packed_halfwidth)

    occupancy: GridIndex[int] = GridIndex(
        cell_size=max(2.0 * r_hi + gap_m, 50.0))
    zones: list[NoFlyZone] = []
    budget = n_zones * max_attempts_per_zone
    while len(zones) < n_zones and budget > 0:
        budget -= 1
        r = rng.uniform(r_lo, r_hi)
        x = rng.uniform(0.0, corridor_length_m)
        y = rng.uniform(-halfwidth, halfwidth)
        if abs(y) < r + corridor_clearance_m:
            continue  # would encroach on the flight corridor
        reach = r + r_hi + gap_m
        conflict = False
        for key in occupancy.query_rect(x - reach, y - reach,
                                        x + reach, y + reach):
            other = occupancy.get(key)
            if math.hypot(x - other.x, y - other.y) < r + other.r + gap_m:
                conflict = True
                break
        if conflict:
            continue
        occupancy.insert(len(zones), Circle(x, y, r))
        center = frame.to_geo(x, y)
        zones.append(NoFlyZone(center.lat, center.lon, r))
    if len(zones) < n_zones:
        raise ConfigurationError(
            f"packed only {len(zones)} of {n_zones} zones in "
            f"{n_zones * max_attempts_per_zone} draws — widen the band or "
            "shrink the radii")
    return zones


def build_national_scenario(seed: int = 0, n_zones: int = 1_000,
                            corridor_length_m: float = 20_000.0,
                            corridor_clearance_m: float = 60.0,
                            zone_radius_range: tuple[float, float]
                            = (20.0, 120.0),
                            origin: GeoPoint = DEFAULT_ORIGIN) -> Scenario:
    """A straight compliant flight through a national-scale zone field.

    The trajectory flies the corridor centerline end to end; by the field
    builder's construction every zone keeps ``corridor_clearance_m`` of
    lateral clearance, so an honest replay is accepted while the sampler
    and verifier still brush past thousands of near-corridor zones.
    """
    frame = LocalFrame(origin)
    zones = build_national_zone_field(
        n_zones, frame, seed=seed,
        corridor_length_m=corridor_length_m,
        corridor_clearance_m=corridor_clearance_m,
        zone_radius_range=zone_radius_range)
    t0 = DEFAULT_EPOCH
    source = simulate_waypoint_flight(
        [(0.0, 0.0), (corridor_length_m, 0.0)], t0,
        kinematics=DroneKinematics())
    return Scenario(
        name=f"national-{n_zones}",
        description=(f"{n_zones} packed NFZs along a "
                     f"{corridor_length_m / 1000.0:.0f} km corridor with "
                     f"{corridor_clearance_m:.0f} m guaranteed clearance"),
        frame=frame,
        zones=zones,
        source=source,
        t_start=t0,
        t_end=t0 + source.duration,
        gps_noise_std_m=1.0,
    )
