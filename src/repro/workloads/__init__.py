"""Workloads: synthetic equivalents of the paper's field studies.

The paper collected vehicle GPS traces around a real county; those traces
are not published, so each scenario builder synthesizes a trace matched to
every quantitative detail §VI reports (distances, durations, zone counts
and radii, closest approaches) and replays it through the real pipeline.
"""

from repro.workloads.scenario import Scenario
from repro.workloads.runner import run_policy, PolicyRun, provision_run_device
from repro.workloads.airport import build_airport_scenario
from repro.workloads.residential import build_residential_scenario
from repro.workloads.synthetic import (
    build_random_scenario,
    build_violation_scenario,
    build_violation_variants,
)
from repro.workloads.national import (
    build_national_scenario,
    build_national_zone_field,
)
from repro.workloads.fleet import (
    FleetArrival,
    FleetDrone,
    build_flight_submission,
    poisson_arrivals,
    provision_fleet,
)

__all__ = [
    "Scenario",
    "run_policy",
    "PolicyRun",
    "provision_run_device",
    "build_airport_scenario",
    "build_residential_scenario",
    "build_random_scenario",
    "build_violation_scenario",
    "build_violation_variants",
    "build_national_scenario",
    "build_national_zone_field",
    "FleetArrival",
    "FleetDrone",
    "build_flight_submission",
    "poisson_arrivals",
    "provision_fleet",
]
