"""Poisson fleet arrivals: sustained submission traffic for the service.

The field-study scenarios model *one* flight in detail; the auditor
service needs the opposite — many drones, each contributing small honest
flights, arriving as a memoryless stream.  This module builds that
workload deterministically:

* :func:`provision_fleet` — generate per-drone TEE/operator keypairs and
  register them against any auditor (a callback, so the same fleet drives
  :class:`repro.server.service.AuditorService`,
  :class:`repro.server.auditor.AliDroneServer`, or a bare key table).
* :func:`build_flight_submission` — one signed, encrypted PoA submission
  for a drone: a short straight traverse well clear of the zone set, so
  every honest submission verifies ACCEPTED.
* :func:`poisson_arrivals` — exponential inter-arrival times at a target
  rate over a duration, drones drawn uniformly, flight ids unique per
  (drone, flight) so re-used trace records stay distinct submissions.

Everything derives from explicit seeds; two calls with the same
parameters produce byte-identical submissions and identical arrival
instants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.poa import ProofOfAlibi, SignedSample, encrypt_poa
from repro.core.protocol import PoaSubmission
from repro.core.samples import GpsSample
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.crypto.schemes import SCHEME_RSA, authenticate_payloads
from repro.geo.geodesy import LocalFrame
from repro.sim.clock import DEFAULT_EPOCH

#: Fleet traces start this far east of the frame origin — far outside the
#: default 50 m zone disk at the origin, so honest flights stay honest.
TRACE_OFFSET_M = 300.0


@dataclass(frozen=True)
class FleetDrone:
    """One provisioned fleet member."""

    drone_id: str
    tee_key: RsaPrivateKey
    operator_key: RsaPrivateKey
    region: str


@dataclass(frozen=True)
class FleetArrival:
    """One Poisson arrival: a submission hitting intake at ``at``."""

    at: float
    submission: PoaSubmission
    region: str


def provision_fleet(register: Callable[[RsaPublicKey, RsaPublicKey, str], str],
                    *, drones: int, key_bits: int = 512, seed: int = 0,
                    regions: int = 4) -> list[FleetDrone]:
    """Generate and register a fleet; returns the provisioned members.

    ``register(operator_public, tee_public, name) -> drone_id`` abstracts
    the auditor: wrap whichever registration API the target exposes.
    Drones are spread round-robin over ``regions`` zone-regions named
    ``region-<i>`` (the shard layer's primary partition key).
    """
    fleet = []
    for i in range(drones):
        tee_key = generate_rsa_keypair(key_bits,
                                       rng=random.Random(seed * 100_003 + i))
        operator_key = generate_rsa_keypair(
            key_bits, rng=random.Random(seed * 100_003 + 50_000 + i))
        drone_id = register(operator_key.public_key, tee_key.public_key,
                            f"fleet-op-{i}")
        fleet.append(FleetDrone(drone_id=drone_id, tee_key=tee_key,
                                operator_key=operator_key,
                                region=f"region-{i % max(1, regions)}"))
    return fleet


def build_flight_submission(drone: FleetDrone,
                            encryption_public_key: RsaPublicKey, *,
                            frame: LocalFrame, flight_index: int,
                            samples: int, start: float,
                            rng: random.Random,
                            hash_name: str = "sha1",
                            scheme: str = SCHEME_RSA) -> PoaSubmission:
    """One honest signed + encrypted submission for a fleet drone.

    The trace is a 1 Hz straight traverse starting ``TRACE_OFFSET_M``
    east of the frame origin, jittered per flight; with the default zone
    layouts (a disk at the origin) it verifies ACCEPTED.  ``scheme``
    selects the sample-authentication backend, so the same fleet can
    exercise per-sample RSA, batch, chained, or Merkle intake.
    """
    payloads = []
    y0 = rng.uniform(-40.0, 40.0)
    for k in range(samples):
        point = frame.to_geo(TRACE_OFFSET_M + 15.0 * k
                             + rng.uniform(0.0, 4.0), y0)
        sample = GpsSample(lat=point.lat, lon=point.lon, t=start + k)
        payloads.append(sample.to_signed_payload())
    blobs, finalizer = authenticate_payloads(drone.tee_key, payloads,
                                             scheme, hash_name=hash_name,
                                             rng=rng)
    poa = ProofOfAlibi(
        (SignedSample(payload=payload, signature=blob, scheme=scheme)
         for payload, blob in zip(payloads, blobs)),
        scheme=scheme, finalizer=finalizer)
    records = encrypt_poa(poa, encryption_public_key, rng=rng)
    return PoaSubmission(
        drone_id=drone.drone_id,
        flight_id=f"flight-{drone.drone_id}-{flight_index}",
        records=records, claimed_start=start,
        claimed_end=start + max(samples - 1, 0),
        scheme=scheme, finalizer=finalizer)


def build_violation_submission(drone: FleetDrone,
                               encryption_public_key: RsaPublicKey, *,
                               frame: LocalFrame, flight_index: int,
                               samples: int, start: float,
                               rng: random.Random,
                               hash_name: str = "sha1",
                               scheme: str = SCHEME_RSA) -> PoaSubmission:
    """A *genuinely violating* signed + encrypted submission.

    The trace is a truthfully-signed 1 Hz traverse straight through the
    frame origin — i.e. through the default zone disk — so the TEE
    attests exactly what the drone flew and the drone flew through the
    NFZ.  Accepting this submission as a clean alibi would be a false
    accept: the fleet invariant suite uses it as the ground-truth
    "incursion" attack class (the auditor must return anything *but*
    ACCEPTED — with full coverage the verdict is an infeasible/violation
    rejection, and never a clean alibi).
    """
    payloads = []
    y0 = rng.uniform(-10.0, 10.0)
    half = max(samples - 1, 1) / 2.0
    for k in range(samples):
        # Walk east through the origin: x sweeps roughly [-15*half, 15*half].
        point = frame.to_geo(15.0 * (k - half) + rng.uniform(0.0, 4.0), y0)
        sample = GpsSample(lat=point.lat, lon=point.lon, t=start + k)
        payloads.append(sample.to_signed_payload())
    blobs, finalizer = authenticate_payloads(drone.tee_key, payloads,
                                             scheme, hash_name=hash_name,
                                             rng=rng)
    poa = ProofOfAlibi(
        (SignedSample(payload=payload, signature=blob, scheme=scheme)
         for payload, blob in zip(payloads, blobs)),
        scheme=scheme, finalizer=finalizer)
    records = encrypt_poa(poa, encryption_public_key, rng=rng)
    return PoaSubmission(
        drone_id=drone.drone_id,
        flight_id=f"flight-{drone.drone_id}-{flight_index}",
        records=records, claimed_start=start,
        claimed_end=start + max(samples - 1, 0),
        scheme=scheme, finalizer=finalizer)


def poisson_arrivals(fleet: Sequence[FleetDrone],
                     encryption_public_key: RsaPublicKey, *,
                     frame: LocalFrame, seed: int = 0,
                     rate_hz: float = 2.0, duration_s: float = 60.0,
                     samples: int = 6, t0: float = DEFAULT_EPOCH,
                     hash_name: str = "sha1",
                     scheme: str = SCHEME_RSA) -> list[FleetArrival]:
    """A Poisson stream of fleet submissions over ``[t0, t0 + duration_s)``.

    Inter-arrival gaps are exponential with mean ``1 / rate_hz``; the
    submitting drone is drawn uniformly per arrival; each drone's flights
    are numbered in its own arrival order.  The flight itself is stamped
    to *end* at the arrival instant (a drone uploads right after
    landing), so ``claimed_end <= at`` always holds.
    """
    if not fleet:
        return []
    rng = random.Random(seed * 0x5EED + 1)
    arrivals: list[FleetArrival] = []
    flight_counts = {drone.drone_id: 0 for drone in fleet}
    t = t0
    while True:
        t += rng.expovariate(rate_hz)
        if t >= t0 + duration_s:
            break
        drone = fleet[rng.randrange(len(fleet))]
        index = flight_counts[drone.drone_id]
        flight_counts[drone.drone_id] = index + 1
        submission = build_flight_submission(
            drone, encryption_public_key, frame=frame, flight_index=index,
            samples=samples, start=t - samples, rng=rng,
            hash_name=hash_name, scheme=scheme)
        arrivals.append(FleetArrival(at=t, submission=submission,
                                     region=drone.region))
    return arrivals
