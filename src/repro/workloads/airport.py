"""The airport field study (paper §VI-A2, Fig. 6).

One 5-mile-radius NFZ centred on an airport.  The trace starts about 30 ft
outside the boundary and drives away for about 3 miles over roughly 12
minutes of county roads, with stop-and-go segments.  The paper's 1 Hz
fix-rate baseline collects 649 samples; adaptive sampling needs only 14.
"""

from __future__ import annotations

import math
import random

from repro.core.nfz import NoFlyZone
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.replay import WaypointSource
from repro.sim.clock import DEFAULT_EPOCH
from repro.units import feet_to_meters, miles_to_meters
from repro.workloads.scenario import Scenario

#: Fig. 6's baseline count: 649 one-second samples (wakes at t = 0..648
#: inclusive) => a 648-second drive, i.e. the paper's "about 12 minutes".
AIRPORT_DRIVE_DURATION_S = 648.0
#: FAA airport rule: 5-mile radius.
AIRPORT_NFZ_RADIUS_M = miles_to_meters(5.0)
#: "The GPS trace starts about 30 feet outside the boundary of the NFZ."
START_OFFSET_M = feet_to_meters(30.0)
#: "...drives away from the NFZ for about 3 miles."
DRIVE_DISTANCE_M = miles_to_meters(3.0)


def build_airport_scenario(seed: int = 0,
                           origin: GeoPoint = GeoPoint(40.0400, -88.2800),
                           ) -> Scenario:
    """Synthesize the airport scenario.

    The vehicle leaves the NFZ boundary on a mostly-radial county route:
    cruise segments of 20-60 s at 9-15 m/s separated by short slowdowns
    and full stops at intersections, calibrated so the total displacement
    is ~3 miles over the 649-second window.
    """
    rng = random.Random(seed)
    frame = LocalFrame(origin)
    zone_center = frame.to_geo(0.0, 0.0)
    zone = NoFlyZone(zone_center.lat, zone_center.lon, AIRPORT_NFZ_RADIUS_M)

    t0 = DEFAULT_EPOCH
    start_radius = AIRPORT_NFZ_RADIUS_M + START_OFFSET_M

    # Build a 1 Hz waypoint table by integrating a stop-and-go speed
    # profile along a gently meandering, outward heading.
    duration = AIRPORT_DRIVE_DURATION_S
    # The 0.65 factor calibrates the stop-and-go profile (which spends most
    # of its time cruising above the mean) so the realized displacement
    # lands on the paper's ~3 miles.
    mean_speed = 0.65 * DRIVE_DISTANCE_M / duration

    waypoints = []
    x, y = start_radius, 0.0
    heading = 0.0  # radians from +x; +x points away from the airport
    t = 0.0
    speed = 0.0
    segment_left = 0.0
    target_speed = 0.0
    while t <= duration + 1e-9:
        waypoints.append((t0 + t, x, y))
        if segment_left <= 0.0:
            # New driving segment: cruise, slow zone, or full stop.
            roll = rng.random()
            if roll < 0.12:
                target_speed = 0.0                      # stop sign / light
                segment_left = rng.uniform(4.0, 12.0)
            elif roll < 0.30:
                target_speed = rng.uniform(0.35, 0.7) * 2.2 * mean_speed
                segment_left = rng.uniform(8.0, 20.0)   # slow zone
            else:
                target_speed = rng.uniform(0.8, 1.25) * 1.6 * mean_speed
                segment_left = rng.uniform(20.0, 60.0)  # cruise
            heading += math.radians(rng.uniform(-18.0, 18.0))
            heading = max(-math.radians(35.0), min(math.radians(35.0), heading))
        # First-order speed response toward the segment target.
        speed += (target_speed - speed) * 0.35
        x += speed * math.cos(heading)
        y += speed * math.sin(heading)
        segment_left -= 1.0
        t += 1.0

    source = WaypointSource(waypoints)
    return Scenario(
        name="airport",
        description=("single 5-mile NFZ; vehicle departs 30 ft outside the "
                     "boundary and drives ~3 miles away in ~11 minutes"),
        frame=frame,
        zones=[zone],
        source=source,
        t_start=t0,
        t_end=t0 + duration,
        gps_noise_std_m=1.2,
        gps_miss_probability=0.004,
    )


def distance_to_boundary_series(scenario: Scenario,
                                step_s: float = 1.0) -> list[tuple[float, float]]:
    """``(t, distance-to-NFZ-boundary)`` ground truth, for Fig. 6's x-axis."""
    circle = scenario.zones[0].to_circle(scenario.frame)
    series = []
    t = scenario.t_start
    while t <= scenario.t_end + 1e-9:
        x, y = scenario.source.position_at(t)
        series.append((t, circle.distance_to_boundary((x, y))))
        t += step_s
    return series
