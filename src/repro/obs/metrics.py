"""The metrics registry: named counters, gauges, and histograms.

One injectable :class:`MetricsRegistry` replaces four parallel truths
(``StageMetrics``, ``SmcStats``, ``LinkStats``, ``EventLog``): the
existing accumulators keep their APIs and callers, and thin adapters
(:mod:`repro.obs.adapters`) surface their values through the registry at
collection time.  Code can also instrument directly::

    registry = MetricsRegistry()
    registry.counter("audit.batches").inc()
    registry.histogram("audit.wall_s").observe(0.42)
    registry.gauge("audit.pool_workers").set(4)
    snapshot = registry.collect()

``collect()`` returns plain dicts (JSON-ready); histograms summarize to
count/sum/mean/min/max and p50/p90/p99 quantiles.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Iterator

from repro.errors import ConfigurationError
from repro.obs.timeseries import QuantileSketch

#: Histograms keep at most this many raw observations (the ``max_raw``
#: bound); past it, quantiles come from the bounded sketch instead.
DEFAULT_HISTOGRAM_MAX_SAMPLES = 65_536


class CounterMetric:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class GaugeMetric:
    """A point-in-time value, set directly or read from a callback."""

    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], float] | None = None):
        self.name = name
        self._fn = fn
        self._value: float = 0.0

    def set(self, value: float) -> None:
        """Set the gauge (only for gauges without a callback)."""
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = float(value)

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


def quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated quantile of an ascending series."""
    if not sorted_values:
        raise ConfigurationError("cannot take a quantile of an empty series")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


class HistogramMetric:
    """A distribution with quantile summaries in bounded memory.

    Every observation feeds a bounded :class:`QuantileSketch`
    (O(bins) memory, 1% relative-error quantiles) *and* a raw-value
    buffer capped at ``max_raw`` entries.  While no raw value has been
    discarded, :meth:`quantile` and the snapshot quantiles are exact;
    past the cap they come from the sketch, which — unlike the old
    compact-away-the-oldest-half behavior — still describes the *whole*
    distribution, not just recent data.  ``count``/``sum``/``min``/
    ``max`` are always exact.

    .. deprecated:: the unbounded raw-retention contract.
       :meth:`values` now returns at most ``max_raw`` recent
       observations and exists only for callers that genuinely need raw
       samples; use :meth:`quantile`/:meth:`snapshot` (or a
       :class:`~repro.obs.timeseries.WindowedSketch` for streaming
       windows) instead of iterating raw values.
    """

    kind = "histogram"

    def __init__(self, name: str,
                 max_samples: int = DEFAULT_HISTOGRAM_MAX_SAMPLES):
        if max_samples < 2:
            raise ConfigurationError("histogram max_samples must be >= 2")
        self.name = name
        self.max_samples = int(max_samples)
        self._values: list[float] = []
        self._sketch = QuantileSketch()
        self._raw_exact = True
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    @property
    def max_raw(self) -> int:
        """The raw-storage cap (alias of ``max_samples``)."""
        return self.max_samples

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._sketch.observe(value)
        self._values.append(value)
        if len(self._values) > self.max_samples:
            # Keep the most recent half; exact quantiles are over.
            del self._values[:len(self._values) // 2]
            self._raw_exact = False

    def values(self) -> list[float]:
        """The retained raw observations (at most ``max_raw``), oldest
        first.  Deprecated for quantile use — see the class docstring."""
        return list(self._values)

    def quantile(self, q: float) -> float:
        """Quantile over all observations.

        Exact while the raw buffer still holds every observation, then
        sketch-estimated (within 1% relative error) once the ``max_raw``
        bound has discarded raw values.
        """
        if self._raw_exact:
            return quantile(sorted(self._values), q)
        return self._sketch.quantile(q)

    def snapshot(self) -> dict[str, Any]:
        if not self.count:
            return {"type": self.kind, "count": self.count, "sum": self.sum}
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named metrics plus adapter sources, collected into one snapshot.

    Get-or-create accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) make instrumentation order-independent; asking for
    an existing name with a different metric kind raises
    :class:`~repro.errors.ConfigurationError` rather than silently
    forking the truth.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, CounterMetric | GaugeMetric
                            | HistogramMetric] = {}
        self._sources: list[Callable[[], dict[str, dict[str, Any]]]] = []

    # --- instruments --------------------------------------------------------

    def _get_or_create(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str) -> CounterMetric:
        """Get or create a counter."""
        return self._get_or_create(name, CounterMetric)

    def gauge(self, name: str,
              fn: Callable[[], float] | None = None) -> GaugeMetric:
        """Get or create a gauge (optionally callback-backed)."""
        gauge = self._get_or_create(name, GaugeMetric)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_HISTOGRAM_MAX_SAMPLES,
                  ) -> HistogramMetric:
        """Get or create a histogram."""
        return self._get_or_create(name, HistogramMetric, max_samples)

    # --- adapter sources ----------------------------------------------------

    def add_source(self, fn: Callable[[], dict[str, dict[str, Any]]]) -> None:
        """Register an adapter producing snapshot entries at collect time.

        ``fn`` returns ``{metric_name: snapshot_dict}``; adapters wrap the
        pre-existing accumulators (:mod:`repro.obs.adapters`) so their
        callers need no changes.
        """
        self._sources.append(fn)

    # --- collection ---------------------------------------------------------

    def collect(self) -> dict[str, dict[str, Any]]:
        """One JSON-ready snapshot of every metric and adapter source.

        Metric names are sorted across direct instruments *and* adapter
        entries, so two snapshots of the same state serialize
        identically regardless of registration order (telemetry diffs
        stay reproducible).
        """
        snapshot = {name: metric.snapshot()
                    for name, metric in self._metrics.items()}
        for source in self._sources:
            for name, entry in source().items():
                snapshot[name] = entry
        return dict(sorted(snapshot.items()))

    def to_json(self, indent: int | None = 2) -> str:
        """The collected snapshot as a JSON document."""
        return json.dumps(self.collect(), indent=indent, sort_keys=True)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self.collect()

    def __iter__(self) -> Iterator[str]:
        return iter(self.collect())

    def __len__(self) -> int:
        return len(self.collect())


_active_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (always a real one; metrics are cheap)."""
    return _active_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _active_registry
    previous = _active_registry
    _active_registry = registry
    return previous
