"""Bounded sketches and sliding-window instruments for long runs.

The PR-2 snapshot metrics answer "what happened since process start";
a fleet auditor that absorbs submissions for hours needs "what is
happening *now*" without retaining every raw observation.  This module
provides the two primitives that make that possible:

* :class:`QuantileSketch` — a DDSketch-style log-bucketed quantile
  estimator.  Memory is O(bins) regardless of how many values are
  observed, and every quantile estimate is within a documented
  *relative* error bound ``alpha`` of the exact quantile (see the class
  docstring for the precise guarantee).  Sketches merge, so windowed
  quantiles are just merged ring slots.
* :class:`WindowedCounter` / :class:`WindowedRate` /
  :class:`WindowedSketch` — ring buffers of fixed-width time buckets
  driven by an external clock (the sim clock in tests and harnesses,
  wall time on a live dashboard).  ``total``/``rate``/``quantile`` are
  answered over the trailing window at any instant of a run.

Time semantics (shared by all ring instruments):

* A bucket of width ``w`` covers the half-open interval
  ``[k*w, (k+1)*w)``; an observation stamped exactly on a boundary
  belongs to the *new* bucket.
* A window query at time ``t`` covers the current (partial) bucket plus
  the ``buckets - 1`` buckets before it: an observation at time ``t0``
  has expired from a query at ``t`` once ``t - t0 >= window_s`` (up to
  bucket granularity).
* Clocks never run the ring backwards.  An observation or query stamped
  *earlier* than the newest time already seen is treated as happening at
  that newest time (skewed producers cannot resurrect expired buckets or
  crash the ring); the sim clock itself is monotone, so this only
  matters when fault plans inject clock skew.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: Default relative-error target for sketches (1%).
DEFAULT_SKETCH_ALPHA = 0.01
#: Default bucket-count bound for sketches.  With ``alpha=0.01`` the
#: bucket base is ~1.02, so 2048 bins span ~18 orders of magnitude —
#: far more dynamic range than any latency/rate series here needs.
DEFAULT_SKETCH_MAX_BINS = 2048
#: Values with magnitude at or below this collapse into the zero bucket
#: (their estimate is 0.0; the relative-error bound applies above it).
DEFAULT_SKETCH_MIN_VALUE = 1e-9

#: Default sliding window: 60 virtual seconds in 12 five-second buckets.
DEFAULT_WINDOW_S = 60.0
DEFAULT_WINDOW_BUCKETS = 12


class QuantileSketch:
    """A bounded-memory quantile estimator with a relative error bound.

    DDSketch-style log-bucketing: a value ``x`` with ``|x| > min_value``
    lands in bucket ``ceil(log_gamma |x|)`` where
    ``gamma = (1 + alpha) / (1 - alpha)``; the bucket's representative
    value is ``2 * gamma**k / (gamma + 1)``, which is within ``alpha``
    relative error of every value the bucket covers.  Negative values
    get a mirrored bucket store; ``|x| <= min_value`` counts into a zero
    bucket estimated as ``0.0``.

    **Guarantee** — for any quantile ``q``, as long as the bucket bound
    has not forced a collapse (see below),
    ``|quantile(q) - exact_q| <= alpha * |exact_q|`` whenever the exact
    quantile's magnitude exceeds ``min_value``.

    **Memory** — O(bins): at most ``max_bins`` buckets are retained.
    When a new bucket would exceed the bound, the two buckets closest to
    zero are merged, degrading accuracy only for the smallest-magnitude
    tail (DDSketch's collapse rule).  ``count``/``sum``/``min``/``max``
    stay exact regardless.

    Sketches with the same ``alpha`` merge via :meth:`merge`, which is
    what the windowed variant uses to answer trailing-window quantiles.
    """

    kind = "sketch"

    def __init__(self, alpha: float = DEFAULT_SKETCH_ALPHA,
                 max_bins: int = DEFAULT_SKETCH_MAX_BINS,
                 min_value: float = DEFAULT_SKETCH_MIN_VALUE):
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(
                f"sketch alpha must be in (0, 1), got {alpha}")
        if max_bins < 2:
            raise ConfigurationError("sketch max_bins must be >= 2")
        if min_value <= 0.0:
            raise ConfigurationError("sketch min_value must be > 0")
        self.alpha = float(alpha)
        self.max_bins = int(max_bins)
        self.min_value = float(min_value)
        self._gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self._gamma)
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    # --- recording ----------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_value(self, key: int) -> float:
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def _collapse(self, store: dict[int, int]) -> None:
        # Merge the two buckets closest to zero (the smallest magnitudes)
        # so the bound degrades the least-interesting tail first.
        low, second = sorted(store)[:2]
        store[second] += store.pop(low)

    def observe(self, value: float) -> None:
        """Record one observation in O(1)."""
        value = float(value)
        if math.isnan(value):
            raise ConfigurationError("cannot observe NaN")
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        magnitude = abs(value)
        if magnitude <= self.min_value:
            self._zero += 1
            return
        store = self._positive if value > 0 else self._negative
        key = self._key(magnitude)
        store[key] = store.get(key, 0) + 1
        if len(self._positive) + len(self._negative) > self.max_bins:
            self._collapse(store if len(store) >= 2
                           else (self._positive if self._positive
                                 else self._negative))

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (same ``alpha`` required)."""
        if not isinstance(other, QuantileSketch):
            raise ConfigurationError("can only merge another QuantileSketch")
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ConfigurationError(
                f"cannot merge sketches with different alpha "
                f"({self.alpha} vs {other.alpha})")
        for key, n in other._positive.items():
            self._positive[key] = self._positive.get(key, 0) + n
        for key, n in other._negative.items():
            self._negative[key] = self._negative.get(key, 0) + n
        self._zero += other._zero
        self.count += other.count
        self.sum += other.sum
        for bound in (other.min, other.max):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min, bound)
                self.max = bound if self.max is None else max(self.max, bound)
        while len(self._positive) + len(self._negative) > self.max_bins:
            self._collapse(self._positive if len(self._positive) >= 2
                           else self._negative)

    # --- queries ------------------------------------------------------------

    @property
    def bins(self) -> int:
        """Buckets currently held (the memory bound in action)."""
        return (len(self._positive) + len(self._negative)
                + (1 if self._zero else 0))

    def _ascending(self) -> Iterator[tuple[float, int]]:
        """(representative value, count) pairs in ascending value order."""
        for key in sorted(self._negative, reverse=True):
            yield -self._bucket_value(key), self._negative[key]
        if self._zero:
            yield 0.0, self._zero
        for key in sorted(self._positive):
            yield self._bucket_value(key), self._positive[key]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (see the class error bound)."""
        if self.count == 0:
            raise ConfigurationError(
                "cannot take a quantile of an empty sketch")
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        rank = q * (self.count - 1)
        seen = 0
        value = 0.0
        for value, n in self._ascending():
            seen += n
            if seen > rank:
                break
        # Clamp to the exact extremes so q=0/q=1 are exact and no
        # estimate ever falls outside the observed range.
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    @property
    def mean(self) -> float:
        """Exact mean of everything observed."""
        if self.count == 0:
            raise ConfigurationError("empty sketch has no mean")
        return self.sum / self.count

    def summary(self) -> dict[str, Any]:
        """A JSON-ready quantile summary (``{"count": 0}`` when empty)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _Ring:
    """Shared bucket-advance machinery for the windowed instruments."""

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 buckets: int = DEFAULT_WINDOW_BUCKETS):
        if window_s <= 0.0:
            raise ConfigurationError(f"window_s must be > 0, got {window_s}")
        if buckets < 1:
            raise ConfigurationError(f"buckets must be >= 1, got {buckets}")
        self.window_s = float(window_s)
        self.buckets = int(buckets)
        self.bucket_width_s = self.window_s / self.buckets
        #: Absolute index of the bucket the newest time seen falls in;
        #: None until the first advance.
        self._head: int | None = None
        self._last_now: float | None = None

    def _clamp(self, now: float) -> float:
        # Backwards time never rewinds the ring (see module docstring).
        if self._last_now is not None and now < self._last_now:
            return self._last_now
        self._last_now = float(now)
        return self._last_now

    def _advance(self, now: float) -> int:
        """Move the head to ``now``'s bucket; returns steps advanced."""
        now = self._clamp(now)
        index = math.floor(now / self.bucket_width_s)
        if self._head is None:
            self._head = index
            return self.buckets  # everything starts empty
        steps = index - self._head
        if steps > 0:
            self._head = index
        return max(steps, 0)

    @property
    def last_seen(self) -> float | None:
        """The newest time this instrument has been driven to."""
        return self._last_now


class WindowedCounter(_Ring):
    """Event counts over a trailing window, plus an exact lifetime total.

    ``inc`` lands in the current time bucket; ``total``/``rate`` answer
    over the trailing window, and :attr:`cumulative` never expires (it
    is what latching alert rules such as ``false_accept > 0`` watch).
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 buckets: int = DEFAULT_WINDOW_BUCKETS):
        super().__init__(window_s, buckets)
        self._slots = [0.0] * self.buckets
        self.cumulative = 0.0

    def _roll(self, now: float) -> None:
        steps = self._advance(now)
        if steps >= self.buckets:
            self._slots = [0.0] * self.buckets
            return
        head = self._head
        for i in range(steps):
            self._slots[(head - i) % self.buckets] = 0.0

    def inc(self, amount: float = 1.0, *, now: float) -> None:
        """Count ``amount`` events at virtual time ``now``."""
        if amount < 0:
            raise ConfigurationError(
                f"windowed counter cannot decrease (inc {amount})")
        self._roll(now)
        self._slots[self._head % self.buckets] += amount
        self.cumulative += amount

    def total(self, now: float) -> float:
        """Events inside the trailing window as of ``now``."""
        self._roll(now)
        return sum(self._slots)

    def rate(self, now: float) -> float:
        """Events per second over the trailing window as of ``now``."""
        return self.total(now) / self.window_s


class WindowedRate(WindowedCounter):
    """A :class:`WindowedCounter` read as a rate (``mark`` + ``rate``)."""

    def mark(self, *, now: float, amount: float = 1.0) -> None:
        """Record ``amount`` occurrences at ``now``."""
        self.inc(amount, now=now)


class WindowedSketch(_Ring):
    """Trailing-window quantiles: a ring of :class:`QuantileSketch` slots.

    Each bucket owns a sketch; window queries merge the live slots into
    a scratch sketch, so a query costs O(buckets x bins) and recording
    stays O(1).  An empty window has no quantiles: :meth:`quantile`
    returns ``None`` and :meth:`summary` reports ``{"count": 0}`` (a
    quiet window is normal operation, not an error).
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 buckets: int = DEFAULT_WINDOW_BUCKETS,
                 alpha: float = DEFAULT_SKETCH_ALPHA,
                 max_bins: int = DEFAULT_SKETCH_MAX_BINS):
        super().__init__(window_s, buckets)
        self.alpha = float(alpha)
        self.max_bins = int(max_bins)
        self._slots: list[QuantileSketch | None] = [None] * self.buckets

    def _roll(self, now: float) -> None:
        steps = self._advance(now)
        if steps >= self.buckets:
            self._slots = [None] * self.buckets
            return
        head = self._head
        for i in range(steps):
            self._slots[(head - i) % self.buckets] = None

    def observe(self, value: float, *, now: float) -> None:
        """Record one observation at virtual time ``now``."""
        self._roll(now)
        slot = self._head % self.buckets
        sketch = self._slots[slot]
        if sketch is None:
            sketch = QuantileSketch(self.alpha, self.max_bins)
            self._slots[slot] = sketch
        sketch.observe(value)

    def merged(self, now: float) -> QuantileSketch:
        """All live slots merged into one sketch (may be empty)."""
        self._roll(now)
        merged = QuantileSketch(self.alpha, self.max_bins)
        for sketch in self._slots:
            if sketch is not None:
                merged.merge(sketch)
        return merged

    def quantile(self, q: float, *, now: float) -> float | None:
        """Windowed quantile estimate, or ``None`` for an empty window."""
        merged = self.merged(now)
        if merged.count == 0:
            return None
        return merged.quantile(q)

    def summary(self, now: float) -> dict[str, Any]:
        """Windowed :meth:`QuantileSketch.summary`."""
        return self.merged(now).summary()
