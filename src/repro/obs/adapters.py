"""Adapters feeding the pre-existing accumulators into a MetricsRegistry.

``StageMetrics`` (verification timing), ``SmcStats`` (world switches),
``LinkStats`` (radio counters) and ``EventLog`` (simulation events) each
predate the registry and keep their own APIs — their callers are
unchanged.  Each adapter registers a collect-time source that reads the
live accumulator, so the registry snapshot always reflects current
values without double bookkeeping on the hot paths.

The accumulators are referenced duck-typed (no imports of the TEE / net /
perf layers) so the observability package stays dependency-free and
import-cycle-free: instrumented modules may import :mod:`repro.obs`, never
the other way around.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

Source = Callable[[], dict[str, dict[str, Any]]]


def register_stage_metrics(registry, stage_metrics,
                           prefix: str = "verify") -> Source:
    """Surface a :class:`repro.perf.meter.StageMetrics` through ``registry``.

    Per stage: ``<prefix>.<stage>.runs``, ``.samples``,
    ``.total_seconds`` (counters) and ``.seconds`` (a histogram-style
    summary with the mean/std the meter already computes).
    """
    def source() -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for stage in stage_metrics.stages():
            base = f"{prefix}.{stage}"
            runs = stage_metrics.runs(stage)
            out[f"{base}.runs"] = {"type": "counter", "value": runs}
            out[f"{base}.samples"] = {
                "type": "counter",
                "value": stage_metrics.total_samples(stage)}
            out[f"{base}.total_seconds"] = {
                "type": "counter",
                "value": stage_metrics.total_seconds(stage)}
            if runs:
                timing = stage_metrics.timing(stage)
                out[f"{base}.seconds"] = {
                    "type": "histogram", "count": timing.n,
                    "sum": stage_metrics.total_seconds(stage),
                    "mean": timing.mean, "std": timing.std}
        return out

    registry.add_source(source)
    return source


def register_smc_stats(registry, smc_stats,
                       prefix: str = "tee.smc") -> Source:
    """Surface a :class:`repro.tee.monitor.SmcStats` through ``registry``."""
    def source() -> dict[str, dict[str, Any]]:
        out = {
            f"{prefix}.world_switches": {
                "type": "counter", "value": smc_stats.world_switches},
            f"{prefix}.total_calls": {
                "type": "counter", "value": smc_stats.total_calls},
        }
        for command, calls in sorted(smc_stats.calls_by_command.items()):
            out[f"{prefix}.calls.{command}"] = {
                "type": "counter", "value": calls}
        return out

    registry.add_source(source)
    return source


def register_link_stats(registry, link_stats,
                        prefix: str = "net.link") -> Source:
    """Surface a :class:`repro.net.link.LinkStats` through ``registry``."""
    def source() -> dict[str, dict[str, Any]]:
        return {
            f"{prefix}.sent": {"type": "counter",
                               "value": link_stats.sent},
            f"{prefix}.dropped": {"type": "counter",
                                  "value": link_stats.dropped},
            f"{prefix}.delivered": {"type": "counter",
                                    "value": link_stats.delivered},
            f"{prefix}.bytes_sent": {"type": "counter",
                                     "value": link_stats.bytes_sent},
            f"{prefix}.loss_rate": {"type": "gauge",
                                    "value": link_stats.loss_rate},
        }

    registry.add_source(source)
    return source


def register_zone_index_stats(registry, stats,
                              prefix: str = "geo.zone_index") -> Source:
    """Surface a :class:`repro.geo.proximity.ZoneIndexStats` through ``registry``.

    Counters ``<prefix>.queries``, ``.candidates``, ``.rings``,
    ``.cutoff_exits`` plus per-query mean gauges, so a snapshot shows the
    ring-search pruning working (candidates per query should stay flat as
    the zone count grows).
    """
    def source() -> dict[str, dict[str, Any]]:
        return {
            f"{prefix}.queries": {"type": "counter",
                                  "value": stats.queries},
            f"{prefix}.candidates": {"type": "counter",
                                     "value": stats.candidates},
            f"{prefix}.rings": {"type": "counter",
                                "value": stats.rings},
            f"{prefix}.cutoff_exits": {"type": "counter",
                                       "value": stats.cutoff_exits},
            f"{prefix}.mean_candidates_per_query": {
                "type": "gauge", "value": stats.mean_candidates_per_query},
            f"{prefix}.mean_rings_per_query": {
                "type": "gauge", "value": stats.mean_rings_per_query},
        }

    registry.add_source(source)
    return source


def register_fault_stats(registry, stats,
                         prefix: str = "fault") -> Source:
    """Surface a :class:`repro.faults.injector.FaultStats` through ``registry``.

    ``<prefix>.opportunities.total`` and ``<prefix>.injected.total``
    counters, plus per-point ``<prefix>.opportunities.<point>`` and
    per-fault-kind ``<prefix>.injected.<point>.<action>`` breakdowns, so
    a snapshot shows exactly which failures a chaos run exercised.
    """
    def source() -> dict[str, dict[str, Any]]:
        out = {
            f"{prefix}.opportunities.total": {
                "type": "counter",
                "value": sum(stats.opportunities.values())},
            f"{prefix}.injected.total": {"type": "counter",
                                         "value": stats.total_injected},
        }
        for point, count in sorted(stats.opportunities.items()):
            out[f"{prefix}.opportunities.{point}"] = {"type": "counter",
                                                      "value": count}
        for key, count in sorted(stats.injected.items()):
            out[f"{prefix}.injected.{key}"] = {"type": "counter",
                                               "value": count}
        return out

    registry.add_source(source)
    return source


def register_retry_stats(registry, stats,
                         prefix: str = "retry") -> Source:
    """Surface a :class:`repro.faults.retry.RetryStats` through ``registry``.

    Aggregate counters (``<prefix>.calls``, ``.attempts``, ``.retries``,
    ``.recoveries``, ``.giveups``), total virtual backoff as a counter,
    and a per-operation ``<prefix>.op.<operation>.retries`` breakdown.
    """
    def source() -> dict[str, dict[str, Any]]:
        out = {
            f"{prefix}.calls": {"type": "counter", "value": stats.calls},
            f"{prefix}.attempts": {"type": "counter",
                                   "value": stats.attempts},
            f"{prefix}.retries": {"type": "counter",
                                  "value": stats.retries},
            f"{prefix}.recoveries": {"type": "counter",
                                     "value": stats.recoveries},
            f"{prefix}.giveups": {"type": "counter",
                                  "value": stats.giveups},
            f"{prefix}.total_backoff_seconds": {
                "type": "counter", "value": stats.total_backoff_s},
        }
        for operation, retries in sorted(stats.by_operation.items()):
            out[f"{prefix}.op.{operation}.retries"] = {
                "type": "counter", "value": retries}
        return out

    registry.add_source(source)
    return source


def register_event_log(registry, event_log,
                       prefix: str = "sim.events") -> Source:
    """Surface a :class:`repro.sim.events.EventLog` through ``registry``.

    ``<prefix>.total`` plus one ``<prefix>.kind.<kind>`` counter per
    distinct event kind seen so far.
    """
    def source() -> dict[str, dict[str, Any]]:
        kinds = Counter(event.kind for event in event_log)
        out = {f"{prefix}.total": {"type": "counter",
                                   "value": len(event_log)}}
        for kind, count in sorted(kinds.items()):
            out[f"{prefix}.kind.{kind}"] = {"type": "counter",
                                            "value": count}
        return out

    registry.add_source(source)
    return source


def register_attack_stats(registry, stats,
                          prefix: str = "adversary") -> Source:
    """Surface a :class:`repro.adversary.matrix.AttackStats` through ``registry``.

    Aggregate counters (``<prefix>.attacks_run``, ``.rejected``,
    ``.false_accepts``, ``.unexpected_outcomes``) plus a per-label
    ``<prefix>.outcome.<label>`` breakdown, so a snapshot shows how every
    attack in a matrix sweep was dispatched.
    """
    def source() -> dict[str, dict[str, Any]]:
        out = {
            f"{prefix}.attacks_run": {"type": "counter",
                                      "value": stats.attacks_run},
            f"{prefix}.rejected": {"type": "counter",
                                   "value": stats.rejected},
            f"{prefix}.false_accepts": {"type": "counter",
                                        "value": stats.false_accepts},
            f"{prefix}.unexpected_outcomes": {
                "type": "counter", "value": stats.unexpected_outcomes},
        }
        for label, count in sorted(stats.by_outcome.items()):
            out[f"{prefix}.outcome.{label}"] = {"type": "counter",
                                                "value": count}
        return out

    registry.add_source(source)
    return source
