"""Adapters feeding the pre-existing accumulators into a MetricsRegistry.

``StageMetrics`` (verification timing), ``SmcStats`` (world switches),
``LinkStats`` (radio counters) and ``EventLog`` (simulation events) each
predate the registry and keep their own APIs — their callers are
unchanged.  Each adapter registers a collect-time source that reads the
live accumulator, so the registry snapshot always reflects current
values without double bookkeeping on the hot paths.

The accumulators are referenced duck-typed (no imports of the TEE / net /
perf layers) so the observability package stays dependency-free and
import-cycle-free: instrumented modules may import :mod:`repro.obs`, never
the other way around.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable

Source = Callable[[], dict[str, dict[str, Any]]]


def register_stage_metrics(registry, stage_metrics,
                           prefix: str = "verify") -> Source:
    """Surface a :class:`repro.perf.meter.StageMetrics` through ``registry``.

    Per stage: ``<prefix>.<stage>.runs``, ``.samples``,
    ``.total_seconds`` (counters) and ``.seconds`` (a histogram-style
    summary with the mean/std the meter already computes).
    """
    def source() -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for stage in stage_metrics.stages():
            base = f"{prefix}.{stage}"
            runs = stage_metrics.runs(stage)
            out[f"{base}.runs"] = {"type": "counter", "value": runs}
            out[f"{base}.samples"] = {
                "type": "counter",
                "value": stage_metrics.total_samples(stage)}
            out[f"{base}.total_seconds"] = {
                "type": "counter",
                "value": stage_metrics.total_seconds(stage)}
            if runs:
                timing = stage_metrics.timing(stage)
                out[f"{base}.seconds"] = {
                    "type": "histogram", "count": timing.n,
                    "sum": stage_metrics.total_seconds(stage),
                    "mean": timing.mean, "std": timing.std}
        return out

    registry.add_source(source)
    return source


def register_smc_stats(registry, smc_stats,
                       prefix: str = "tee.smc") -> Source:
    """Surface a :class:`repro.tee.monitor.SmcStats` through ``registry``."""
    def source() -> dict[str, dict[str, Any]]:
        out = {
            f"{prefix}.world_switches": {
                "type": "counter", "value": smc_stats.world_switches},
            f"{prefix}.total_calls": {
                "type": "counter", "value": smc_stats.total_calls},
        }
        for command, calls in sorted(smc_stats.calls_by_command.items()):
            out[f"{prefix}.calls.{command}"] = {
                "type": "counter", "value": calls}
        return out

    registry.add_source(source)
    return source


def register_link_stats(registry, link_stats,
                        prefix: str = "net.link") -> Source:
    """Surface a :class:`repro.net.link.LinkStats` through ``registry``."""
    def source() -> dict[str, dict[str, Any]]:
        return {
            f"{prefix}.sent": {"type": "counter",
                               "value": link_stats.sent},
            f"{prefix}.dropped": {"type": "counter",
                                  "value": link_stats.dropped},
            f"{prefix}.delivered": {"type": "counter",
                                    "value": link_stats.delivered},
            f"{prefix}.bytes_sent": {"type": "counter",
                                     "value": link_stats.bytes_sent},
            f"{prefix}.loss_rate": {"type": "gauge",
                                    "value": link_stats.loss_rate},
        }

    registry.add_source(source)
    return source


def register_zone_index_stats(registry, stats,
                              prefix: str = "geo.zone_index") -> Source:
    """Surface a :class:`repro.geo.proximity.ZoneIndexStats` through ``registry``.

    Counters ``<prefix>.queries``, ``.candidates``, ``.rings``,
    ``.cutoff_exits`` plus per-query mean gauges, so a snapshot shows the
    ring-search pruning working (candidates per query should stay flat as
    the zone count grows).
    """
    def source() -> dict[str, dict[str, Any]]:
        return {
            f"{prefix}.queries": {"type": "counter",
                                  "value": stats.queries},
            f"{prefix}.candidates": {"type": "counter",
                                     "value": stats.candidates},
            f"{prefix}.rings": {"type": "counter",
                                "value": stats.rings},
            f"{prefix}.cutoff_exits": {"type": "counter",
                                       "value": stats.cutoff_exits},
            f"{prefix}.mean_candidates_per_query": {
                "type": "gauge", "value": stats.mean_candidates_per_query},
            f"{prefix}.mean_rings_per_query": {
                "type": "gauge", "value": stats.mean_rings_per_query},
        }

    registry.add_source(source)
    return source


def register_event_log(registry, event_log,
                       prefix: str = "sim.events") -> Source:
    """Surface a :class:`repro.sim.events.EventLog` through ``registry``.

    ``<prefix>.total`` plus one ``<prefix>.kind.<kind>`` counter per
    distinct event kind seen so far.
    """
    def source() -> dict[str, dict[str, Any]]:
        kinds = Counter(event.kind for event in event_log)
        out = {f"{prefix}.total": {"type": "counter",
                                   "value": len(event_log)}}
        for kind, count in sorted(kinds.items()):
            out[f"{prefix}.kind.{kind}"] = {"type": "counter",
                                            "value": count}
        return out

    registry.add_source(source)
    return source
