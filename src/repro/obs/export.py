"""Exporters: JSONL span dumps, span-tree rendering, metrics JSON.

The JSONL format is one :meth:`repro.obs.trace.Span.to_dict` object per
line — trivially greppable, streamable, and parseable line-by-line (the
CI smoke job validates exactly this).  ``format_tree`` renders the same
spans as an indented per-trace tree for humans reading a single audited
sample's journey.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in the given span order."""
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in spans)


def write_spans_jsonl(path: str | pathlib.Path,
                      spans: Iterable[Span]) -> pathlib.Path:
    """Write a span JSONL export; returns the path written."""
    path = pathlib.Path(path)
    text = spans_to_jsonl(spans)
    path.write_text(text + "\n" if text else "")
    return path


def read_spans_jsonl(path: str | pathlib.Path) -> list[Span]:
    """Parse a JSONL export back into spans (round-trip of the writer)."""
    spans = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def _format_attributes(attributes: dict[str, Any]) -> str:
    if not attributes:
        return ""
    rendered = " ".join(f"{key}={value!r}" if isinstance(value, str)
                        else f"{key}={value}"
                        for key, value in sorted(attributes.items()))
    return f"  [{rendered}]"


def _format_duration(span: Span) -> str:
    duration = span.duration_s
    if duration is None:
        return "(open)"
    if duration >= 1.0:
        return f"{duration:.3f}s"
    return f"{duration * 1e3:.3f}ms"


def format_tree(spans: Sequence[Span]) -> str:
    """Render spans as one indented tree per trace, children by start time.

    Spans whose parent is missing from ``spans`` (e.g. a filtered export)
    are promoted to roots so nothing silently disappears.
    """
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.start_s, s.span_id))

    lines: list[str] = []

    def render(span: Span, depth: int) -> None:
        marker = "" if span.status == "ok" else f" !{span.status}"
        lines.append(f"{'  ' * depth}- {span.name} {_format_duration(span)}"
                     f"{marker}{_format_attributes(span.attributes)}")
        for child in children.get(span.span_id, ()):
            render(child, depth + 1)

    roots = children.get(None, [])
    for trace_id in dict.fromkeys(span.trace_id for span in roots):
        lines.append(f"trace {trace_id}")
        for root in roots:
            if root.trace_id == trace_id:
                render(root, 1)
    return "\n".join(lines)


def write_metrics_json(path: str | pathlib.Path,
                       registry: MetricsRegistry) -> pathlib.Path:
    """Write a registry snapshot as a JSON document; returns the path."""
    path = pathlib.Path(path)
    path.write_text(registry.to_json() + "\n")
    return path
