"""SLO monitors: declarative alert rules evaluated on window rollups.

A :class:`MonitorRule` watches one flattened rollup path
(:func:`repro.obs.hub.flatten_rollup`) and fires an :class:`Alert` when
its condition holds for ``for_count`` consecutive evaluations — the
hysteresis that keeps a single boundary sample from flapping an alert.
Three rule kinds cover the SLO layer:

* ``threshold`` — compare the value against a fixed bound.  A missing
  metric is *not* a breach (quiet streams are normal); absence has its
  own rule kind.
* ``ewma`` — anomaly detection: keep an exponentially weighted mean and
  variance of the series and breach when a sample deviates more than
  ``sigma`` standard deviations (after ``warmup`` samples).  The
  anomalous sample still folds into the EWMA afterwards, so a genuine
  level shift re-baselines instead of alerting forever.
* ``absence`` — staleness: breach when the metric is missing from the
  rollup, or (with ``max_age_s``) when a stream that *has* been seen
  goes quiet for too long (a stream that never appeared hasn't begun —
  it is not stale).

Fired/resolved transitions are emitted as structured ``alert_fired`` /
``alert_resolved`` events into an optional
:class:`repro.sim.events.EventLog`, joining the existing audit-trail
stream.  The standing invariants become monitored signals through
:func:`builtin_rules`, whose hard-wired ``false_accept`` rule pages the
moment the cumulative false-accept counter leaves zero.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ConfigurationError

SEVERITY_PAGE = "page"
SEVERITY_WARN = "warn"
_SEVERITIES = (SEVERITY_PAGE, SEVERITY_WARN)

_OPS = {">": operator.gt, ">=": operator.ge,
        "<": operator.lt, "<=": operator.le}
_KINDS = ("threshold", "ewma", "absence")


@dataclass(frozen=True)
class Alert:
    """One fired alert: the structured event downstream tooling consumes."""

    rule: str
    severity: str
    kind: str
    fired_at: float
    value: float | None
    threshold: float | None
    message: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the rollup/event payload)."""
        return {"rule": self.rule, "severity": self.severity,
                "kind": self.kind, "fired_at": self.fired_at,
                "value": self.value, "threshold": self.threshold,
                "message": self.message}


@dataclass(frozen=True)
class MonitorRule:
    """One declarative alert rule over a flattened rollup path."""

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    threshold: float = 0.0
    severity: str = SEVERITY_WARN
    #: Consecutive breaching evaluations before the alert fires.
    for_count: int = 1
    #: Consecutive clean evaluations before a firing alert resolves.
    clear_count: int = 1
    #: EWMA smoothing factor (``ewma`` kind).
    ewma_alpha: float = 0.3
    #: Deviation threshold in EW standard deviations (``ewma`` kind).
    sigma: float = 4.0
    #: Samples folded in before the EWMA rule may breach.
    warmup: int = 5
    #: Absolute deviation floor for the EWMA rule, so a flat-zero series
    #: does not page on its first nonzero epsilon.
    min_delta: float = 1e-9
    #: Staleness bound for the ``absence`` kind (None: missing == stale).
    max_age_s: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown kind {self.kind!r}")
        if self.op not in _OPS:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown comparison {self.op!r}")
        if self.severity not in _SEVERITIES:
            raise ConfigurationError(
                f"rule {self.name!r}: unknown severity {self.severity!r}")
        if self.for_count < 1 or self.clear_count < 1:
            raise ConfigurationError(
                f"rule {self.name!r}: for_count/clear_count must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"rule {self.name!r}: ewma_alpha must be in (0, 1]")


class _RuleState:
    """Per-rule evaluation state (streaks, EWMA moments, staleness)."""

    def __init__(self) -> None:
        self.breaches = 0
        self.oks = 0
        self.firing: Alert | None = None
        self.ewma: float | None = None
        self.ewvar = 0.0
        self.samples = 0
        self.last_seen_at: float | None = None
        self.first_eval_at: float | None = None


class MonitorEngine:
    """Evaluates a rule set against successive rollups.

    One :meth:`evaluate` call per rollup tick; returns the alerts that
    *newly fired* on that tick (the page/notify edge), while
    :attr:`firing` always holds the currently-active set.
    """

    def __init__(self, rules: list[MonitorRule] | None = None, *,
                 events=None):
        self.rules: list[MonitorRule] = []
        self.events = events
        self._states: dict[str, _RuleState] = {}
        self.evaluations = 0
        self.alerts_fired = 0
        for rule in rules or []:
            self.add_rule(rule)

    def add_rule(self, rule: MonitorRule) -> None:
        """Register a rule (names must be unique)."""
        if rule.name in self._states:
            raise ConfigurationError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        self._states[rule.name] = _RuleState()

    @property
    def firing(self) -> dict[str, Alert]:
        """Currently-active alerts by rule name."""
        return {name: state.firing
                for name, state in self._states.items()
                if state.firing is not None}

    # --- per-kind breach predicates -----------------------------------------

    def _threshold_breach(self, rule: MonitorRule, value: float | None,
                          state: _RuleState) -> tuple[bool, str]:
        if value is None:
            return False, ""
        if _OPS[rule.op](value, rule.threshold):
            return True, (f"{rule.metric} = {value:g} "
                          f"{rule.op} {rule.threshold:g}")
        return False, ""

    def _ewma_breach(self, rule: MonitorRule, value: float | None,
                     state: _RuleState) -> tuple[bool, str]:
        if value is None:
            return False, ""
        breached = False
        message = ""
        if state.ewma is not None and state.samples >= rule.warmup:
            deviation = abs(value - state.ewma)
            bound = max(rule.sigma * math.sqrt(state.ewvar), rule.min_delta)
            if deviation > bound:
                breached = True
                message = (f"{rule.metric} = {value:g} deviates "
                           f"{deviation:g} from EWMA {state.ewma:g} "
                           f"(bound {bound:g})")
        if state.ewma is None:
            state.ewma = value
        else:
            diff = value - state.ewma
            state.ewma += rule.ewma_alpha * diff
            state.ewvar = ((1.0 - rule.ewma_alpha)
                           * (state.ewvar + rule.ewma_alpha * diff * diff))
        state.samples += 1
        return breached, message

    def _absence_breach(self, rule: MonitorRule, value: float | None,
                        state: _RuleState, now: float) -> tuple[bool, str]:
        if value is not None:
            state.last_seen_at = now
            return False, ""
        if rule.max_age_s is None:
            return True, f"{rule.metric} absent from rollup"
        # Staleness applies to a stream that has been live at least once;
        # a metric that never appeared is a stream that hasn't begun, not
        # a stalled one (a run with no such producer must not page).
        if (state.last_seen_at is not None
                and now - state.last_seen_at > rule.max_age_s):
            return True, (f"{rule.metric} stale: last seen "
                          f"{now - state.last_seen_at:g}s ago "
                          f"(max {rule.max_age_s:g}s)")
        return False, ""

    # --- evaluation ---------------------------------------------------------

    def evaluate(self, values: Mapping[str, float],
                 now: float) -> list[Alert]:
        """One tick: returns alerts that newly fired on this rollup."""
        self.evaluations += 1
        fired: list[Alert] = []
        for rule in self.rules:
            state = self._states[rule.name]
            if state.first_eval_at is None:
                state.first_eval_at = now
            value = values.get(rule.metric)
            if rule.kind == "threshold":
                breached, message = self._threshold_breach(rule, value, state)
            elif rule.kind == "ewma":
                breached, message = self._ewma_breach(rule, value, state)
            else:
                breached, message = self._absence_breach(rule, value, state,
                                                         now)
            if breached:
                state.breaches += 1
                state.oks = 0
                if (state.firing is None
                        and state.breaches >= rule.for_count):
                    alert = Alert(rule=rule.name, severity=rule.severity,
                                  kind=rule.kind, fired_at=now, value=value,
                                  threshold=(rule.threshold
                                             if rule.kind == "threshold"
                                             else None),
                                  message=message or rule.description)
                    state.firing = alert
                    fired.append(alert)
                    self.alerts_fired += 1
                    if self.events is not None:
                        detail = alert.to_dict()
                        # "kind" is EventLog.record's own positional; the
                        # rule kind travels as rule_kind.
                        detail["rule_kind"] = detail.pop("kind")
                        self.events.record(now, "alert_fired", **detail)
            else:
                state.oks += 1
                state.breaches = 0
                if (state.firing is not None
                        and state.oks >= rule.clear_count):
                    if self.events is not None:
                        self.events.record(now, "alert_resolved",
                                           rule=rule.name,
                                           severity=rule.severity,
                                           fired_at=state.firing.fired_at)
                    state.firing = None
        return fired


def builtin_rules() -> list[MonitorRule]:
    """The standing alert catalogue (see docs/OBSERVABILITY.md).

    * ``false_accept`` — **page**: the safety invariant as a monitored
      signal.  Watches the *cumulative* false-accept counter, so the
      alert latches for the rest of the run — a false accept is never
      "resolved" by a quiet window.
    * ``rejection_spike`` — EWMA anomaly on the windowed rejection rate.
    * ``retry_storm`` — sustained retry rate above threshold for two
      consecutive rollups.
    * ``zone_cache_degraded`` — the zone-index cache hit ratio sagging
      below 0.5 for three consecutive rollups (the gauge is absent until
      the cache has traffic, and threshold rules skip absent metrics).
    * ``intake_stalled`` — staleness on intake latency: no submission
      observed for three windows while the hub keeps ticking.
    * ``intake_shedding`` — the auditor service's back-pressure turning
      submissions away at a sustained clip: either the token bucket ran
      dry or the intake queue filled (``service.shed`` counts both).
    * ``queue_saturated`` — the service intake queue above 90% of its
      bound for two consecutive rollups: the audit loop is not keeping
      up with arrivals and the next burst will shed.
    * ``honest_starvation`` — the fleet simulator's honest shed-ratio
      gauge above 30% for two consecutive rollups: back-pressure meant
      for flooders is landing on honest drones instead (the liveness
      half of the fleet invariants; the gauge only exists in
      fleet-driven runs, and threshold rules skip absent metrics).
    """
    return [
        MonitorRule(
            name="false_accept", metric="audit.false_accepts.cumulative",
            kind="threshold", op=">", threshold=0.0, severity=SEVERITY_PAGE,
            for_count=1, clear_count=10 ** 9,
            description="a violating flight was ACCEPTED"),
        MonitorRule(
            name="rejection_spike", metric="audit.rejections.rate",
            kind="ewma", sigma=4.0, warmup=6, min_delta=0.5,
            severity=SEVERITY_WARN,
            description="rejection rate anomaly vs EWMA baseline"),
        MonitorRule(
            name="retry_storm", metric="retry.retries.rate",
            kind="threshold", op=">", threshold=50.0, for_count=2,
            severity=SEVERITY_WARN,
            description="sustained retry rate above 50/s"),
        MonitorRule(
            name="zone_cache_degraded",
            metric="audit.zone_index.cache_hit_ratio",
            kind="threshold", op="<", threshold=0.5, for_count=3,
            severity=SEVERITY_WARN,
            description="zone-index cache hit ratio below 50%"),
        MonitorRule(
            name="intake_stalled", metric="audit.intake.seconds.count",
            kind="absence", max_age_s=3 * 60.0, severity=SEVERITY_WARN,
            description="no submissions observed for three windows"),
        MonitorRule(
            name="intake_shedding", metric="service.shed.rate",
            kind="threshold", op=">", threshold=1.0, for_count=2,
            severity=SEVERITY_WARN,
            description="service back-pressure shedding above 1/s"),
        MonitorRule(
            name="queue_saturated", metric="service.queue_fill_ratio",
            kind="threshold", op=">", threshold=0.9, for_count=2,
            severity=SEVERITY_WARN,
            description="service intake queue above 90% of capacity"),
        MonitorRule(
            name="honest_starvation", metric="fleet.honest.shed_ratio",
            kind="threshold", op=">", threshold=0.3, for_count=2,
            severity=SEVERITY_WARN,
            description="honest fleet traffic shed above 30%"),
    ]
