"""The live terminal dashboard: rolling rates, sparklines, firing alerts.

Pure string rendering over :class:`repro.obs.hub.TelemetryHub` rollups —
no curses, no threads, no wall-clock reads — so a frame is deterministic
given the rollup history and renders identically into CI logs, golden
tests, and a live terminal.  :class:`Dashboard` keeps per-metric rate
histories and renders one frame per tick; :class:`LiveTelemetrySession`
is the glue harnesses use: one object owning the hub, the monitor rules,
the optional rollup JSONL stream, and the frame sink, driven by a
virtual tick clock so a seeded run re-renders bit-identically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, TextIO

from repro.obs.hub import RollupWriter, TelemetryHub, flatten_rollup
from repro.obs.monitor import (
    SEVERITY_PAGE,
    Alert,
    MonitorEngine,
    MonitorRule,
    builtin_rules,
)
from repro.sim.events import EventLog

#: Eight-level bars; an empty slot renders as the lowest bar so a flat
#: zero series still draws a visible baseline.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ANSI escapes used when color is enabled.
ANSI_CLEAR = "\x1b[H\x1b[2J"
_ANSI_RED = "\x1b[31;1m"
_ANSI_YELLOW = "\x1b[33;1m"
_ANSI_DIM = "\x1b[2m"
_ANSI_RESET = "\x1b[0m"


def sparkline(values: list[float], width: int = 24) -> str:
    """Render the trailing ``width`` values as a unicode sparkline."""
    if width < 1:
        return ""
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    top = max(values)
    if top <= 0.0:
        return SPARK_CHARS[0] * len(values)
    steps = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(steps, int(round(v / top * steps)))] for v in values)


class Dashboard:
    """Accumulates rollup history and renders ANSI/plain-text frames."""

    def __init__(self, *, title: str = "alidrone telemetry",
                 width: int = 78, history: int = 24, color: bool = False):
        self.title = title
        self.width = int(width)
        self.history = int(history)
        self.color = bool(color)
        self._rate_history: dict[str, deque[float]] = {}
        self._rollup: dict[str, Any] | None = None
        self._firing: dict[str, Alert] = {}
        self.frames_rendered = 0

    def update(self, rollup: dict[str, Any],
               firing: dict[str, Alert] | None = None) -> None:
        """Fold one rollup (and the currently firing alerts) in."""
        self._rollup = rollup
        self._firing = dict(firing or {})
        for name, entry in rollup.get("counters", {}).items():
            self._rate_history.setdefault(
                name, deque(maxlen=self.history)).append(entry["rate"])

    def _paint(self, text: str, code: str) -> str:
        return f"{code}{text}{_ANSI_RESET}" if self.color else text

    def render(self) -> str:
        """One frame (no cursor control; see :meth:`frame` for that)."""
        self.frames_rendered += 1
        if self._rollup is None:
            return f"{self.title}\n  (no telemetry yet)"
        rollup = self._rollup
        lines = [f"{self.title} — t={rollup.get('t', 0.0):.1f}s "
                 f"window={rollup.get('window_s', 0.0):g}s"]
        lines.append("-" * min(self.width, len(lines[0])))

        counters = rollup.get("counters", {})
        if counters:
            lines.append("rates")
            name_w = max(len(n) for n in counters)
            for name in sorted(counters):
                entry = counters[name]
                spark = sparkline(list(self._rate_history.get(name, [])))
                lines.append(
                    f"  {name:<{name_w}}  {entry['cumulative']:>8g} total"
                    f"  {entry['rate']:>8.3f}/s  {spark}")

        quantiles = {name: entry
                     for name, entry in rollup.get("quantiles", {}).items()}
        if quantiles:
            lines.append("latency")
            name_w = max(len(n) for n in quantiles)
            for name in sorted(quantiles):
                entry = quantiles[name]
                if not entry.get("count"):
                    lines.append(f"  {name:<{name_w}}  (empty window)")
                    continue
                lines.append(
                    f"  {name:<{name_w}}  p50 {entry['p50']:.4g}"
                    f"  p95 {entry['p95']:.4g}  p99 {entry['p99']:.4g}"
                    f"  n={entry['count']}")

        gauges = rollup.get("gauges", {})
        if gauges:
            lines.append("gauges")
            name_w = max(len(n) for n in gauges)
            for name in sorted(gauges):
                lines.append(f"  {name:<{name_w}}  {gauges[name]:g}")

        stages = rollup.get("stages", {})
        if stages:
            lines.append("stages (mean seconds)")
            name_w = max(len(n) for n in stages)
            for name, entry in stages.items():
                lines.append(f"  {name:<{name_w}}  "
                             f"{entry.get('mean_seconds', 0.0):.6f}s"
                             f"  x{entry.get('runs', 0)}")

        lines.append(f"alerts ({len(self._firing)} firing)")
        if not self._firing:
            lines.append(self._paint("  none", _ANSI_DIM))
        for name in sorted(self._firing):
            alert = self._firing[name]
            code = (_ANSI_RED if alert.severity == SEVERITY_PAGE
                    else _ANSI_YELLOW)
            lines.append(self._paint(
                f"  [{alert.severity.upper()}] {name}: {alert.message}",
                code))
        return "\n".join(lines)

    def frame(self) -> str:
        """A frame prefixed with home+clear, for live terminal redraws."""
        return ANSI_CLEAR + self.render()


class LiveTelemetrySession:
    """Hub + monitor + dashboard + rollup stream behind one ``tick()``.

    Harness drivers (``alidrone chaos --dash``, ``alidrone dash``) call
    :meth:`tick` once per unit of completed work with a recorder
    callback; the session advances its virtual clock, lets the recorder
    feed the hub, rolls up, evaluates the alert rules, appends the
    rollup line, and renders a frame.  The virtual tick clock makes the
    whole pipeline — rates, EWMA baselines, alert edges, frames —
    deterministic for a seeded run.
    """

    def __init__(self, *, window_s: float = 60.0, buckets: int = 12,
                 tick_s: float = 5.0,
                 rules: list[MonitorRule] | None = None,
                 rollup_path: str | None = None,
                 stream: TextIO | None = None,
                 live: bool = False, color: bool = False,
                 title: str = "alidrone telemetry"):
        self.hub = TelemetryHub(window_s=window_s, buckets=buckets)
        self.events = EventLog()
        self.monitor = MonitorEngine(
            rules if rules is not None else builtin_rules(),
            events=self.events)
        self.dashboard = Dashboard(title=title, color=color)
        self.tick_s = float(tick_s)
        self.now = 0.0
        self.writer = RollupWriter(rollup_path) if rollup_path else None
        #: Frame sink; None disables rendering entirely.
        self.stream = stream
        #: Prefix frames with ANSI home+clear (a live terminal redraw)
        #: instead of appending frames (CI logs, files).
        self.live = bool(live)
        self.alerts: list[Alert] = []
        self.rollups: list[dict[str, Any]] = []

    def tick(self, record: Callable[[TelemetryHub, float], None] | None = None,
             ) -> dict[str, Any]:
        """One unit of work: record, roll up, evaluate, render.

        Returns the rollup document (also appended to :attr:`rollups`),
        extended with the alert state for this tick:
        ``alerts_fired`` (new edges), ``alerts_firing`` (active rule
        names), and ``rules_evaluated``.
        """
        self.now += self.tick_s
        if record is not None:
            record(self.hub, self.now)
        rollup = self.hub.rollup(self.now)
        fired = self.monitor.evaluate(flatten_rollup(rollup), self.now)
        self.alerts.extend(fired)
        rollup["alerts_fired"] = [alert.to_dict() for alert in fired]
        rollup["alerts_firing"] = sorted(self.monitor.firing)
        rollup["rules_evaluated"] = len(self.monitor.rules)
        self.rollups.append(rollup)
        if self.writer is not None:
            self.writer.write(rollup)
        self.dashboard.update(rollup, self.monitor.firing)
        if self.stream is not None:
            frame = (self.dashboard.frame() if self.live
                     else self.dashboard.render())
            print(frame, file=self.stream)
            self.stream.flush()
        return rollup

    def close(self) -> dict[str, Any]:
        """Finish the session; returns a JSON-ready summary."""
        if self.writer is not None:
            self.writer.close()
        return {
            "ticks": len(self.rollups),
            "alerts_fired": [alert.to_dict() for alert in self.alerts],
            "alerts_firing": sorted(self.monitor.firing),
            "rules_evaluated": len(self.monitor.rules),
            "rollup_lines": (self.writer.lines_written
                             if self.writer is not None else 0),
        }
