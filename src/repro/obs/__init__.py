"""``repro.obs`` — the unified telemetry layer.

End-to-end tracing, a snapshot metrics registry, and the streaming
fleet-scale layer: windowed time-series instruments
(:mod:`repro.obs.timeseries`), the rollup hub (:mod:`repro.obs.hub`),
SLO monitor rules (:mod:`repro.obs.monitor`), Prometheus exposition
(:mod:`repro.obs.prom`), and the live terminal dashboard
(:mod:`repro.obs.dash`).  See ``docs/OBSERVABILITY.md`` for the API
walkthrough, alert-rule catalogue, and exporter formats.
"""

from repro.obs.adapters import (
    register_event_log,
    register_fault_stats,
    register_link_stats,
    register_retry_stats,
    register_smc_stats,
    register_stage_metrics,
    register_zone_index_stats,
)
from repro.obs.dash import Dashboard, LiveTelemetrySession, sparkline
from repro.obs.export import (
    format_tree,
    read_spans_jsonl,
    spans_to_jsonl,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.hub import (
    RollupWriter,
    TelemetryHub,
    flatten_rollup,
    read_rollups_jsonl,
)
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    get_registry,
    quantile,
    set_registry,
)
from repro.obs.monitor import (
    Alert,
    MonitorEngine,
    MonitorRule,
    builtin_rules,
)
from repro.obs.prom import to_prometheus, validate_exposition
from repro.obs.timeseries import (
    QuantileSketch,
    WindowedCounter,
    WindowedRate,
    WindowedSketch,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NOOP_TRACER",
    "Alert",
    "CounterMetric",
    "Dashboard",
    "GaugeMetric",
    "HistogramMetric",
    "LiveTelemetrySession",
    "MetricsRegistry",
    "MonitorEngine",
    "MonitorRule",
    "NoopTracer",
    "QuantileSketch",
    "RollupWriter",
    "Span",
    "TelemetryHub",
    "Tracer",
    "WindowedCounter",
    "WindowedRate",
    "WindowedSketch",
    "builtin_rules",
    "flatten_rollup",
    "format_tree",
    "get_registry",
    "get_tracer",
    "quantile",
    "read_rollups_jsonl",
    "read_spans_jsonl",
    "register_event_log",
    "register_fault_stats",
    "register_link_stats",
    "register_retry_stats",
    "register_smc_stats",
    "register_stage_metrics",
    "register_zone_index_stats",
    "set_registry",
    "set_tracer",
    "spans_to_jsonl",
    "sparkline",
    "to_prometheus",
    "use_tracer",
    "validate_exposition",
    "write_metrics_json",
    "write_spans_jsonl",
]
