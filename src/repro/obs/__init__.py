"""``repro.obs`` — the unified telemetry layer.

End-to-end tracing plus a metrics registry for the whole PoA protocol:
drone sampling → TEE signing → link transmission → Auditor verification.
See ``docs/OBSERVABILITY.md`` for the API walkthrough and exporter
formats.
"""

from repro.obs.adapters import (
    register_event_log,
    register_fault_stats,
    register_link_stats,
    register_retry_stats,
    register_smc_stats,
    register_stage_metrics,
    register_zone_index_stats,
)
from repro.obs.export import (
    format_tree,
    read_spans_jsonl,
    spans_to_jsonl,
    write_metrics_json,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    get_registry,
    quantile,
    set_registry,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NOOP_TRACER",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "NoopTracer",
    "Span",
    "Tracer",
    "format_tree",
    "get_registry",
    "get_tracer",
    "quantile",
    "read_spans_jsonl",
    "register_event_log",
    "register_fault_stats",
    "register_link_stats",
    "register_retry_stats",
    "register_smc_stats",
    "register_stage_metrics",
    "register_zone_index_stats",
    "set_registry",
    "set_tracer",
    "spans_to_jsonl",
    "use_tracer",
    "write_metrics_json",
    "write_spans_jsonl",
]
