"""Prometheus text exposition for registry snapshots and hub rollups.

Renders the classic ``text/plain; version=0.0.4`` exposition format so a
registry snapshot (or a metrics-JSON file written by the CLI) can be
scraped or diffed with standard tooling:

* counters and gauges become one sample each;
* histogram snapshots become summaries (``{quantile="0.5"}`` samples
  plus ``_sum`` / ``_count``).

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``) — the repo's dotted names map dots to
underscores under an ``alidrone_`` namespace prefix.
:func:`validate_exposition` is the grammar checker the tests and the CI
smoke script run over the output.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\]*\")*)\})?"
    r" (?P<value>[^ ]+)$")
_COMMENT_LINE = re.compile(
    r"^# (?P<what>HELP|TYPE) (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<rest>.+)$")
_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}

#: Map from the repo's histogram-snapshot quantile keys to the
#: ``quantile`` label values Prometheus summaries use.
_QUANTILE_KEYS = (("p50", "0.5"), ("p90", "0.9"), ("p95", "0.95"),
                  ("p99", "0.99"))

DEFAULT_PREFIX = "alidrone_"


def prometheus_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """Sanitize a dotted metric name into the Prometheus grammar."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}{sanitized}"
    if not _NAME_OK.match(full):
        full = f"_{full}"
    return full


def _format_value(value: Any) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def to_prometheus(snapshot: Mapping[str, Mapping[str, Any]], *,
                  prefix: str = DEFAULT_PREFIX) -> str:
    """Render a ``MetricsRegistry.collect()`` snapshot as exposition text.

    Entries with unknown ``type`` are rendered as untyped gauges of
    their ``value`` when they carry one, and skipped otherwise — an
    exporter must never crash a scrape over one odd entry.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        full = prometheus_name(name, prefix)
        if kind == "counter":
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {_format_value(entry.get('value', 0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_format_value(entry.get('value', 0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {full} summary")
            for key, label in _QUANTILE_KEYS:
                if key in entry:
                    lines.append(f"{full}{{quantile=\"{label}\"}} "
                                 f"{_format_value(entry[key])}")
            lines.append(f"{full}_sum {_format_value(entry.get('sum', 0))}")
            lines.append(f"{full}_count "
                         f"{_format_value(entry.get('count', 0))}")
        elif "value" in entry:
            lines.append(f"# TYPE {full} untyped")
            lines.append(f"{full} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def validate_exposition(text: str) -> list[str]:
    """Grammar problems with an exposition document (empty = clean).

    Checks every line against the classic text-format grammar: comment
    lines declare HELP/TYPE for a valid metric name with a known type;
    sample lines are ``name[{labels}] value`` with parseable float
    values; every sample's name family has a preceding TYPE
    declaration (``_sum``/``_count`` resolve to their summary family).
    """
    problems: list[str] = []
    declared: set[str] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            problems.append(f"line {number}: blank line")
            continue
        if line.startswith("#"):
            match = _COMMENT_LINE.match(line)
            if match is None:
                problems.append(f"line {number}: malformed comment")
                continue
            if match.group("what") == "TYPE":
                if match.group("rest") not in _TYPES:
                    problems.append(f"line {number}: unknown type "
                                    f"{match.group('rest')!r}")
                declared.add(match.group("name"))
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample {line!r}")
            continue
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {number}: unparseable value "
                                f"{value!r}")
        family = match.group("name")
        for suffix in ("_sum", "_count", "_bucket"):
            if family.endswith(suffix) and family[:-len(suffix)] in declared:
                family = family[:-len(suffix)]
                break
        if family not in declared:
            problems.append(f"line {number}: sample {family!r} has no "
                            "TYPE declaration")
    return problems
