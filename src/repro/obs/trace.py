"""Execution tracing: explicit spans over the PoA protocol's hot paths.

One trace follows a unit of work across layers: a GPS sample from the
receiver read, through the Secure Monitor Call into the GPS Sampler TA's
signing, out over the link, and into the Auditor's stage-by-stage
verification.  Spans carry ids, parent links, monotonic start/end
timestamps, a status, and free-form attributes, so "where did this
sample's latency go?" is answerable from one export instead of four
ad-hoc accumulators.

The default tracer is a :class:`NoopTracer` — instrumented call sites pay
one module-level lookup and a no-op context manager when tracing is off
(the overhead benchmark ``benchmarks/bench_obs_overhead.py`` bounds the
cost).  Install a real :class:`Tracer` for one scope with
:func:`use_tracer`::

    with use_tracer(Tracer()) as tracer:
        with tracer.span("flight", policy="adaptive"):
            ...                     # nested call sites attach children
    print(format_tree(tracer.spans))

Worker pools cannot share a tracer's span stack; mirroring
:meth:`repro.perf.meter.StageMetrics.merge`, per-worker tracers fold into
one via :meth:`Tracer.merge`, and work timed off-thread is re-attached
with :meth:`Tracer.record_span` (the batch audit engine does this for its
crypto fan-out).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Span completion states.
STATUS_OK = "ok"
STATUS_ERROR = "error"

# Tracer instances get distinct id prefixes so spans merged from
# per-worker tracers can never collide.
_tracer_ids = itertools.count(1)
_tracer_ids_lock = threading.Lock()


@dataclass
class Span:
    """One timed operation in a trace."""

    name: str
    span_id: str
    trace_id: str
    parent_id: str | None
    start_s: float
    end_s: float | None = None
    status: str = STATUS_OK
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        """Wall time of the span, or None while it is still open."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable view (the JSONL export row)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span from its :meth:`to_dict` row."""
        return cls(name=data["name"], span_id=data["span_id"],
                   trace_id=data["trace_id"], parent_id=data.get("parent_id"),
                   start_s=data["start_s"], end_s=data.get("end_s"),
                   status=data.get("status", STATUS_OK),
                   attributes=dict(data.get("attributes") or {}))


class Tracer:
    """Collects spans; nesting follows an explicit active-span stack.

    Args:
        clock: monotonic time source (``time.perf_counter`` by default;
            injectable for deterministic tests).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        with _tracer_ids_lock:
            self._prefix = f"tr{next(_tracer_ids)}"
        self._clock = clock
        self._span_counter = itertools.count(1)
        self._trace_counter = itertools.count(1)
        self._stack: list[Span] = []
        #: Finished spans in completion order.
        self.spans: list[Span] = []

    # --- span lifecycle -----------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, parent: Span | None = None,
                   attributes: dict[str, Any] | None = None) -> Span:
        """Open a span (child of ``parent`` or of the current span)."""
        if parent is None:
            parent = self.current_span
        if parent is None:
            trace_id = f"{self._prefix}-t{next(self._trace_counter)}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(name=name,
                    span_id=f"{self._prefix}-s{next(self._span_counter)}",
                    trace_id=trace_id, parent_id=parent_id,
                    start_s=self._clock(),
                    attributes=dict(attributes or {}))
        self._stack.append(span)
        return span

    def end_span(self, span: Span, status: str | None = None) -> Span:
        """Close a span, pop it off the stack, and retain it."""
        span.end_s = self._clock()
        if status is not None:
            span.status = status
        if span in self._stack:
            # Pop through any children left open by non-local exits.
            while self._stack:
                if self._stack.pop() is span:
                    break
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Context manager: open a child span, close it on exit.

        An exception escaping the block marks the span ``error`` and
        propagates.
        """
        span = self.start_span(name, attributes=attributes)
        try:
            yield span
        except BaseException:
            self.end_span(span, status=STATUS_ERROR)
            raise
        self.end_span(span)

    def record_span(self, name: str, duration_s: float,
                    parent: Span | None = None,
                    attributes: dict[str, Any] | None = None,
                    status: str = STATUS_OK) -> Span:
        """Attach an already-timed operation as a completed span.

        For work measured off-thread (executor-pool tasks return their
        wall time); the span is synthesized as ending now and lasting
        ``duration_s``, parented like :meth:`start_span`.
        """
        span = self.start_span(name, parent=parent, attributes=attributes)
        self._stack.pop()
        span.start_s = self._clock() - duration_s
        span.end_s = span.start_s + duration_s
        span.status = status
        self.spans.append(span)
        return span

    # --- aggregation --------------------------------------------------------

    def merge(self, *others: "Tracer") -> "Tracer":
        """Fold other tracers' finished spans into this one (returns self).

        Span ids are globally unique across tracer instances, so merged
        traces keep their identity; this mirrors
        :meth:`repro.perf.meter.StageMetrics.merge` for the engine's
        per-worker accumulators.
        """
        for other in others:
            self.spans.extend(other.spans)
        return self

    def clear(self) -> None:
        """Drop all finished spans (long-lived tracers between exports)."""
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __bool__(self) -> bool:
        # Truthiness means "is tracing live?", not "are there spans yet?" —
        # without this an empty tracer is falsy via __len__, which reads
        # wrong in `if tracer:` guards at instrumented call sites.
        return True


class _NoopSpan:
    """The shared do-nothing span the noop tracer hands out."""

    __slots__ = ()
    name = "noop"
    span_id = trace_id = parent_id = None
    start_s = end_s = None
    duration_s = None
    status = STATUS_OK
    attributes: dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - debug aid
        return {"name": self.name}


NOOP_SPAN = _NoopSpan()


class _NoopSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP_CONTEXT = _NoopSpanContext()


class NoopTracer:
    """The default tracer: every operation is a near-free no-op."""

    enabled = False
    spans: tuple = ()
    current_span = None

    def span(self, name: str, **attributes: Any) -> _NoopSpanContext:
        return _NOOP_CONTEXT

    def start_span(self, name: str, parent: Span | None = None,
                   attributes: dict[str, Any] | None = None) -> _NoopSpan:
        return NOOP_SPAN

    def end_span(self, span: Any, status: str | None = None) -> _NoopSpan:
        return NOOP_SPAN

    def record_span(self, name: str, duration_s: float,
                    parent: Span | None = None,
                    attributes: dict[str, Any] | None = None,
                    status: str = STATUS_OK) -> _NoopSpan:
        return NOOP_SPAN

    def merge(self, *others: Any) -> "NoopTracer":
        return self

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __bool__(self) -> bool:
        return False


NOOP_TRACER = NoopTracer()

_active_tracer: Tracer | NoopTracer = NOOP_TRACER


def get_tracer() -> Tracer | NoopTracer:
    """The process-wide tracer instrumented call sites report into."""
    return _active_tracer


def set_tracer(tracer: Tracer | NoopTracer) -> Tracer | NoopTracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Scope a (new, by default) real tracer as the process-wide one."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
