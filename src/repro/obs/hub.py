"""The telemetry hub: named windowed instruments + periodic rollups.

A :class:`TelemetryHub` is the streaming counterpart of
:class:`repro.obs.metrics.MetricsRegistry`: where the registry answers
"what happened since start" from snapshot accumulators, the hub answers
"what is happening now" from :mod:`repro.obs.timeseries` ring buffers —
rates per second over the trailing window, windowed latency quantiles,
and live gauges — rolled up into one JSON-ready document per tick that
the monitor rules, the rollup JSONL stream, and the dashboard all
consume.

Producers (the audit engine, the chaos/adversary harnesses) record with
an explicit ``now``; the hub never reads a wall clock of its own, so a
sim-clock-driven run stays bit-deterministic.  Like the registry, the
hub is dependency-free: instrumented modules import it, never the other
way around.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, IO

from repro.errors import ConfigurationError
from repro.obs.timeseries import (
    DEFAULT_SKETCH_ALPHA,
    DEFAULT_WINDOW_BUCKETS,
    DEFAULT_WINDOW_S,
    WindowedCounter,
    WindowedSketch,
)


class TelemetryHub:
    """Named windowed counters, sketches, and gauges with one rollup view.

    Get-or-create accessors mirror the registry's: asking for an
    existing name with a different instrument kind raises
    :class:`~repro.errors.ConfigurationError`.  All instruments share
    the hub's window geometry so rollup rates are comparable.
    """

    def __init__(self, *, window_s: float = DEFAULT_WINDOW_S,
                 buckets: int = DEFAULT_WINDOW_BUCKETS,
                 alpha: float = DEFAULT_SKETCH_ALPHA):
        self.window_s = float(window_s)
        self.buckets = int(buckets)
        self.alpha = float(alpha)
        self._counters: dict[str, WindowedCounter] = {}
        self._sketches: dict[str, WindowedSketch] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        #: Extra rollup sections: name -> zero-arg callable returning a
        #: JSON-ready dict (e.g. a per-stage timing breakdown read from a
        #: live StageMetrics at rollup time).
        self._sections: dict[str, Callable[[], dict[str, Any]]] = {}

    # --- instruments --------------------------------------------------------

    def _check_free(self, name: str, kind: str) -> None:
        kinds = {"counter": self._counters, "sketch": self._sketches,
                 "gauge": self._gauges}
        for other, store in kinds.items():
            if other != kind and name in store:
                raise ConfigurationError(
                    f"telemetry instrument {name!r} already exists as "
                    f"a {other}")

    def counter(self, name: str) -> WindowedCounter:
        """Get or create a windowed counter."""
        counter = self._counters.get(name)
        if counter is None:
            self._check_free(name, "counter")
            counter = WindowedCounter(self.window_s, self.buckets)
            self._counters[name] = counter
        return counter

    def sketch(self, name: str) -> WindowedSketch:
        """Get or create a windowed quantile sketch."""
        sketch = self._sketches.get(name)
        if sketch is None:
            self._check_free(name, "sketch")
            sketch = WindowedSketch(self.window_s, self.buckets,
                                    alpha=self.alpha)
            self._sketches[name] = sketch
        return sketch

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) a callback-backed gauge."""
        self._check_free(name, "gauge")
        self._gauges[name] = fn

    def add_section(self, name: str,
                    fn: Callable[[], dict[str, Any]]) -> None:
        """Attach an extra rollup section produced at rollup time."""
        self._sections[name] = fn

    # --- recording shorthands ----------------------------------------------

    def mark(self, name: str, *, now: float, amount: float = 1.0) -> None:
        """Count an event on the named windowed counter."""
        self.counter(name).inc(amount, now=now)

    def observe(self, name: str, value: float, *, now: float) -> None:
        """Record a value on the named windowed sketch."""
        self.sketch(name).observe(value, now=now)

    def record_audit(self, *, seconds: float, status: str,
                     reason: str | None = None, samples: int = 0,
                     now: float) -> None:
        """One audited submission: the engine's per-intake feed.

        Records intake latency into ``audit.intake.seconds``, counts
        ``audit.submissions`` / ``audit.samples`` and the per-status
        ``audit.status.<status>`` counter, and — for any non-accepted
        status — ``audit.rejections`` plus the per-reason
        ``audit.rejections.<reason>`` breakdown.
        """
        self.observe("audit.intake.seconds", seconds, now=now)
        self.mark("audit.submissions", now=now)
        if samples:
            self.mark("audit.samples", now=now, amount=samples)
        self.mark(f"audit.status.{status}", now=now)
        if status != "accepted":
            self.mark("audit.rejections", now=now)
            if reason is not None:
                self.mark(f"audit.rejections.{reason}", now=now)

    # --- rollups ------------------------------------------------------------

    def rollup(self, now: float) -> dict[str, Any]:
        """One JSON-ready rollup of every instrument as of ``now``."""
        counters = {
            name: {"total": counter.total(now),
                   "rate": counter.rate(now),
                   "cumulative": counter.cumulative}
            for name, counter in sorted(self._counters.items())}
        quantiles = {name: sketch.summary(now)
                     for name, sketch in sorted(self._sketches.items())}
        gauges = {name: float(fn())
                  for name, fn in sorted(self._gauges.items())}
        document: dict[str, Any] = {
            "t": float(now),
            "window_s": self.window_s,
            "counters": counters,
            "quantiles": quantiles,
            "gauges": gauges,
        }
        for name, fn in sorted(self._sections.items()):
            document[name] = fn()
        return document


def flatten_rollup(rollup: dict[str, Any]) -> dict[str, float]:
    """Flatten a rollup into the ``metric path -> value`` map rules read.

    Counters contribute ``<name>.rate`` / ``<name>.total`` /
    ``<name>.cumulative``; sketches contribute ``<name>.count`` and (for
    non-empty windows) ``<name>.p50`` / ``.p90`` / ``.p95`` / ``.p99`` /
    ``.mean``; gauges contribute their bare name.  Empty-window quantile
    paths are *absent*, which is what lets absence/staleness rules see a
    quiet stream while threshold rules simply skip it.
    """
    flat: dict[str, float] = {}
    for name, entry in rollup.get("counters", {}).items():
        flat[f"{name}.rate"] = entry["rate"]
        flat[f"{name}.total"] = entry["total"]
        flat[f"{name}.cumulative"] = entry["cumulative"]
    for name, entry in rollup.get("quantiles", {}).items():
        flat[f"{name}.count"] = entry.get("count", 0)
        for key in ("p50", "p90", "p95", "p99", "mean"):
            if key in entry:
                flat[f"{name}.{key}"] = entry[key]
    for name, value in rollup.get("gauges", {}).items():
        flat[name] = value
    return flat


class RollupWriter:
    """Appends one sorted-keys JSON line per rollup (offline analysis).

    The stream is the durable counterpart of the dashboard: every tick
    of a long run lands as one line, so post-hoc tooling can replay rate
    and quantile histories without the process that produced them.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        self._fh: IO[str] | None = self.path.open("w")
        self.lines_written = 0

    def write(self, rollup: dict[str, Any]) -> None:
        """Append one rollup line (no-op after :meth:`close`)."""
        if self._fh is None:
            raise ConfigurationError("rollup writer is closed")
        self._fh.write(json.dumps(rollup, sort_keys=True) + "\n")
        self._fh.flush()
        self.lines_written += 1

    def close(self) -> None:
        """Flush and close the stream."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RollupWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_rollups_jsonl(path: str | pathlib.Path) -> list[dict[str, Any]]:
    """Parse a rollup JSONL stream back into dicts (writer round-trip)."""
    rollups = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            rollups.append(json.loads(line))
    return rollups
