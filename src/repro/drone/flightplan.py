"""Flight plans: geographic waypoint lists plus the query rectangle.

The Drone Operator's pre-flight artefact: where the drone intends to go,
and the bounding rectangle submitted in the zone query (paper §IV-B
step 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.errors import ConfigurationError
from repro.geo.geodesy import GeoPoint, LocalFrame
from repro.gps.replay import WaypointSource


@dataclass(frozen=True)
class FlightPlan:
    """An intended route through geographic waypoints."""

    waypoints: tuple[GeoPoint, ...]
    margin_m: float = 200.0  # padding around the route for the query rect

    def __init__(self, waypoints: Sequence[GeoPoint], margin_m: float = 200.0):
        if len(waypoints) < 2:
            raise ConfigurationError("a flight plan needs at least two waypoints")
        if margin_m < 0:
            raise ConfigurationError("margin must be non-negative")
        object.__setattr__(self, "waypoints", tuple(waypoints))
        object.__setattr__(self, "margin_m", float(margin_m))

    def query_rectangle(self, frame: LocalFrame) -> tuple[GeoPoint, GeoPoint]:
        """The two-corner navigation rectangle for the zone query."""
        xs, ys = zip(*(frame.to_local(p) for p in self.waypoints))
        low = frame.to_geo(min(xs) - self.margin_m, min(ys) - self.margin_m)
        high = frame.to_geo(max(xs) + self.margin_m, max(ys) + self.margin_m)
        return (low, high)

    def to_source(self, frame: LocalFrame, start_time: float,
                  kinematics: DroneKinematics | None = None,
                  hover_s: float = 0.0) -> WaypointSource:
        """Synthesize the flown trajectory for this plan."""
        local = [frame.to_local(p) for p in self.waypoints]
        return simulate_waypoint_flight(local, start_time,
                                        kinematics=kinematics, hover_s=hover_s)

    def local_waypoints(self, frame: LocalFrame) -> list[tuple[float, float]]:
        """The waypoints projected into ``frame``."""
        return [frame.to_local(p) for p in self.waypoints]

    def min_zone_clearance(self, zones, frame: LocalFrame,
                           samples_per_segment: int = 100) -> float:
        """Minimum distance from the planned polyline to any zone boundary.

        The B4UFLY-style pre-flight check: negative means the plan crosses
        a zone; small positive values mean the adaptive sampler will run
        hot near the boundary.  Returns ``inf`` with no zones.
        """
        from repro.drone.routing import route_clearance

        return route_clearance(self.local_waypoints(frame), zones, frame,
                               samples_per_segment=samples_per_segment)

    def is_compliant(self, zones, frame: LocalFrame,
                     clearance_m: float = 0.0) -> bool:
        """Whether the plan stays at least ``clearance_m`` clear of zones."""
        return self.min_zone_clearance(zones, frame) > clearance_m
