"""The Adapter: AliDrone's normal-world daemon (paper §IV-C2, §V-C).

The Adapter owns the sampling loop.  It reads the GPS receiver directly
(cheap, unauthenticated) to run the adaptive-sampling decision, calls the
GPS Sampler TA's ``GetGPSAuth`` through the TEE Client API when a signed
sample is needed, and encrypts the resulting PoA under the Auditor's
public key before persisting it.

It implements :class:`repro.core.sampling.SamplingHarness`, so either
sampling policy can drive it.
"""

from __future__ import annotations

import random

from repro.core.poa import EncryptedPoaRecord, ProofOfAlibi, SignedSample, encrypt_poa
from repro.core.samples import GpsSample
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.schemes import (
    SCHEME_BATCH,
    SCHEME_CHAIN,
    SCHEME_MERKLE,
    SCHEME_RSA,
)
from repro.errors import ConfigurationError, TeeError
from repro.faults.retry import RetryPolicy, RetryStats, execute_with_retry
from repro.gps.receiver import SimulatedGpsReceiver
from repro.obs.trace import get_tracer
from repro.sim.clock import SimClock
from repro.tee.attestation import TrustZoneDevice
from repro.tee.chained_sampler_ta import (
    CHAINED_SAMPLER_UUID,
    CMD_FINALIZE_FLIGHT,
    CMD_START_FLIGHT,
)
from repro.tee.gps_sampler_ta import CMD_GET_GPS_AUTH, GPS_SAMPLER_UUID


class Adapter:
    """Normal-world daemon wiring receiver, TEE client, and virtual clock.

    ``scheme`` selects the sample-authentication backend and therefore
    which TA the session targets: per-sample RSA (default) talks to the
    GPS Sampler TA, ``hash-chain`` to the chained sampler (one commitment
    at :meth:`start`, one closure at :meth:`finalize_flight`),
    ``rsa-batch`` to the batch sampler (empty per-sample blobs, one batch
    signature at finalize), and ``merkle-disclosure`` to the Merkle
    sampler (empty blobs, one root commitment at finalize).
    """

    def __init__(self, device: TrustZoneDevice, receiver: SimulatedGpsReceiver,
                 clock: SimClock, hash_name: str = "sha1",
                 retry_policy: RetryPolicy | None = None,
                 retry_rng: random.Random | None = None,
                 retry_stats: RetryStats | None = None,
                 scheme: str = SCHEME_RSA,
                 chain_seed: int | None = None):
        if scheme not in (SCHEME_RSA, SCHEME_BATCH, SCHEME_CHAIN,
                          SCHEME_MERKLE):
            raise ConfigurationError(
                f"unknown authentication scheme {scheme!r}")
        self.device = device
        self.receiver = receiver
        self.clock = clock
        self.hash_name = hash_name
        self.scheme = scheme
        self.chain_seed = chain_seed
        #: Retry discipline for transient TEE entry failures (busy secure
        #: world); None = single attempt, the historical behaviour.  Each
        #: failed attempt consumes virtual time, so the retried sample is
        #: taken at a (slightly) later instant — exactly what real
        #: hardware would produce.
        self.retry_policy = retry_policy
        self.retry_stats = retry_stats
        self._retry_rng = retry_rng if retry_rng is not None else random.Random(0)
        self._session_id: int | None = None
        self._samples_taken = 0

    # --- TEE session management ------------------------------------------

    def _sampler_uuid(self):
        if self.scheme == SCHEME_CHAIN:
            return CHAINED_SAMPLER_UUID
        if self.scheme == SCHEME_MERKLE:
            from repro.tee.merkle_sampler_ta import MERKLE_SAMPLER_UUID

            return MERKLE_SAMPLER_UUID
        if self.scheme == SCHEME_BATCH:
            from repro.extensions.batch_signing import BATCH_SAMPLER_UUID

            return BATCH_SAMPLER_UUID
        return GPS_SAMPLER_UUID

    def _auth_command(self) -> str:
        if self.scheme == SCHEME_BATCH:
            from repro.extensions.batch_signing import CMD_RECORD_GPS

            return CMD_RECORD_GPS
        return CMD_GET_GPS_AUTH

    def start(self) -> None:
        """Open the sampler TA session for this scheme (idempotent)."""
        if self._session_id is not None:
            return
        params: dict = {"hash_name": self.hash_name}
        if self.scheme == SCHEME_CHAIN and self.chain_seed is not None:
            params["chain_seed"] = self.chain_seed
        self._session_id = self.device.client.open_session(
            self._sampler_uuid(), params)
        self._samples_taken = 0
        if self.scheme in (SCHEME_CHAIN, SCHEME_MERKLE):
            # Flight start: the chained TA commits to the hash-chain
            # anchor; the Merkle TA opens its accumulation window.
            self.device.client.invoke(self._session_id, CMD_START_FLIGHT)

    def finalize_flight(self) -> bytes:
        """Close out the flight and return the scheme's finalizer blob.

        Per-sample RSA has none; the batch scheme returns its one trace
        signature (or nothing when no sample was ever taken); the chained
        scheme closes the chain and discloses the chain key.
        """
        if self._session_id is None:
            raise TeeError("Adapter not started: no TA session open")
        if self.scheme in (SCHEME_CHAIN, SCHEME_MERKLE):
            output = self.device.client.invoke(self._session_id,
                                               CMD_FINALIZE_FLIGHT)
            return bytes(output["finalizer"])
        if self.scheme == SCHEME_BATCH:
            if self._samples_taken == 0:
                return b""
            from repro.extensions.batch_signing import CMD_FINALIZE_BATCH

            output = self.device.client.invoke(self._session_id,
                                               CMD_FINALIZE_BATCH)
            return bytes(output["finalizer"])
        return b""

    def stop(self) -> None:
        """Close the TA session."""
        if self._session_id is not None:
            self.device.client.close_session(self._session_id)
            self._session_id = None

    # --- SamplingHarness -----------------------------------------------------

    def now(self) -> float:
        """Current virtual time."""
        return self.clock.now

    def advance_to(self, t: float) -> None:
        """Sleep until virtual time ``t``."""
        self.clock.advance_to(t)

    def read_gps(self) -> GpsSample | None:
        """``ReadGPS()``: latest receiver measurement, normal world, unsigned."""
        fix = self.receiver.fix_at(self.clock.now)
        if fix is None:
            return None
        return GpsSample(lat=fix.lat, lon=fix.lon, t=fix.time,
                         alt=fix.altitude_m)

    def next_update_after(self, t: float) -> float:
        """Next receiver update slot after ``t`` (missed slots included)."""
        return self.receiver.next_update_after(t)

    def next_fix_time_after(self, t: float) -> float:
        """Next surviving receiver update after ``t``."""
        return self.receiver.next_fix_after(t).time

    def get_gps_auth(self) -> SignedSample:
        """``GetGPSAuth()``: an authenticated sample from the secure world."""
        if self._session_id is None:
            raise TeeError("Adapter not started: no TA session open")
        command = self._auth_command()
        with get_tracer().span("drone.adapter.get_gps_auth"):
            output = execute_with_retry(
                lambda: self.device.client.invoke(self._session_id, command),
                clock=self.clock, policy=self.retry_policy,
                rng=self._retry_rng, stats=self.retry_stats,
                operation="get_gps_auth")
        self._samples_taken += 1
        return SignedSample.from_ta_output(output)

    # --- PoA persistence -------------------------------------------------------

    def encrypt_for_auditor(self, poa: ProofOfAlibi,
                            auditor_public_key: RsaPublicKey,
                            rng: random.Random | None = None,
                            ) -> list[EncryptedPoaRecord]:
        """Encrypt each sample payload under the Auditor's key (§V-C)."""
        return encrypt_poa(poa, auditor_public_key, rng=rng)
