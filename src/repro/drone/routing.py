"""NFZ-avoiding route planning over a discretized visibility graph.

After the zone response, the drone "can use the NFZ information to compute
a viable route to its destination" (paper §IV-B).  The planner inflates
every zone by a clearance margin, discretizes inflated boundaries into
candidate via-points, connects every pair of points whose straight segment
clears all inflated zones, and runs Dijkstra (networkx) on the result.

The discretized graph is within a small constant of the optimal tangent
graph for reasonable ``boundary_points`` and is dramatically simpler.
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from repro.core.nfz import NoFlyZone
from repro.errors import AliDroneError, ConfigurationError
from repro.geo.circle import Circle
from repro.geo.geodesy import LocalFrame

Point = tuple[float, float]


class RouteError(AliDroneError):
    """No NFZ-compliant route exists between the endpoints."""


def _segment_clears(a: Point, b: Point, circles: Sequence[Circle]) -> bool:
    return all(not c.intersects_segment(a, b) for c in circles)


def _boundary_nodes(circle: Circle, n: int) -> list[Point]:
    # Place via-points on the circumscribed regular n-gon (radius
    # r / cos(pi/n)) so the chord between adjacent points is tangent to —
    # never inside — the inflated circle, keeping boundary-following edges
    # collision-free.
    radius = circle.r / math.cos(math.pi / n) * 1.0005 + 1e-6
    return [(circle.x + radius * math.cos(2.0 * math.pi * k / n),
             circle.y + radius * math.sin(2.0 * math.pi * k / n))
            for k in range(n)]


def plan_route(start: Point, goal: Point, zones: Sequence[NoFlyZone],
               frame: LocalFrame, clearance_m: float = 30.0,
               boundary_points: int = 16) -> list[Point]:
    """A polyline from ``start`` to ``goal`` clearing every zone.

    Args:
        start, goal: local-frame endpoints in metres.
        zones: the Auditor's zone list.
        frame: projection frame for the zones.
        clearance_m: extra distance to keep from every zone boundary (the
            adaptive sampler needs headroom to stay sufficient).
        boundary_points: via-point density per inflated zone.

    Raises:
        RouteError: an endpoint is inside an inflated zone, or the graph
            is disconnected (the zones wall off the goal).
    """
    if boundary_points < 4:
        raise ConfigurationError("boundary_points must be at least 4")
    inflated = [Circle(c.x, c.y, c.r + clearance_m)
                for c in (z.to_circle(frame) for z in zones)]
    for name, point in (("start", start), ("goal", goal)):
        if any(c.contains(point) for c in inflated):
            raise RouteError(f"{name} point lies inside an inflated no-fly-zone")

    if _segment_clears(start, goal, inflated):
        return [start, goal]

    nodes: list[Point] = [start, goal]
    for circle in inflated:
        nodes.extend(p for p in _boundary_nodes(circle, boundary_points)
                     if not any(other.contains(p) for other in inflated
                                if other is not circle))

    graph = nx.Graph()
    graph.add_nodes_from(range(len(nodes)))
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            if _segment_clears(nodes[i], nodes[j], inflated):
                graph.add_edge(i, j, weight=math.dist(nodes[i], nodes[j]))

    try:
        path = nx.dijkstra_path(graph, 0, 1, weight="weight")
    except nx.NetworkXNoPath:
        raise RouteError("no NFZ-compliant route exists between the endpoints") from None
    return [nodes[i] for i in path]


def route_length(route: Sequence[Point]) -> float:
    """Total polyline length in metres."""
    return sum(math.dist(a, b) for a, b in zip(route, route[1:]))


def route_clearance(route: Sequence[Point], zones: Sequence[NoFlyZone],
                    frame: LocalFrame, samples_per_segment: int = 50) -> float:
    """The minimum distance from the route to any zone boundary.

    Sampled along each segment; positive values mean the route is clear.
    Returns ``inf`` when there are no zones.
    """
    circles = [z.to_circle(frame) for z in zones]
    if not circles:
        return math.inf
    worst = math.inf
    for a, b in zip(route, route[1:]):
        for k in range(samples_per_segment + 1):
            alpha = k / samples_per_segment
            p = (a[0] + alpha * (b[0] - a[0]), a[1] + alpha * (b[1] - a[1]))
            worst = min(worst, min(c.distance_to_boundary(p) for c in circles))
    return worst
