"""The drone side of AliDrone: Adapter daemon, client, motion, and routing."""

from repro.drone.adapter import Adapter
from repro.drone.client import AliDroneClient, FlightRecord
from repro.drone.kinematics import DroneKinematics, simulate_waypoint_flight
from repro.drone.flightplan import FlightPlan
from repro.drone.routing import plan_route, RouteError

__all__ = [
    "Adapter",
    "AliDroneClient",
    "FlightRecord",
    "DroneKinematics",
    "simulate_waypoint_flight",
    "FlightPlan",
    "plan_route",
    "RouteError",
]
