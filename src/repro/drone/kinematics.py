"""Drone motion: a point-mass kinematic model and waypoint flight synthesis.

The field studies emulate drone flight with a vehicle; the examples and
synthetic workloads instead fly a simulated drone.  The model is a
point mass with bounded speed and acceleration following straight segments
between waypoints — adequate because the protocol only consumes positions
and times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.gps.replay import WaypointSource
from repro.units import FAA_MAX_SPEED_MPS

Point = tuple[float, float]


@dataclass
class DroneKinematics:
    """Point-mass limits for a small commercial multirotor.

    Defaults approximate the paper's drone class (§II-A): up to 40 mph
    cruise, well under the FAA's 100 mph ceiling.
    """

    max_speed_mps: float = 17.9   # ~40 mph
    max_accel_mps2: float = 4.0

    def __post_init__(self) -> None:
        if self.max_speed_mps <= 0 or self.max_accel_mps2 <= 0:
            raise ConfigurationError("kinematic limits must be positive")
        if self.max_speed_mps > FAA_MAX_SPEED_MPS:
            raise ConfigurationError(
                "drone cannot be configured faster than the FAA limit")

    def segment_duration(self, length_m: float) -> float:
        """Time to fly a straight segment with trapezoidal speed profile.

        Accelerate at ``max_accel``, cruise at ``max_speed``, decelerate;
        degenerates to a triangular profile on short segments.
        """
        if length_m < 0:
            raise ConfigurationError("segment length must be non-negative")
        if length_m == 0:
            return 0.0
        accel_dist = self.max_speed_mps ** 2 / (2.0 * self.max_accel_mps2)
        if length_m >= 2.0 * accel_dist:
            cruise = (length_m - 2.0 * accel_dist) / self.max_speed_mps
            return 2.0 * self.max_speed_mps / self.max_accel_mps2 + cruise
        peak = math.sqrt(length_m * self.max_accel_mps2)
        return 2.0 * peak / self.max_accel_mps2

    def segment_positions(self, a: Point, b: Point, t0: float,
                          step_s: float = 0.1) -> list[tuple[float, float, float]]:
        """``(t, x, y)`` waypoints along the trapezoidal profile from a to b."""
        length = math.hypot(b[0] - a[0], b[1] - a[1])
        duration = self.segment_duration(length)
        if duration == 0.0:
            return [(t0, a[0], a[1])]
        points = []
        steps = max(1, int(math.ceil(duration / step_s)))
        for i in range(steps + 1):
            t = min(duration, i * step_s)
            s = self._distance_at(t, length, duration)
            alpha = s / length
            points.append((t0 + t, a[0] + alpha * (b[0] - a[0]),
                           a[1] + alpha * (b[1] - a[1])))
        return points

    def _distance_at(self, t: float, length: float, duration: float) -> float:
        accel_dist = self.max_speed_mps ** 2 / (2.0 * self.max_accel_mps2)
        if length >= 2.0 * accel_dist:
            t_acc = self.max_speed_mps / self.max_accel_mps2
            if t <= t_acc:
                return 0.5 * self.max_accel_mps2 * t * t
            if t <= duration - t_acc:
                return accel_dist + self.max_speed_mps * (t - t_acc)
            t_left = duration - t
            return length - 0.5 * self.max_accel_mps2 * t_left * t_left
        # Triangular profile.
        half = duration / 2.0
        if t <= half:
            return 0.5 * self.max_accel_mps2 * t * t
        t_left = duration - t
        return length - 0.5 * self.max_accel_mps2 * t_left * t_left


def simulate_waypoint_flight(waypoints: Sequence[Point], start_time: float,
                             kinematics: DroneKinematics | None = None,
                             hover_s: float = 0.0,
                             step_s: float = 0.1) -> WaypointSource:
    """Fly through local-frame waypoints; returns the trajectory source.

    Args:
        waypoints: at least two ``(x, y)`` points in metres.
        start_time: virtual departure time.
        kinematics: motion limits (defaults to a 40 mph multirotor).
        hover_s: pause at each intermediate waypoint.
        step_s: trajectory tabulation step.
    """
    if len(waypoints) < 2:
        raise ConfigurationError("a flight needs at least two waypoints")
    kinematics = kinematics or DroneKinematics()
    trajectory: list[tuple[float, float, float]] = []
    t = start_time
    for a, b in zip(waypoints, waypoints[1:]):
        segment = kinematics.segment_positions(a, b, t, step_s)
        if trajectory and segment and abs(segment[0][0] - trajectory[-1][0]) < 1e-9:
            segment = segment[1:]
        trajectory.extend(segment)
        t = trajectory[-1][0]
        if hover_s > 0 and b != waypoints[-1]:
            t += hover_s
            trajectory.append((t, b[0], b[1]))
    return WaypointSource(trajectory)
