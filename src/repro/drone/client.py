"""The AliDrone drone client: registration, zone query, flight, submission.

Binds together the operator's keypair ``D``, the TrustZone device with its
TEE keypair ``T``, the GPS receiver, and the Adapter, and speaks the
protocol of §IV-B end to end against any object implementing the Auditor
interface (see :class:`repro.server.auditor.AliDroneServer`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.nfz import NoFlyZone
from repro.core.poa import ProofOfAlibi
from repro.core.protocol import (
    DroneRegistrationRequest,
    PoaSubmission,
    ZoneQuery,
    ZoneResponse,
)
from repro.core.sampling import AdaptiveSampler, FixRateSampler, SamplingResult
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair
from repro.drone.adapter import Adapter
from repro.drone.flightplan import FlightPlan
from repro.errors import ProtocolError
from repro.faults.retry import RetryPolicy, RetryStats, execute_with_retry
from repro.geo.geodesy import LocalFrame
from repro.obs.trace import get_tracer
from repro.gps.receiver import SimulatedGpsReceiver
from repro.sim.clock import SimClock
from repro.sim.events import EventLog
from repro.tee.attestation import TrustZoneDevice
from repro.units import FAA_MAX_SPEED_MPS


class AuditorInterface(Protocol):
    """The subset of the Auditor the drone client talks to."""

    def register_drone(self, request: DroneRegistrationRequest) -> str:
        """Register a drone; returns its ``id_drone``."""
        ...  # pragma: no cover - protocol

    def handle_zone_query(self, query: ZoneQuery) -> ZoneResponse:
        """Answer a signed zone query."""
        ...  # pragma: no cover - protocol

    @property
    def public_encryption_key(self) -> RsaPublicKey:
        """The server key PoA payloads are encrypted under."""
        ...  # pragma: no cover - protocol


@dataclass
class FlightRecord:
    """Everything a completed flight produced on the drone."""

    flight_id: str
    policy: str
    result: SamplingResult
    zones: list[NoFlyZone]

    @property
    def poa(self) -> ProofOfAlibi:
        """The flight's Proof-of-Alibi."""
        return self.result.poa

    @property
    def events(self) -> EventLog:
        """The sampling event log."""
        return self.result.events


class AliDroneClient:
    """A registered drone able to fly and prove its alibi."""

    def __init__(self, device: TrustZoneDevice,
                 receiver: SimulatedGpsReceiver, clock: SimClock,
                 frame: LocalFrame,
                 operator_key: RsaPrivateKey | None = None,
                 operator_name: str = "",
                 vmax_mps: float = FAA_MAX_SPEED_MPS,
                 hash_name: str = "sha1",
                 rng: random.Random | None = None,
                 retry_policy: RetryPolicy | None = None,
                 tee_retry_policy: RetryPolicy | None = None,
                 retry_rng: random.Random | None = None):
        self.device = device
        self.receiver = receiver
        self.clock = clock
        self.frame = frame
        self.rng = rng or random.SystemRandom()
        self.operator_key = operator_key or generate_rsa_keypair(1024, rng=self.rng)
        self.operator_name = operator_name
        self.vmax_mps = float(vmax_mps)
        self.hash_name = hash_name
        #: Retry discipline for Auditor calls (None = single bare attempt,
        #: the historical behaviour).  Transient failures back off with
        #: decorrelated jitter on the *virtual* clock.
        self.retry_policy = retry_policy
        self.retry_stats = RetryStats()
        self._retry_rng = retry_rng if retry_rng is not None else random.Random(0)
        self.adapter = Adapter(device, receiver, clock, hash_name=hash_name,
                               retry_policy=tee_retry_policy,
                               retry_rng=self._retry_rng,
                               retry_stats=self.retry_stats)
        self.drone_id: str | None = None
        self._known_zones: list[NoFlyZone] = []
        self._flight_counter = 0

    def _with_retries(self, fn, operation: str):
        """Run one Auditor call under the client's retry policy."""
        return execute_with_retry(fn, clock=self.clock,
                                  policy=self.retry_policy,
                                  rng=self._retry_rng,
                                  stats=self.retry_stats,
                                  operation=operation)

    @property
    def operator_public_key(self) -> RsaPublicKey:
        """``D+``, shared with the Auditor at registration."""
        return self.operator_key.public_key

    @property
    def known_zones(self) -> list[NoFlyZone]:
        """Zones learned from the most recent zone response."""
        return list(self._known_zones)

    # --- protocol steps -----------------------------------------------------

    def register(self, auditor: AuditorInterface) -> str:
        """Step 0: register ``D+`` and ``T+``; stores the issued id.

        Retried under :attr:`retry_policy` when the Auditor fails
        transiently; safe because an unavailable Auditor rejects the
        request before creating the registration record.
        """
        request = DroneRegistrationRequest(
            operator_public_key=self.operator_public_key,
            tee_public_key=self.device.tee_public_key,
            operator_name=self.operator_name,
            quote=self.device.quote)
        self.drone_id = self._with_retries(
            lambda: auditor.register_drone(request), "register")
        return self.drone_id

    def query_zones(self, auditor: AuditorInterface,
                    plan: FlightPlan) -> list[NoFlyZone]:
        """Steps 2-3: fetch NFZs intersecting the plan's rectangle.

        Each retry attempt builds a *fresh* signed query: the nonce is
        single-use on the server (replay protection), so re-sending the
        original message would be indistinguishable from a replay attack
        if the first attempt was actually processed.
        """
        if self.drone_id is None:
            raise ProtocolError("drone is not registered with the Auditor")
        corner_a, corner_b = plan.query_rectangle(self.frame)

        def attempt() -> ZoneResponse:
            query = ZoneQuery.create(self.drone_id, corner_a, corner_b,
                                     self.operator_key, rng=self.rng)
            return auditor.handle_zone_query(query)

        response = self._with_retries(attempt, "query_zones")
        self._known_zones = response.zone_list
        return self.known_zones

    def fly(self, t_end: float, policy: str = "adaptive",
            fixed_rate_hz: float | None = None,
            zones: Sequence[NoFlyZone] | None = None,
            margin_updates: float = 2.0,
            degraded_mode: bool = False) -> FlightRecord:
        """Run one flight's sampling loop until virtual time ``t_end``.

        Args:
            t_end: end of the flight window.
            policy: ``"adaptive"`` (Algorithm 1) or ``"fixed"``.
            fixed_rate_hz: required when ``policy == "fixed"``.
            zones: override the zone list (defaults to the last response).
            margin_updates: adaptive safety margin (see the sampler).
            degraded_mode: adaptive policy only — grow the safety margin
                conservatively across GPS dropout gaps (see the sampler).
        """
        zone_list = list(zones) if zones is not None else self._known_zones
        if policy == "adaptive":
            sampler = AdaptiveSampler(zone_list, self.frame,
                                      vmax_mps=self.vmax_mps,
                                      gps_rate_hz=self.receiver.update_rate_hz,
                                      margin_updates=margin_updates,
                                      degraded_mode=degraded_mode)
            policy_name = "adaptive"
        elif policy == "fixed":
            if fixed_rate_hz is None:
                raise ProtocolError("fixed policy requires fixed_rate_hz")
            sampler = FixRateSampler(fixed_rate_hz)
            policy_name = f"fixed-{fixed_rate_hz:g}hz"
        else:
            raise ProtocolError(f"unknown sampling policy: {policy!r}")

        self._flight_counter += 1
        flight_id = f"{self.drone_id or 'unregistered'}-flight-{self._flight_counter:04d}"
        with get_tracer().span("drone.fly", flight_id=flight_id,
                               policy=policy_name, zones=len(zone_list)) as span:
            self.adapter.start()
            try:
                result = sampler.run(self.adapter, t_end)
            finally:
                self.adapter.stop()
            span.set_attribute("auth_samples", result.stats.auth_samples)
        return FlightRecord(flight_id=flight_id, policy=policy_name,
                            result=result, zones=zone_list)

    def build_submission(self, record: FlightRecord,
                         auditor_public_key: RsaPublicKey) -> PoaSubmission:
        """Step 4: encrypt the PoA and wrap it as a submission."""
        if self.drone_id is None:
            raise ProtocolError("drone is not registered with the Auditor")
        with get_tracer().span("drone.build_submission",
                               flight_id=record.flight_id,
                               samples=len(record.poa)):
            encrypted = self.adapter.encrypt_for_auditor(
                record.poa, auditor_public_key, rng=self.rng)
        stats = record.result.stats
        return PoaSubmission(drone_id=self.drone_id,
                             flight_id=record.flight_id,
                             records=encrypted,
                             claimed_start=stats.start_time,
                             claimed_end=stats.end_time)

    def submit_poa(self, auditor, record: FlightRecord):
        """Convenience: encrypt and submit in one call; returns the report.

        Retried under :attr:`retry_policy`.  The submission object is
        reused across attempts — intake is idempotent from the drone's
        side (the server either processed it or raised before any state
        changed), and re-encrypting would cost a full crypto pass.
        """
        submission = self.build_submission(record, auditor.public_encryption_key)
        return self._with_retries(
            lambda: auditor.receive_poa(submission), "submit_poa")

    def archive_flight(self, vault, record: FlightRecord,
                       auditor_public_key: RsaPublicKey):
        """Persist a flight's encrypted PoA to the local vault (§V-C).

        Returns the stored path; the flight can later be loaded and
        submitted with :meth:`submit_archived`.
        """
        submission = self.build_submission(record, auditor_public_key)
        return vault.store(record.flight_id, record.policy,
                           submission.claimed_start, submission.claimed_end,
                           submission.records)

    def submit_archived(self, auditor, vault, flight_id: str):
        """Load a vaulted flight and submit it; returns the report."""
        if self.drone_id is None:
            raise ProtocolError("drone is not registered with the Auditor")
        entry = vault.load(flight_id)
        submission = PoaSubmission(drone_id=self.drone_id,
                                   flight_id=entry.flight_id,
                                   records=entry.records,
                                   claimed_start=entry.claimed_start,
                                   claimed_end=entry.claimed_end)
        return auditor.receive_poa(submission)
