"""Unit conversions and physical constants used throughout the system.

The paper mixes units freely: NFZ radii in feet and miles, speeds in mph,
GPS rates in Hz.  Internally every geometric computation in :mod:`repro`
uses **metres** and **seconds**; this module is the single place where the
conversions and the FAA constants live.
"""

from __future__ import annotations

import math

# --- length ---------------------------------------------------------------

METERS_PER_FOOT = 0.3048
METERS_PER_MILE = 1609.344
FEET_PER_MILE = 5280.0

# --- speed ----------------------------------------------------------------

MPS_PER_MPH = METERS_PER_MILE / 3600.0  # 0.44704

# --- FAA constants (paper §IV-C1, §VI-A2) ----------------------------------

#: Maximum drone speed under FAA Part 107 (100 mph), in m/s.
FAA_MAX_SPEED_MPS = 100.0 * MPS_PER_MPH

#: FAA airport no-fly radius (5 miles), in metres.
FAA_AIRPORT_NFZ_RADIUS_M = 5.0 * METERS_PER_MILE

#: Commercial GPS receivers update at up to 5 Hz (paper §IV-C3).
GPS_MAX_UPDATE_RATE_HZ = 5.0

# --- earth model ------------------------------------------------------------

#: Mean earth radius (spherical model), metres.
EARTH_RADIUS_M = 6_371_008.8


def feet_to_meters(feet: float) -> float:
    """Convert feet to metres."""
    return feet * METERS_PER_FOOT


def meters_to_feet(meters: float) -> float:
    """Convert metres to feet."""
    return meters / METERS_PER_FOOT


def miles_to_meters(miles: float) -> float:
    """Convert statute miles to metres."""
    return miles * METERS_PER_MILE


def meters_to_miles(meters: float) -> float:
    """Convert metres to statute miles."""
    return meters / METERS_PER_MILE


def mph_to_mps(mph: float) -> float:
    """Convert miles-per-hour to metres-per-second."""
    return mph * MPS_PER_MPH


def mps_to_mph(mps: float) -> float:
    """Convert metres-per-second to miles-per-hour."""
    return mps / MPS_PER_MPH


def knots_to_mps(knots: float) -> float:
    """Convert knots (used by NMEA $GPRMC speed-over-ground) to m/s."""
    return knots * 1852.0 / 3600.0


def mps_to_knots(mps: float) -> float:
    """Convert m/s to knots."""
    return mps * 3600.0 / 1852.0


def degrees_to_radians(degrees: float) -> float:
    """Convert degrees to radians (thin wrapper for symmetry)."""
    return math.radians(degrees)


def radians_to_degrees(radians: float) -> float:
    """Convert radians to degrees (thin wrapper for symmetry)."""
    return math.degrees(radians)
