"""``alidrone`` — reproduce the paper's artefacts from the command line.

Subcommands:

* ``fig6``      — the airport field study (Fig. 6 headline + series)
* ``fig8``      — the residential field study (Fig. 8 a/b/c)
* ``table2``      — Table II (CPU / power / memory)
* ``simulate``    — a random scenario end to end through the verifier
* ``attacks``     — demonstrate that every forgery strategy is rejected
* ``audit-batch`` — run a synthetic submission fleet through the batch
  audit engine and report per-stage timing + throughput
* ``serve``       — drive the persistent sharded auditor service for N
  virtual ticks of Poisson fleet traffic (one-shot service smoke)
* ``metrics``     — export a metrics snapshot as JSON or Prometheus
  text exposition (``--prometheus``)
* ``dash``        — live windowed-telemetry dashboard over a chaos or
  attack run (``chaos``/``attack`` also take ``--dash`` /
  ``--rollup-jsonl`` directly)

All subcommands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Sequence


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.analysis.figures import fig6_cumulative_samples
    from repro.analysis.report import render_series
    from repro.workloads import build_airport_scenario, run_policy

    scenario = build_airport_scenario(seed=args.seed)
    fixed = run_policy(scenario, "fixed", 1.0, key_bits=args.key_bits,
                       seed=args.seed)
    adaptive = run_policy(scenario, "adaptive", key_bits=args.key_bits,
                          seed=args.seed)
    print("Fig. 6 — airport scenario")
    print(f"  1 Hz fix-rate : {fixed.sample_count} samples (paper: 649)")
    print(f"  adaptive      : {adaptive.sample_count} samples (paper: 14)")
    print(render_series("  adaptive series:",
                        fig6_cumulative_samples(adaptive),
                        "dist-to-NFZ (ft)", "total #samples"))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from repro.analysis.figures import (
        fig8a_nearest_distance,
        fig8b_instantaneous_rate,
    )
    from repro.analysis.report import render_series
    from repro.core.sufficiency import count_insufficient_pairs
    from repro.workloads import build_residential_scenario, run_policy

    scenario = build_residential_scenario(seed=args.seed)
    print("Fig. 8 — residential scenario (94 NFZs, r = 20 ft)")
    print(render_series("  (a) nearest NFZ distance:",
                        fig8a_nearest_distance(scenario, step_s=5.0),
                        "time (s)", "distance (ft)"))
    paper = {2.0: 39, 3.0: 9, 5.0: 1}
    print("  (c) insufficient PoA pairs:")
    for rate in (2.0, 3.0, 5.0):
        run = run_policy(scenario, "fixed", rate, key_bits=args.key_bits,
                         seed=args.seed)
        count = count_insufficient_pairs(
            [entry.sample for entry in run.result.poa], scenario.zones,
            scenario.frame)
        print(f"      {rate:g} Hz fix-rate: {count:3d}  (paper: {paper[rate]})")
    run = run_policy(scenario, "adaptive", key_bits=args.key_bits,
                     seed=args.seed)
    count = count_insufficient_pairs(
        [entry.sample for entry in run.result.poa], scenario.zones,
        scenario.frame)
    print(f"      adaptive      : {count:3d}  (paper: 1)")
    print(render_series("  (b) adaptive instantaneous rate:",
                        fig8b_instantaneous_rate(run), "time (s)",
                        "rate (Hz)"))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_table2
    from repro.analysis.tables import compute_table2

    rows = compute_table2(seed=args.seed,
                          include_scenarios=not args.fixed_only)
    print(render_table2(rows))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.core.sufficiency import count_insufficient_pairs
    from repro.core.verification import PoaVerifier
    from repro.obs import Tracer, use_tracer, write_spans_jsonl
    from repro.workloads import (
        build_national_scenario,
        build_random_scenario,
        run_policy,
    )

    if args.scenario == "national":
        scenario = build_national_scenario(seed=args.seed,
                                           n_zones=args.zones,
                                           corridor_length_m=args.corridor_m)
    else:
        scenario = build_random_scenario(seed=args.seed, n_zones=args.zones)
    print(f"scenario: {scenario.description}")
    print(f"  flight duration : {scenario.duration:.0f} s")
    tracing = use_tracer(Tracer()) if args.trace else nullcontext(None)
    with tracing as tracer:
        root = (tracer.span("simulate", seed=args.seed, zones=args.zones)
                if tracer is not None else nullcontext(None))
        with root:
            run = run_policy(scenario, args.policy, args.rate,
                             key_bits=args.key_bits, seed=args.seed)
            if tracer is not None:
                # The audit leg of the trace: the staged pipeline attaches
                # one child span per verification stage under "audit".
                with tracer.span("audit"):
                    PoaVerifier(scenario.frame).verify(
                        run.result.poa, run.device.tee_public_key,
                        scenario.zones)
    samples = [entry.sample for entry in run.result.poa]
    insufficient = count_insufficient_pairs(samples, scenario.zones,
                                            scenario.frame)
    verified = run.result.poa.verify_all(run.device.tee_public_key)
    print(f"  policy          : {run.policy_label}")
    print(f"  signed samples  : {run.sample_count}")
    print(f"  signatures OK   : {verified}")
    print(f"  insufficient    : {insufficient}")
    print(f"  verdict         : "
          f"{'compliant' if verified and insufficient == 0 else 'NOT PROVEN'}")
    if args.trace:
        path = write_spans_jsonl(args.trace, tracer.spans)
        print(f"  trace           : {len(tracer.spans)} spans -> {path}")
    return 0 if verified and insufficient == 0 else 1


def _cmd_attacks(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    # The attack walkthrough lives in examples/; reuse it when present,
    # otherwise run the minimal inline version.
    example = (pathlib.Path(__file__).resolve().parents[3] / "examples"
               / "rogue_drone_audit.py")
    if example.exists():
        spec = importlib.util.spec_from_file_location("rogue_demo", example)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    print("examples/rogue_drone_audit.py not found", file=sys.stderr)
    return 2


def _build_audit_fleet(*, seed: int, key_bits: int, submissions: int,
                       samples: int, drones: int, zones: int = 1,
                       workers: int = 1, executor: str = "thread",
                       scheme: str = "rsa-v15"):
    """A synthetic fleet: an auditor server plus signed, encrypted PoAs.

    The shared workload builder behind ``audit-batch`` and the synthetic
    arm of ``metrics``.  Returns ``(server, submissions, drone_list, t0)``
    — everything deterministic from ``seed``.  ``scheme`` selects the
    sample-authentication backend every flight is signed under.
    """
    import random as random_module

    from repro.core.nfz import NoFlyZone
    from repro.core.poa import ProofOfAlibi, SignedSample, encrypt_poa
    from repro.core.protocol import DroneRegistrationRequest, PoaSubmission
    from repro.core.samples import GpsSample
    from repro.crypto.rsa import generate_rsa_keypair
    from repro.crypto.schemes import authenticate_payloads
    from repro.geo.geodesy import GeoPoint, LocalFrame
    from repro.server.auditor import AliDroneServer

    rng = random_module.Random(seed)
    frame = LocalFrame(GeoPoint(40.10, -88.22))
    server = AliDroneServer(frame, rng=random_module.Random(seed + 1),
                            encryption_key_bits=key_bits,
                            audit_workers=workers,
                            audit_executor=executor)
    center = frame.to_geo(0.0, 0.0)
    server.zones.register(NoFlyZone(center.lat, center.lon, 50.0),
                          proof_of_ownership="synthetic")
    # Optional NFZ-database scale-up: extra zones laid out well away from
    # every synthetic trace so verdicts stay unchanged while the engine's
    # zone index has real work to prune.
    for i in range(1, zones):
        point = frame.to_geo(-600.0 - 150.0 * (i // 21),
                             ((i % 21) - 10) * 200.0)
        server.zones.register(NoFlyZone(point.lat, point.lon, 50.0),
                              proof_of_ownership="synthetic")

    drone_list = []
    for i in range(drones):
        tee_key = generate_rsa_keypair(key_bits,
                                       rng=random_module.Random(1000 + i))
        operator_key = generate_rsa_keypair(key_bits,
                                            rng=random_module.Random(2000 + i))
        drone_id = server.register_drone(DroneRegistrationRequest(
            operator_public_key=operator_key.public_key,
            tee_public_key=tee_key.public_key, operator_name=f"op-{i}"))
        drone_list.append((drone_id, tee_key))

    t0 = 1_700_000_000.0
    built = []
    for j in range(submissions):
        drone_id, tee_key = drone_list[j % len(drone_list)]
        start = t0 + 1000.0 * j
        payloads = []
        for k in range(samples):
            point = frame.to_geo(200.0 + 20.0 * k + rng.uniform(0, 5.0),
                                 10.0 * (j % 7))
            sample = GpsSample(lat=point.lat, lon=point.lon, t=start + k)
            payloads.append(sample.to_signed_payload())
        blobs, finalizer = authenticate_payloads(tee_key, payloads, scheme,
                                                 rng=rng)
        poa = ProofOfAlibi(
            (SignedSample(payload=payload, signature=blob, scheme=scheme)
             for payload, blob in zip(payloads, blobs)),
            scheme=scheme, finalizer=finalizer)
        records = encrypt_poa(poa, server.public_encryption_key, rng=rng)
        built.append(PoaSubmission(
            drone_id=drone_id, flight_id=f"flight-{j}", records=records,
            claimed_start=start, claimed_end=start + samples - 1,
            scheme=scheme, finalizer=finalizer))
    return server, built, drone_list, t0


def _cmd_audit_batch(args: argparse.Namespace) -> int:
    from repro.core.verification import VerificationStatus

    server, submissions, drones, t0 = _build_audit_fleet(
        seed=args.seed, key_bits=args.key_bits,
        submissions=args.submissions, samples=args.samples,
        drones=args.drones, zones=args.zones,
        workers=args.workers, executor=args.executor,
        scheme=args.scheme)

    from contextlib import nullcontext

    from repro.obs import (
        Tracer,
        use_tracer,
        write_metrics_json,
        write_spans_jsonl,
    )

    tracing = use_tracer(Tracer()) if args.trace else nullcontext(None)
    with tracing as tracer:
        result = server.receive_poa_batch(submissions, now=t0)
    counts: dict[str, int] = {}
    for outcome in result.outcomes:
        status = (outcome.report.status.value if outcome.report is not None
                  else "intake_error")
        counts[status] = counts.get(status, 0) + 1

    metrics = server.engine.metrics
    if args.json:
        payload = {
            "batch_size": result.batch_size,
            "samples_per_submission": args.samples,
            "drones": len(drones),
            "workers": result.workers,
            "executor": args.executor,
            "wall_time_s": result.wall_time_s,
            "submissions_per_second": result.submissions_per_second,
            "status_counts": counts,
            "outcomes": [
                {"flight_id": o.submission.flight_id,
                 "drone_id": o.submission.drone_id,
                 "status": (o.report.status.value if o.report is not None
                            else "intake_error"),
                 "sample_count": (o.report.sample_count
                                  if o.report is not None else 0),
                 "message": (o.report.message if o.report is not None
                             else str(o.error))}
                for o in result.outcomes],
            "stage_timing": {
                stage: {"runs": metrics.runs(stage),
                        "samples": metrics.total_samples(stage),
                        "total_seconds": metrics.total_seconds(stage),
                        "mean_seconds": metrics.timing(stage).mean,
                        "std_seconds": metrics.timing(stage).std}
                for stage in metrics.stages()},
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"audit-batch: {result.batch_size} submissions, "
              f"{args.samples} samples each, {len(drones)} drones, "
              f"{args.workers} worker(s) [{args.executor}]")
        for status in sorted(counts):
            print(f"  {status:<15} {counts[status]}")
        print(f"  wall time       {result.wall_time_s:.3f} s")
        print(f"  throughput      {result.submissions_per_second:.1f} "
              "submissions/s")
        print("per-stage timing:")
        for line in metrics.format().splitlines():
            print(f"  {line}")
    if args.metrics_json:
        path = write_metrics_json(args.metrics_json, server.bind_metrics())
        print(f"metrics snapshot -> {path}", file=sys.stderr)
    if args.trace:
        path = write_spans_jsonl(args.trace, tracer.spans)
        print(f"{len(tracer.spans)} spans -> {path}", file=sys.stderr)
    accepted = counts.get(VerificationStatus.ACCEPTED.value, 0)
    return 0 if accepted == result.batch_size else 1


def _live_session(args: argparse.Namespace, title: str,
                  stream=None):
    """Build the optional telemetry session behind ``--dash`` and
    ``--rollup-jsonl`` (None when neither flag was given)."""
    from repro.obs.dash import LiveTelemetrySession

    dash = getattr(args, "dash", False)
    rollup = getattr(args, "rollup_jsonl", None)
    if not dash and not rollup:
        return None
    sink = stream if stream is not None else sys.stderr
    interactive = dash and sink.isatty()
    return LiveTelemetrySession(
        rollup_path=rollup,
        stream=sink if dash else None,
        live=interactive, color=interactive,
        title=title)


def _telemetry_epilogue(session, file=sys.stderr) -> dict:
    """Close a live session and print its one-line summary."""
    summary = session.close()
    fired = summary["alerts_fired"]
    firing = summary["alerts_firing"]
    print(f"telemetry: {summary['ticks']} tick(s), "
          f"{summary['rules_evaluated']} rule(s), "
          f"{len(fired)} alert(s) fired"
          + (f" [firing: {', '.join(firing)}]" if firing else "")
          + (f", rollups -> {session.writer.path}"
             if session.writer is not None else ""),
          file=file)
    return summary


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import record_cell_telemetry, run_matrix
    from repro.faults.plan import builtin_plans
    from repro.workloads import build_random_scenario, build_violation_scenario

    available = builtin_plans(args.seed)
    if args.plans:
        unknown = [name for name in args.plans if name not in available]
        if unknown:
            print(f"alidrone: unknown fault plan(s): {', '.join(unknown)}; "
                  f"available: {', '.join(sorted(available))}",
                  file=sys.stderr)
            return 2
        plans = [available[name] for name in args.plans]
    else:
        plans = list(available.values())

    scenarios = []
    for name in args.scenarios:
        if name == "compliant":
            scenarios.append((build_random_scenario(
                seed=args.seed, n_zones=args.zones), False))
        else:
            scenarios.append((build_violation_scenario(seed=args.seed), True))

    session = _live_session(args, "alidrone chaos")
    on_cell = None
    if session is not None:
        def on_cell(cell):
            session.tick(lambda hub, now:
                         record_cell_telemetry(hub, cell, now=now))

    report = run_matrix(scenarios, plans, seed=args.seed,
                        key_bits=args.chaos_key_bits,
                        liveness_budget_s=args.budget_s,
                        on_cell=on_cell)
    if session is not None:
        _telemetry_epilogue(session)
    payload = report.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"chaos report -> {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"chaos: {len(report.cells)} cells "
              f"({len(scenarios)} scenario(s) x {len(plans)} plan(s))")
        for cell in report.cells:
            flags = []
            if cell.violation:
                flags.append("violation")
            if cell.degraded_decisions:
                flags.append(f"degraded x{cell.degraded_decisions}")
            if cell.retransmissions:
                flags.append(f"rexmit x{cell.retransmissions}")
            note = f"  [{', '.join(flags)}]" if flags else ""
            print(f"  {cell.scenario:<16} {cell.plan:<15} "
                  f"{cell.status:<15} "
                  f"recov {cell.recovery_latency_s:6.2f}s{note}")
        inv = payload["invariants"]
        print(f"  false accepts     : {len(inv['false_accepts'])}")
        print(f"  liveness failures : {len(inv['liveness_failures'])}")
        print(f"  no-op path same   : {inv['noop_path_identical']}")
        print(f"  verdict           : {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.adversary import AttackStats, run_matrix
    from repro.adversary.matrix import record_cell_telemetry
    from repro.conformance import run_differential
    from repro.obs.adapters import register_attack_stats
    from repro.obs.export import write_metrics_json
    from repro.obs.metrics import MetricsRegistry
    from repro.workloads.synthetic import build_violation_variants

    session = _live_session(args, "alidrone attack")
    on_cell = None
    if session is not None:
        def on_cell(cell):
            session.tick(lambda hub, now:
                         record_cell_telemetry(hub, cell, now=now))

    stats = AttackStats()
    matrix = run_matrix(
        scenarios=build_violation_variants(args.seed),
        seed=args.seed, key_bits=args.attack_key_bits, stats=stats,
        scheme=args.scheme, on_cell=on_cell)
    if session is not None:
        _telemetry_epilogue(session)
    conformance = run_differential(
        trajectories=args.trajectories, seed=args.seed,
        key_bits=args.attack_key_bits, scheme=args.scheme)
    payload = {
        "matrix": matrix.to_dict(),
        "conformance": conformance.to_dict(),
        "ok": matrix.ok and conformance.ok,
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"attack report -> {args.out}", file=sys.stderr)
    if args.metrics_json:
        registry = MetricsRegistry()
        register_attack_stats(registry, stats)
        path = write_metrics_json(args.metrics_json, registry)
        print(f"metrics snapshot -> {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"attack matrix: {len(matrix.cells)} cells "
              f"({len(matrix.config['attacks'])} attack(s) x "
              f"{len(matrix.config['scenarios'])} scenario(s), "
              f"scheme {matrix.config['scheme']})")
        for cell in matrix.cells:
            mark = "ok" if cell.expected_ok else \
                f"UNEXPECTED (wanted {', '.join(sorted(cell.expected))})"
            print(f"  {cell.attack:<22} {cell.scenario:<22} "
                  f"{cell.result.outcome:<22} {mark}")
        inv = matrix.invariants
        conf = conformance
        print(f"  false accepts       : {len(inv['false_accepts'])}")
        print(f"  unexpected outcomes : {len(inv['unexpected_outcomes'])}")
        print(f"  control failures    : {len(inv['control_failures'])}")
        print(f"  conformance         : {conf.honest_agreements}"
              f"/{conf.honest_trials} honest, "
              f"{conf.mutated_agreements}/{conf.mutated_trials} mutated, "
              f"{conf.index_agreements}/{conf.index_trials} index-equiv")
        print(f"  verdict             : "
              f"{'OK' if payload['ok'] else 'FAILED'}")
    return 0 if payload["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """One-shot drive of the persistent auditor service.

    Builds a Poisson fleet, then steps the virtual clock one second per
    tick: due arrivals go through the bounded/token-bucket intake, each
    tick's queue is drained through the shard engines, and a telemetry
    rollup is evaluated against the builtin monitor rules.  Prints a
    JSON summary (``--json``) or a prose digest; exit 0 iff the store is
    fully audited with no intake errors and no page-severity alerts.
    """
    import random as random_module

    from repro.core.nfz import NoFlyZone
    from repro.core.protocol import DroneRegistrationRequest
    from repro.crypto.rsa import generate_rsa_keypair
    from repro.geo.geodesy import GeoPoint, LocalFrame
    from repro.obs.hub import TelemetryHub, flatten_rollup
    from repro.obs.monitor import MonitorEngine, builtin_rules
    from repro.server.service import AuditorService
    from repro.server.store import INTAKE_ERROR_STATUS
    from repro.sim.clock import DEFAULT_EPOCH
    from repro.workloads.fleet import poisson_arrivals, provision_fleet

    frame = LocalFrame(GeoPoint(40.1000, -88.2200))
    encryption_key = generate_rsa_keypair(
        args.key_bits, rng=random_module.Random(args.seed + 77))
    hub = TelemetryHub(window_s=max(float(args.ticks), 1.0))
    monitor = MonitorEngine(builtin_rules())
    service = AuditorService(
        frame, args.store, shards=args.shards,
        queue_capacity=args.queue_capacity,
        admission_rate_per_s=args.admission_rate,
        admission_burst=args.admission_burst,
        encryption_key=encryption_key, telemetry=hub)
    center = frame.to_geo(0.0, 0.0)
    service.register_zone(NoFlyZone(center.lat, center.lon, 50.0))

    def register(operator_public, tee_public, name):
        # A durable --store already holds the fleet on a re-run; reuse
        # the issued ids instead of tripping the uniqueness constraint.
        existing = service.store.find_drone_by_tee(tee_public)
        if existing is not None:
            return existing.drone_id
        return service.register_drone(DroneRegistrationRequest(
            operator_public_key=operator_public, tee_public_key=tee_public,
            operator_name=name))

    fleet = provision_fleet(register, drones=args.drones,
                            key_bits=args.key_bits, seed=args.seed,
                            regions=args.regions)
    replayed = service.recover(now=DEFAULT_EPOCH)
    arrivals = poisson_arrivals(
        fleet, service.public_encryption_key, frame=frame, seed=args.seed,
        rate_hz=args.rate, duration_s=float(args.ticks),
        samples=args.samples, scheme=args.scheme)

    alerts = []
    cursor = 0
    for tick in range(1, args.ticks + 1):
        now = DEFAULT_EPOCH + float(tick)
        while cursor < len(arrivals) and arrivals[cursor].at <= now:
            arrival = arrivals[cursor]
            service.submit(arrival.submission, now=arrival.at,
                           region=arrival.region)
            cursor += 1
        service.drain(now=now)
        for alert in monitor.evaluate(flatten_rollup(hub.rollup(now)), now):
            alerts.append({"rule": alert.rule, "severity": alert.severity,
                           "t": alert.fired_at})
    end = DEFAULT_EPOCH + float(args.ticks)
    service.drain(now=end)

    status_counts: dict[str, int] = {}
    for _stored, verdict in service.audited_submissions():
        status_counts[verdict.status] = status_counts.get(verdict.status,
                                                          0) + 1
    intake_summary = hub.sketch("audit.intake.seconds").summary(end)
    store_summary = hub.sketch("service.store.seconds").summary(end)
    stats = service.stats.to_dict()
    payload = {
        "ticks": args.ticks,
        "rate_hz": args.rate,
        "scheme": args.scheme,
        "shards": args.shards,
        "drones": args.drones,
        "samples_per_submission": args.samples,
        "queue_capacity": args.queue_capacity,
        "admission_rate_per_s": args.admission_rate,
        "arrivals": len(arrivals),
        "replayed_on_start": replayed,
        "stats": stats,
        "status_counts": status_counts,
        "queue_depth_final": service.queue_depth,
        "store": {"path": service.store.path,
                  "submissions": service.store.submission_count(),
                  "verdicts": service.store.verdict_count(),
                  "pending": service.store.pending_count()},
        "intake_p99_s": intake_summary.get("p99"),
        "store_p99_s": store_summary.get("p99"),
        "payload_cache": {
            "hits": sum(e.payload_cache_hits for e in service.engines),
            "misses": sum(e.payload_cache_misses for e in service.engines)},
        "alerts": alerts,
    }
    ok = (service.store.pending_count() == 0
          and service.queue_depth == 0
          and stats["intake_errors"] == 0
          and status_counts.get(INTAKE_ERROR_STATUS, 0) == 0
          and not any(a["severity"] == "page" for a in alerts))
    payload["ok"] = ok
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"serve: {args.ticks} tick(s), {len(arrivals)} arrival(s), "
              f"{args.shards} shard(s)")
        print(f"  accepted        {stats['accepted']}")
        print(f"  deduplicated    {stats['deduplicated']}")
        print(f"  shed            {stats['shed']} "
              f"(rate {stats['shed_rate_limited']}, "
              f"queue {stats['shed_queue_full']})")
        print(f"  audited         {stats['audited']} "
              f"(per shard {stats['per_shard_audited']})")
        for status in sorted(status_counts):
            print(f"    {status:<15} {status_counts[status]}")
        if payload["intake_p99_s"] is not None:
            print(f"  intake p99      {payload['intake_p99_s'] * 1e3:.2f} ms")
        if payload["store_p99_s"] is not None:
            print(f"  store p99       {payload['store_p99_s'] * 1e3:.2f} ms")
        print(f"  alerts          {len(alerts)}")
        print(f"  verdict         {'OK' if ok else 'FAILED'}")
    service.close()
    return 0 if ok else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Hostile-traffic fleet simulation with invariant checking.

    Runs a :class:`repro.fleetsim.FleetMix` of interleaved honest,
    chaos-degraded, adversarial, and flooding traffic against the
    persistent auditor service behind the selected admission policy.
    Prints the deterministic fleet report (plus a non-deterministic
    ``timing`` block) as JSON (``--json``) or a prose digest; exit 0
    iff every fleet invariant held (zero false accepts, honest
    liveness, flood containment, exactly-once verdicts).
    """
    from repro.fleetsim import FleetMix, FleetSimulator

    schemes = tuple(s.strip() for s in args.schemes.split(",") if s.strip())
    mix = FleetMix(drones=args.drones, flooders=args.flooders,
                   duration_s=float(args.duration),
                   honest_rate_hz=args.honest_rate,
                   chaos_rate_hz=args.chaos_rate,
                   adversary_rate_hz=args.attack_rate,
                   flood_burst_per_s=args.flood_burst,
                   flood_period_s=args.flood_period,
                   samples=args.samples, regions=args.regions,
                   schemes=schemes, seed=args.seed,
                   key_bits=args.key_bits)
    simulator = FleetSimulator(
        mix, store=args.store, shards=args.shards,
        queue_capacity=args.queue_capacity, policy=args.policy,
        admission_rate_per_s=args.admission_rate,
        admission_burst=args.admission_burst,
        max_honest_shed=args.max_honest_shed)
    result = simulator.run()
    report = result.report
    payload = report.to_dict()
    payload["timing"] = result.timing
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"fleet: {args.drones} drone(s), {report.events_total} "
              f"event(s), policy {report.policy}")
        for name in sorted(report.classes):
            stats = report.classes[name]
            print(f"  {name:<10} submitted {stats.submitted:>6}  "
                  f"accepted {stats.accepted:>6}  dedup "
                  f"{stats.deduplicated:>6}  shed {stats.shed:>6}")
        print(f"  honest shed ratio  {report.honest_shed_ratio:.3f}")
        print(f"  flood turned away  {report.flood_turned_away_ratio:.3f}")
        print(f"  false accepts      {len(report.false_accepts)}")
        for name in sorted(report.invariants):
            held = "ok" if report.invariants[name] else "BREACHED"
            print(f"    {name:<26} {held}")
        print(f"  verdict            {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_disclosure(args: argparse.Namespace) -> int:
    """Selective-disclosure differential sweep (decision equivalence).

    Sweeps honest and non-compliant Merkle-committed flights through the
    honest disclosure policy plus four adversarial disclosure policies,
    checking that honest verdicts are decision-identical to full-trace
    verdicts and that no disclosure ever converts a full-trace REJECT
    into an ACCEPT.  Exit 0 iff every invariant held.
    """
    from repro.privacy.differential import run_disclosure_differential

    report = run_disclosure_differential(
        trajectories=args.trajectories, seed=args.seed,
        key_bits=args.key_bits, max_zones=args.zones)
    payload = report.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"disclosure report -> {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"disclosure differential: {report.trajectories} trajectories")
        print(f"  honest decision matches : "
              f"{report.honest_decision_matches}/{report.honest_trials} "
              f"({report.honest_accepts} accepted)")
        print(f"  rejects preserved       : "
              f"{report.bad_rejects_preserved}/{report.bad_trials}")
        for policy, outcome in report.adversarial_outcomes.items():
            print(f"  {policy:<24}: {outcome['trials']} trial(s), "
                  f"{outcome['false_accepts']} false accept(s)")
        print(f"  revealed samples        : {report.revealed_samples}"
              f"/{report.total_samples}")
        print(f"  bandwidth reduction     : "
              f"{report.bandwidth_reduction:.2f}x vs rsa-v15 full trace")
        print(f"  verdict                 : "
              f"{'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.prom import to_prometheus, validate_exposition

    if args.from_json:
        with open(args.from_json) as fh:
            snapshot = json.load(fh)
        if not isinstance(snapshot, dict):
            print("alidrone: metrics JSON must be an object of "
                  "{name: snapshot} entries", file=sys.stderr)
            return 2
    else:
        # A tiny synthetic batch, just enough to populate every adapter.
        server, submissions, _drones, t0 = _build_audit_fleet(
            seed=args.seed, key_bits=args.key_bits,
            submissions=4, samples=4, drones=2)
        server.receive_poa_batch(submissions, now=t0)
        snapshot = server.bind_metrics().collect()

    if args.prometheus:
        text = to_prometheus(snapshot)
        problems = validate_exposition(text)
        if problems:
            for problem in problems:
                print(f"alidrone: exposition: {problem}", file=sys.stderr)
            return 1
        sys.stdout.write(text)
    else:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.dash import LiveTelemetrySession

    interactive = not args.plain and sys.stdout.isatty()
    session = LiveTelemetrySession(
        rollup_path=args.rollup_jsonl,
        stream=sys.stdout, live=interactive, color=interactive,
        title=f"alidrone dash [{args.run}]")

    if args.run == "chaos":
        from repro.faults.chaos import record_cell_telemetry, run_matrix
        from repro.faults.plan import builtin_plans
        from repro.workloads import (
            build_random_scenario,
            build_violation_scenario,
        )

        available = builtin_plans(args.seed)
        if args.plans:
            unknown = [name for name in args.plans if name not in available]
            if unknown:
                print(f"alidrone: unknown fault plan(s): "
                      f"{', '.join(unknown)}; available: "
                      f"{', '.join(sorted(available))}", file=sys.stderr)
                return 2
            plans = [available[name] for name in args.plans]
        else:
            plans = list(available.values())
        scenarios = [(build_random_scenario(seed=args.seed, n_zones=4),
                      False),
                     (build_violation_scenario(seed=args.seed), True)]
        report = run_matrix(
            scenarios, plans, seed=args.seed, key_bits=512,
            on_cell=lambda cell: session.tick(
                lambda hub, now: record_cell_telemetry(hub, cell, now=now)))
        ok = report.ok
    else:
        from repro.adversary.matrix import record_cell_telemetry, run_matrix

        report = run_matrix(
            seed=args.seed, key_bits=512,
            on_cell=lambda cell: session.tick(
                lambda hub, now: record_cell_telemetry(hub, cell, now=now)))
        ok = report.ok

    summary = _telemetry_epilogue(session, file=sys.stdout)
    page_alerts = [alert for alert in summary["alerts_fired"]
                   if alert["severity"] == "page"]
    print(f"verdict: {'OK' if ok and not page_alerts else 'FAILED'}")
    return 0 if ok and not page_alerts else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.workloads import (
        build_airport_scenario,
        build_residential_scenario,
    )
    from repro.workloads.export import scenario_to_geojson_str

    builders = {"airport": build_airport_scenario,
                "residential": build_residential_scenario}
    scenario = builders[args.scenario](seed=args.seed)
    text = scenario_to_geojson_str(scenario, track_step_s=args.step)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.scenario} scenario "
              f"({len(scenario.zones)} zones) to {args.out}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.analysis.calibration import calibrate_local_cost_model
    from repro.analysis.report import render_table2
    from repro.analysis.tables import compute_table2
    from repro.perf.costs import RASPBERRY_PI_3

    model = calibrate_local_cost_model(repetitions=args.repetitions,
                                       seed=args.seed)
    print("local per-operation costs (vs the Table-II-calibrated Pi):")
    for bits in sorted(model.sign_seconds):
        local = model.sign_seconds[bits]
        pi = RASPBERRY_PI_3.sign_cost(bits)
        print(f"  RSA-{bits} sign : {local * 1e3:8.2f} ms   "
              f"(Pi: {pi * 1e3:.1f} ms, {pi / local:.0f}x slower)")
    print(f"  SMC round trip : {model.smc_round_trip_seconds * 1e6:8.1f} us")
    print(f"  max sustainable rate @2048b: "
          f"{model.sustainable_rate_hz(2048):.0f} Hz "
          f"(Pi: {RASPBERRY_PI_3.sustainable_rate_hz(2048):.1f} Hz)")
    print("\nTable II re-predicted for THIS machine:")
    print(render_table2(compute_table2(costs=model, seed=args.seed,
                                       include_scenarios=False)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="alidrone",
        description="AliDrone (ICDCS 2018) reproduction toolkit")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed (default 0)")
    parser.add_argument("--key-bits", type=int, default=1024,
                        choices=(512, 1024, 2048),
                        help="TEE sign key size (default 1024)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig6", help="airport field study").set_defaults(
        handler=_cmd_fig6)
    sub.add_parser("fig8", help="residential field study").set_defaults(
        handler=_cmd_fig8)
    table2 = sub.add_parser("table2", help="CPU/power/memory table")
    table2.add_argument("--fixed-only", action="store_true",
                        help="skip the slower field-study rows")
    table2.set_defaults(handler=_cmd_table2)

    simulate = sub.add_parser("simulate",
                              help="random scenario through the verifier")
    simulate.add_argument("--zones", type=int, default=12)
    simulate.add_argument("--scenario", choices=("random", "national"),
                          default="random",
                          help="zone layout: routed random field, or the "
                               "national-scale packed corridor")
    simulate.add_argument("--corridor-m", type=float, default=4_000.0,
                          help="national corridor length in metres "
                               "(default 4000)")
    simulate.add_argument("--policy", choices=("adaptive", "fixed"),
                          default="adaptive")
    simulate.add_argument("--rate", type=float, default=None,
                          help="fix-rate policy rate in Hz")
    simulate.add_argument("--trace", metavar="PATH", default=None,
                          help="write an end-to-end span trace (JSONL) "
                               "covering the flight and its audit")
    simulate.set_defaults(handler=_cmd_simulate)

    sub.add_parser("attacks", help="forgery-attack walkthrough").set_defaults(
        handler=_cmd_attacks)

    audit_batch = sub.add_parser(
        "audit-batch",
        help="run a synthetic fleet through the batch audit engine")
    audit_batch.add_argument("--submissions", type=int, default=50,
                             help="batch size (default 50)")
    audit_batch.add_argument("--samples", type=int, default=20,
                             help="samples per PoA (default 20)")
    audit_batch.add_argument("--drones", type=int, default=5,
                             help="fleet size (default 5)")
    audit_batch.add_argument("--zones", type=int, default=1,
                             help="NFZ database size; zones beyond the "
                                  "first sit far from the traces "
                                  "(default 1)")
    audit_batch.add_argument("--scheme", default="rsa-v15",
                             choices=("rsa-v15", "rsa-batch", "hash-chain",
                                      "merkle-disclosure"),
                             help="sample-authentication scheme the fleet "
                                  "signs under (default rsa-v15)")
    audit_batch.add_argument("--workers", type=int, default=1,
                             help="crypto fan-out pool size (default 1)")
    audit_batch.add_argument("--executor", choices=("thread", "process"),
                             default="thread",
                             help="pool kind (default thread)")
    audit_batch.add_argument("--json", action="store_true",
                             help="print the batch result as JSON instead "
                                  "of prose (exit non-zero on rejection)")
    audit_batch.add_argument("--metrics-json", metavar="PATH", default=None,
                             help="write a metrics-registry snapshot (JSON)")
    audit_batch.add_argument("--trace", metavar="PATH", default=None,
                             help="write the audit span trace (JSONL)")
    audit_batch.set_defaults(handler=_cmd_audit_batch)

    chaos = sub.add_parser(
        "chaos",
        help="fault-matrix sweep with safety/liveness invariant checks")
    chaos.add_argument("--scenarios", nargs="+",
                       choices=("compliant", "violation"),
                       default=["compliant", "violation"],
                       help="scenario kinds to sweep (default: both)")
    chaos.add_argument("--plans", nargs="+", default=None, metavar="PLAN",
                       help="fault plans to run (default: all builtin)")
    chaos.add_argument("--zones", type=int, default=6,
                       help="zones in the compliant scenario (default 6)")
    chaos.add_argument("--chaos-key-bits", type=int, default=512,
                       choices=(512, 1024, 2048),
                       help="key size for chaos runs (default 512: the "
                            "matrix provisions a device per cell)")
    chaos.add_argument("--budget-s", type=float, default=300.0,
                       help="virtual-time liveness budget per cell")
    chaos.add_argument("--out", metavar="PATH", default=None,
                       help="write the chaos report as JSON")
    chaos.add_argument("--json", action="store_true",
                       help="print the report as JSON instead of prose")
    chaos.add_argument("--dash", action="store_true",
                       help="render the live telemetry dashboard to "
                            "stderr while the sweep runs")
    chaos.add_argument("--rollup-jsonl", metavar="PATH", default=None,
                       help="append one windowed-telemetry rollup JSON "
                            "line per completed cell")
    chaos.set_defaults(handler=_cmd_chaos)

    attack = sub.add_parser(
        "attack",
        help="adversary matrix sweep + differential conformance harness")
    attack.add_argument("--trajectories", type=int, default=200,
                        help="randomized conformance trajectories "
                             "(default 200)")
    attack.add_argument("--scheme", default="rsa-v15",
                        choices=("rsa-v15", "rsa-batch", "hash-chain",
                                 "merkle-disclosure"),
                        help="sample-authentication scheme the genuine "
                             "flights are flown under (default rsa-v15)")
    attack.add_argument("--attack-key-bits", type=int, default=512,
                        choices=(512, 1024, 2048),
                        help="key size for attack runs (default 512: the "
                             "matrix provisions devices and signs per "
                             "sample)")
    attack.add_argument("--out", metavar="PATH", default=None,
                        help="write the attack report as JSON")
    attack.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of prose")
    attack.add_argument("--metrics-json", metavar="PATH", default=None,
                        help="write an adversary.* metrics snapshot (JSON)")
    attack.add_argument("--dash", action="store_true",
                        help="render the live telemetry dashboard to "
                             "stderr while the matrix runs")
    attack.add_argument("--rollup-jsonl", metavar="PATH", default=None,
                        help="append one windowed-telemetry rollup JSON "
                             "line per completed cell")
    attack.set_defaults(handler=_cmd_attack)

    serve = sub.add_parser(
        "serve",
        help="drive the persistent sharded auditor service for N ticks "
             "of Poisson fleet traffic")
    serve.add_argument("--ticks", type=int, default=30,
                       help="virtual seconds to run (default 30)")
    serve.add_argument("--rate", type=float, default=2.0,
                       help="Poisson arrival rate, submissions/s "
                            "(default 2.0)")
    serve.add_argument("--drones", type=int, default=8,
                       help="fleet size (default 8)")
    serve.add_argument("--samples", type=int, default=6,
                       help="samples per submission (default 6)")
    serve.add_argument("--shards", type=int, default=2,
                       help="audit shards (default 2)")
    serve.add_argument("--regions", type=int, default=4,
                       help="zone-regions the fleet spans (default 4)")
    serve.add_argument("--queue-capacity", type=int, default=4096,
                       help="intake queue bound (default 4096)")
    serve.add_argument("--admission-rate", type=float, default=None,
                       help="token-bucket refill, submissions/s "
                            "(default: admission guard off)")
    serve.add_argument("--admission-burst", type=float, default=32.0,
                       help="token-bucket burst (default 32)")
    serve.add_argument("--scheme", default="rsa-v15",
                       choices=("rsa-v15", "rsa-batch", "hash-chain",
                                "merkle-disclosure"),
                       help="sample-authentication scheme the fleet "
                            "signs under (default rsa-v15)")
    serve.add_argument("--store", metavar="PATH", default=":memory:",
                       help="FlightStore database path "
                            "(default in-memory)")
    serve.add_argument("--key-bits", type=int, default=512,
                       choices=(512, 1024, 2048),
                       help="fleet/service key size (default 512)")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload seed (default 0)")
    serve.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")
    serve.set_defaults(handler=_cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help="hostile-traffic fleet simulation: honest + chaos + "
             "adversary + flood classes through the admission-scheduled "
             "auditor service")
    fleet.add_argument("--drones", type=int, default=12,
                       help="honest fleet size (default 12)")
    fleet.add_argument("--flooders", type=int, default=2,
                       help="flooding drones (default 2)")
    fleet.add_argument("--duration", type=float, default=60.0,
                       help="virtual seconds to run (default 60)")
    fleet.add_argument("--honest-rate", type=float, default=2.0,
                       help="honest Poisson rate, submissions/s "
                            "(default 2.0)")
    fleet.add_argument("--chaos-rate", type=float, default=0.0,
                       help="chaos-degraded Poisson rate "
                            "(default 0: class off)")
    fleet.add_argument("--attack-rate", type=float, default=0.0,
                       help="adversary Poisson rate (default 0: class off)")
    fleet.add_argument("--flood-burst", type=int, default=0,
                       help="flood submissions per storm-second "
                            "(default 0: class off)")
    fleet.add_argument("--flood-period", type=float, default=10.0,
                       help="flood storm cycle length, seconds; first "
                            "half is on (default 10)")
    fleet.add_argument("--samples", type=int, default=4,
                       help="samples per submission (default 4)")
    fleet.add_argument("--regions", type=int, default=4,
                       help="zone-regions the fleet spans (default 4)")
    fleet.add_argument("--schemes", default="rsa-v15",
                       help="comma list of authentication schemes "
                            "assigned round-robin over the fleet "
                            "(default rsa-v15)")
    fleet.add_argument("--policy", default="none",
                       choices=("none", "fifo", "fair-share", "hybrid"),
                       help="admission policy (default none: queue bound "
                            "only)")
    fleet.add_argument("--admission-rate", type=float, default=None,
                       help="global admission rate, submissions/s "
                            "(required for any policy but none)")
    fleet.add_argument("--admission-burst", type=float, default=64.0,
                       help="global admission burst (default 64)")
    fleet.add_argument("--max-honest-shed", type=float, default=0.2,
                       help="honest shed-ratio bound the liveness "
                            "invariant asserts (default 0.2)")
    fleet.add_argument("--shards", type=int, default=2,
                       help="audit shards (default 2)")
    fleet.add_argument("--queue-capacity", type=int, default=4096,
                       help="intake queue bound (default 4096)")
    fleet.add_argument("--store", metavar="PATH", default=":memory:",
                       help="FlightStore database path "
                            "(default in-memory)")
    fleet.add_argument("--key-bits", type=int, default=512,
                       choices=(512, 1024, 2048),
                       help="fleet/service key size (default 512)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="workload seed (default 0)")
    fleet.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")
    fleet.set_defaults(handler=_cmd_fleet)

    disclosure = sub.add_parser(
        "disclosure",
        help="selective-disclosure differential sweep (decision "
             "equivalence + zero false accepts)")
    disclosure.add_argument("--trajectories", type=int, default=200,
                            help="randomized flights to sweep "
                                 "(default 200)")
    disclosure.add_argument("--zones", type=int, default=12,
                            help="max zones per trial (default 12)")
    disclosure.add_argument("--seed", type=int, default=0,
                            help="sweep seed (default 0)")
    disclosure.add_argument("--key-bits", type=int, default=512,
                            dest="key_bits",
                            help="TEE RSA modulus size (default 512)")
    disclosure.add_argument("--out", metavar="PATH", default=None,
                            help="write the disclosure report as JSON")
    disclosure.add_argument("--json", action="store_true",
                            help="print the report as JSON instead of "
                                 "prose")
    disclosure.set_defaults(handler=_cmd_disclosure)

    metrics = sub.add_parser(
        "metrics",
        help="export a metrics snapshot (JSON or Prometheus exposition)")
    metrics.add_argument("--prometheus", action="store_true",
                         help="emit Prometheus text exposition instead "
                              "of JSON")
    metrics.add_argument("--from-json", metavar="PATH", default=None,
                         help="render a previously written metrics "
                              "snapshot (e.g. audit-batch --metrics-json) "
                              "instead of running a synthetic batch")
    metrics.set_defaults(handler=_cmd_metrics)

    dash = sub.add_parser(
        "dash",
        help="live telemetry dashboard over a chaos or attack run")
    dash.add_argument("--run", choices=("chaos", "attack"),
                      default="chaos",
                      help="which harness to drive (default chaos)")
    dash.add_argument("--plans", nargs="+", default=None, metavar="PLAN",
                      help="fault plans for --run chaos "
                           "(default: all builtin)")
    dash.add_argument("--plain", action="store_true",
                      help="append plain-text frames (no ANSI clears), "
                           "for logs and CI")
    dash.add_argument("--rollup-jsonl", metavar="PATH", default=None,
                      help="also append rollup JSON lines")
    dash.set_defaults(handler=_cmd_dash)

    export = sub.add_parser("export",
                            help="dump a scenario as GeoJSON")
    export.add_argument("--scenario", choices=("airport", "residential"),
                        default="residential")
    export.add_argument("--out", default="-",
                        help="output path, or '-' for stdout")
    export.add_argument("--step", type=float, default=2.0,
                        help="track sampling step in seconds")
    export.set_defaults(handler=_cmd_export)

    calibrate = sub.add_parser(
        "calibrate", help="measure this machine's op costs; re-predict "
                          "Table II locally")
    calibrate.add_argument("--repetitions", type=int, default=25)
    calibrate.set_defaults(handler=_cmd_calibrate)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Domain errors (bad combinations of options, unroutable scenarios)
    print a one-line message and exit 2 instead of dumping a traceback.
    """
    from repro.errors import AliDroneError

    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except AliDroneError as exc:
        print(f"alidrone: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
