"""Command-line interface for the AliDrone reproduction."""

from repro.cli.main import main

__all__ = ["main"]
